"""Tests for trace replay on the simulated devices."""

import pytest

from repro.data.generator import generate
from repro.hardware.config import CPUConfig, GPUConfig, PlatformConfig, gtx_titan
from repro.hardware.simulate import (
    sharing_for_algorithm,
    simulate_cpu,
    simulate_gpu,
    simulate_heterogeneous,
)
from repro.skycube import PQSkycube, QSkycube
from repro.templates import MDMC, SDSC, STSC

DATA = generate("independent", 300, 6, seed=21)
CPU = CPUConfig().scaled(250)
GPU = GPUConfig().scaled(250)
PLATFORM = PlatformConfig(
    cpu=CPU, gpus=[GPU, GPUConfig(name="b").scaled(250), gtx_titan().scaled(250)]
)


def runs():
    return {
        "stsc": STSC().materialise(DATA),
        "sdsc": SDSC("cpu").materialise(DATA),
        "mdmc": MDMC("cpu").materialise(DATA),
        "pq": PQSkycube().materialise(DATA),
        "q": QSkycube().materialise(DATA),
        "sdsc-gpu": SDSC("gpu").materialise(DATA),
        "mdmc-gpu": MDMC("gpu").materialise(DATA),
    }


RUNS = runs()


class TestCPUSimulation:
    def test_positive_time(self):
        for run in RUNS.values():
            sim = simulate_cpu(run, CPU, threads=1)
            assert sim.seconds > 0
            assert sim.hardware.instructions > 0

    def test_more_threads_never_slower(self):
        for name in ("stsc", "sdsc", "mdmc"):
            times = [
                simulate_cpu(RUNS[name], CPU, threads=t, sockets=1).seconds
                for t in (1, 2, 5, 10)
            ]
            assert all(a >= b - 1e-12 for a, b in zip(times, times[1:])), (
                f"{name}: {times}"
            )

    def test_qskycube_pinned_single_thread(self):
        a = simulate_cpu(RUNS["q"], CPU, threads=1).seconds
        b = simulate_cpu(RUNS["q"], CPU, threads=10).seconds
        assert a == pytest.approx(b)

    def test_busy_exceeds_ideal(self):
        sim = simulate_cpu(RUNS["stsc"], CPU, threads=4)
        assert sim.busy_cycles >= sim.hardware.instructions * CPU.base_cpi

    def test_makespan_at_least_busy_over_threads(self):
        sim = simulate_cpu(RUNS["mdmc"], CPU, threads=10)
        assert sim.makespan_cycles >= sim.busy_cycles / 10 - 1e-6

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            simulate_cpu(RUNS["stsc"], CPU, threads=0)
        with pytest.raises(ValueError):
            simulate_cpu(RUNS["stsc"], CPU, threads=1, sockets=3)
        with pytest.raises(ValueError):
            simulate_cpu(RUNS["stsc"], CPU, threads=1000)

    def test_sharing_map(self):
        assert sharing_for_algorithm("mdmc")["share_flat_across_tasks"]
        assert sharing_for_algorithm("pqskycube")["share_pointer_across_tasks"]
        assert not sharing_for_algorithm("stsc")["share_flat_across_tasks"]

    def test_metrics_well_defined(self):
        sim = simulate_cpu(RUNS["sdsc"], CPU, threads=10)
        assert 0 < sim.cpi < 50
        assert 0 <= sim.stlb_miss_rate < 1
        assert 0 <= sim.page_walk_fraction < 1


class TestGPUSimulation:
    def test_only_specialised_templates(self):
        for name in ("stsc", "pq", "q"):
            with pytest.raises(ValueError):
                simulate_gpu(RUNS[name], GPU)

    def test_positive_time_with_pcie(self):
        for name in ("sdsc-gpu", "mdmc-gpu"):
            sim = simulate_gpu(RUNS[name], GPU)
            assert sim.seconds > 0
            assert sim.pcie_seconds > 0
            assert sim.kernel_seconds > 0

    def test_sdsc_launches_per_cuboid(self):
        sim = simulate_gpu(RUNS["sdsc-gpu"], GPU)
        # One kernel per cuboid: 2^6 - 1 cuboids.
        assert sim.launches >= 63

    def test_mdmc_few_launches(self):
        sim = simulate_gpu(RUNS["mdmc-gpu"], GPU)
        assert sim.launches <= 4


class TestHeterogeneous:
    def test_shares_sum_to_one(self):
        for name in ("sdsc-gpu", "mdmc-gpu"):
            sim = simulate_heterogeneous(RUNS[name], PLATFORM)
            assert sum(sim.device_shares.values()) == pytest.approx(1.0)
            assert len(sim.device_shares) == 5

    def test_never_slower_than_fastest_device(self):
        for name in ("sdsc-gpu", "mdmc-gpu"):
            sim = simulate_heterogeneous(RUNS[name], PLATFORM)
            fastest = min(sim.device_seconds.values())
            assert sim.seconds <= fastest + 1e-12

    def test_rejects_unspecialised(self):
        with pytest.raises(ValueError):
            simulate_heterogeneous(RUNS["pq"], PLATFORM)

    def test_faster_devices_take_more_work(self):
        sim = simulate_heterogeneous(RUNS["mdmc-gpu"], PLATFORM)
        pairs = sorted(
            (seconds, sim.device_shares[name])
            for name, seconds in sim.device_seconds.items()
        )
        shares = [share for _, share in pairs]
        assert all(a >= b - 1e-9 for a, b in zip(shares, shares[1:]))
