"""Unit tests for the shared top-down lattice traversal."""

import pytest

from repro.core.bitmask import full_space, subspaces_at_level
from repro.core.lattice import Lattice
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.instrument.counters import Counters
from repro.skycube.topdown import select_parent, top_down_lattice
from repro.skyline.bskytree import BSkyTree
from repro.skyline.hybrid import Hybrid


class TestSelectParent:
    def make_lattice(self):
        lattice = Lattice(3)
        lattice.set_cuboid(0b110, [0, 1, 2], extended_only_ids=[3])  # size 4
        lattice.set_cuboid(0b011, [0, 1])                            # size 2
        return lattice

    def test_smallest_rule(self):
        lattice = self.make_lattice()
        assert select_parent(lattice, 0b010, 3) == 0b011

    def test_first_rule(self):
        lattice = self.make_lattice()
        # First materialised superspace in enumeration order (0b011).
        assert select_parent(lattice, 0b010, 3, rule="first") == 0b011
        # For δ=0b100 only 0b110 is materialised under either rule.
        assert select_parent(lattice, 0b100, 3, rule="first") == 0b110

    def test_ties_break_deterministically(self):
        lattice = Lattice(3)
        lattice.set_cuboid(0b110, [0, 1])
        lattice.set_cuboid(0b011, [2, 3])
        assert select_parent(lattice, 0b010, 3) == 0b011  # numerically first

    def test_missing_parent_raises(self):
        lattice = Lattice(3)
        with pytest.raises(ValueError):
            select_parent(lattice, 0b001, 3)


class TestTopDownLattice:
    DATA = generate("independent", 120, 4, seed=6)

    def test_complete_and_correct(self):
        counters = Counters()
        lattice, phases = top_down_lattice(self.DATA, BSkyTree(), counters)
        assert lattice.is_complete()
        oracle = brute_force_skycube(self.DATA).as_lattice()
        assert lattice == oracle

    def test_parent_rule_does_not_change_result(self):
        a, _ = top_down_lattice(self.DATA, BSkyTree(), Counters())
        b, _ = top_down_lattice(
            self.DATA, BSkyTree(), Counters(), parent_rule="first"
        )
        assert a == b

    def test_smallest_parent_never_costs_more(self):
        smallest, first = Counters(), Counters()
        top_down_lattice(self.DATA, BSkyTree(), smallest)
        top_down_lattice(self.DATA, BSkyTree(), first, parent_rule="first")
        assert smallest.dominance_tests <= first.dominance_tests

    def test_phase_structure(self):
        _, phases = top_down_lattice(self.DATA, Hybrid(), Counters())
        assert [phase.name for phase in phases] == [
            "root", "level-3", "level-2", "level-1",
        ]
        assert len(phases[1].tasks) == len(subspaces_at_level(4, 3))

    def test_partial_uses_full_extended_as_input(self):
        lattice, phases = top_down_lattice(
            self.DATA, BSkyTree(), Counters(), max_level=2
        )
        assert not lattice.has_cuboid(full_space(4))
        assert lattice.is_complete(max_level=2)
        oracle = brute_force_skycube(self.DATA)
        for level in (1, 2):
            for delta in subspaces_at_level(4, level):
                assert lattice.skyline(delta) == oracle.skyline(delta)

    def test_free_finished_levels(self):
        lattice, _ = top_down_lattice(
            self.DATA, BSkyTree(), Counters(), free_finished_levels=True
        )
        # Levels two above the frontier lost their construction extras.
        for delta in subspaces_at_level(4, 4):
            assert lattice.extended_only(delta) == ()

    def test_keep_extended_when_not_freeing(self):
        data = generate("anticorrelated", 80, 3, seed=4)
        lattice, _ = top_down_lattice(
            data, BSkyTree(), Counters(), free_finished_levels=False
        )
        total_extras = sum(
            len(lattice.extended_only(delta))
            for delta, _ in lattice.cuboids()
        )
        assert total_extras > 0  # anticorrelated data has S+ ⊋ S somewhere
