"""Cross-validation of every skyline algorithm against the oracle."""

import numpy as np
import pytest

from repro.core.bitmask import all_subspaces
from repro.core.skyline import skyline_and_extended
from repro.instrument.counters import Counters
from repro.skyline import (
    ALGORITHMS,
    APSkyline,
    BSkyTree,
    BlockNestedLoops,
    GGS,
    GNL,
    Hybrid,
    OSP,
    PSkyline,
    Scalagon,
    SkyAlign,
    SortFilterSkyline,
    VMPSP,
)

ALGO_INSTANCES = [
    BlockNestedLoops(),
    SortFilterSkyline(),
    PSkyline(blocks=4),
    APSkyline(partitions=4),
    Scalagon(max_cells=4096),
    BSkyTree(),
    OSP(seed=5),
    VMPSP(),
    Hybrid(tile_size=16),
    SkyAlign(),
    GNL(),
    GGS(),
]


@pytest.fixture(params=ALGO_INSTANCES, ids=lambda a: a.name)
def algorithm(request):
    return request.param


class TestCorrectness:
    def test_full_space(self, algorithm, workload):
        exp_sky, exp_extra = skyline_and_extended(workload)
        result = algorithm.compute(workload)
        assert result.skyline == exp_sky
        assert result.extended_only == exp_extra

    def test_every_subspace(self, algorithm, workload):
        d = workload.shape[1]
        for delta in all_subspaces(d):
            exp_sky, exp_extra = skyline_and_extended(workload, delta)
            result = algorithm.compute(workload, delta=delta)
            assert result.skyline == exp_sky, f"{algorithm.name} δ={delta:#b}"
            assert result.extended_only == exp_extra, (
                f"{algorithm.name} δ={delta:#b}"
            )

    def test_subset_of_ids(self, algorithm, workload):
        ids = list(range(0, len(workload), 3))
        delta = (1 << workload.shape[1]) - 1
        sub = workload[np.asarray(ids)]
        exp_sky, exp_extra = skyline_and_extended(sub, delta)
        result = algorithm.compute(workload, ids=ids, delta=delta)
        assert result.skyline == sorted(ids[j] for j in exp_sky)
        assert result.extended_only == sorted(ids[j] for j in exp_extra)

    def test_flights(self, algorithm, flights):
        result = algorithm.compute(flights, delta=0b011)
        assert result.skyline == [1, 2, 3]
        assert result.extended_only == [4]


class TestEdgeCases:
    def test_empty_ids(self, algorithm, flights):
        result = algorithm.compute(flights, ids=[])
        assert result.skyline == [] and result.extended_only == []

    def test_single_point(self, algorithm, flights):
        result = algorithm.compute(flights, ids=[2])
        assert result.skyline == [2]

    def test_all_duplicates(self, algorithm):
        data = np.tile([[0.3, 0.7]], (20, 1))
        result = algorithm.compute(data)
        assert result.skyline == list(range(20))
        assert result.extended_only == []

    def test_dominance_chain(self, algorithm):
        data = np.column_stack([np.arange(10.0), np.arange(10.0)])
        result = algorithm.compute(data)
        assert result.skyline == [0]
        assert result.extended_only == []

    def test_invalid_subspace(self, algorithm, flights):
        with pytest.raises(ValueError):
            algorithm.compute(flights, delta=0)
        with pytest.raises(ValueError):
            algorithm.compute(flights, delta=1 << 3)


class TestInstrumentation:
    def test_counters_accumulate(self, algorithm, workload):
        counters = Counters()
        result = algorithm.compute(workload, counters=counters)
        assert result.counters is counters
        assert counters.dominance_tests + counters.mask_tests > 0

    def test_profile_nonzero(self, algorithm, workload):
        result = algorithm.compute(workload)
        assert result.profile.total_working_set() > 0

    def test_parallel_algorithms_report_tasks(self, workload):
        for algorithm in ALGO_INSTANCES:
            result = algorithm.compute(workload)
            if algorithm.parallel:
                assert result.task_units, f"{algorithm.name} lacks task units"
            assert (result.task_units is None) == (not algorithm.parallel)

    def test_extended_property(self, algorithm, flights):
        result = algorithm.compute(flights)
        assert result.extended == sorted(
            result.skyline + result.extended_only
        )


class TestRelativeWork:
    def test_tree_methods_do_fewer_dts_than_bnl(self):
        """The MT-for-DT trade (Appendix B.2) must actually save DTs."""
        from repro.data.generator import generate

        data = generate("independent", 300, 6, seed=11)
        bnl_counters = Counters()
        BlockNestedLoops().compute(data, counters=bnl_counters)
        for cls in (BSkyTree(), Hybrid()):
            counters = Counters()
            cls.compute(data, counters=counters)
            assert counters.dominance_tests < bnl_counters.dominance_tests, (
                f"{cls.name} should DT less than BNL"
            )
            assert counters.mask_tests > 0

    def test_ggs_does_less_work_than_gnl(self):
        from repro.data.generator import generate

        data = generate("independent", 300, 5, seed=3)
        gnl_counters, ggs_counters = Counters(), Counters()
        GNL().compute(data, counters=gnl_counters)
        GGS().compute(data, counters=ggs_counters)
        assert ggs_counters.dominance_tests < gnl_counters.dominance_tests

    def test_registry_complete(self):
        assert set(ALGORITHMS) == {
            "bnl", "sfs", "pskyline", "apskyline", "scalagon",
            "bskytree", "osp", "vmpsp",
            "hybrid", "skyalign", "gnl", "ggs",
        }

    def test_scalagon_prefilters_low_cardinality(self):
        """The lattice prefilter bites on duplicate-heavy data (the
        paper's low-cardinality domain setting)."""
        from repro.data.generator import generate

        data = generate("independent", 500, 3, seed=7, distinct_values=4)
        counters = Counters()
        Scalagon().compute(data, counters=counters)
        assert counters.extra["scalagon_prefiltered"] > 150

    def test_apskyline_partitions_report_units(self):
        from repro.data.generator import generate

        data = generate("anticorrelated", 600, 3, seed=5)
        balanced = APSkyline(partitions=4).compute(data)
        assert len(balanced.task_units) == 4
        assert all(units > 0 for units in balanced.task_units)
