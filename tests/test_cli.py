"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.data.io import save_dataset
from repro.experiments.__main__ import main as experiments_main


@pytest.fixture
def dataset_file(tmp_path, flights):
    path = tmp_path / "flights.txt"
    save_dataset(flights, path)
    return str(path)


class TestReproCLI:
    def test_skyline(self, dataset_file, capsys):
        assert repro_main(["skyline", dataset_file, "--subspace", "0b011"]) == 0
        out = capsys.readouterr().out
        assert "skyline: 3 of 5" in out
        assert "1 2 3" in out

    def test_skyline_extended(self, dataset_file, capsys):
        repro_main(["skyline", dataset_file, "--subspace", "0b011", "--extended"])
        assert "extended skyline: 4 of 5" in capsys.readouterr().out

    def test_skyline_dims_syntax(self, dataset_file, capsys):
        repro_main(["skyline", dataset_file, "--subspace", "0,1"])
        assert "3 of 5" in capsys.readouterr().out

    def test_skycube(self, dataset_file, capsys):
        code = repro_main(
            ["skycube", dataset_file, "--algorithm", "stsc",
             "--show", "0b100", "0b011"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "materialised 7 subspace skylines" in out
        assert "S_0b100: 1 points: 0" in out

    def test_skycube_partial(self, dataset_file, capsys):
        repro_main(["skycube", dataset_file, "--max-level", "1",
                    "--show", "0b001"])
        assert "materialised 3 subspace skylines" in capsys.readouterr().out

    def test_skycube_engine_knob(self, dataset_file, capsys):
        baseline = repro_main(
            ["skycube", dataset_file, "--show", "0b011"]
        )
        assert baseline == 0
        base_out = capsys.readouterr().out
        for engine in ("packed", "packed-filtered", "loop"):
            code = repro_main(
                ["skycube", dataset_file, "--engine", engine,
                 "--show", "0b011"]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert f"engine={engine}" in out
            # Same skylines whichever sweep computed them.
            assert out.splitlines()[-1] == base_out.splitlines()[-1]

    def test_skycube_engine_rejects_non_mdmc(self, dataset_file):
        with pytest.raises(SystemExit, match="only applies"):
            repro_main(["skycube", dataset_file, "--algorithm", "stsc",
                        "--engine", "packed"])

    def test_skycube_engine_choices_are_shared(self, dataset_file):
        from repro.engine import SKYCUBE_ENGINES

        # argparse rejects anything outside the single source of truth
        with pytest.raises(SystemExit):
            repro_main(["skycube", dataset_file, "--engine", "simd"])
        assert SKYCUBE_ENGINES == ("packed", "packed-filtered", "loop")

    def test_generate_and_stats(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.npy")
        repro_main(["generate", "correlated", "200", "4",
                    "--seed", "3", "--out", out_path])
        assert "wrote 200 x 4" in capsys.readouterr().out
        repro_main(["stats", out_path])
        out = capsys.readouterr().out
        assert "n=200 d=4" in out and "|S+|" in out

    def test_serve_snapshot_live_conflict(self, dataset_file, tmp_path):
        from repro.core.serialize import save_skycube
        from repro.data.generator import generate
        from repro.engine import fast_skycube

        snapshot_path = str(tmp_path / "cube.npz")
        save_skycube(fast_skycube(generate("independent", 20, 3, seed=1)),
                     snapshot_path)
        with pytest.raises(SystemExit, match="drop --snapshot"):
            repro_main(["serve", dataset_file,
                        "--snapshot", snapshot_path, "--live"])

    def test_serve_snapshot_dimension_mismatch(self, dataset_file, tmp_path):
        from repro.core.serialize import save_skycube
        from repro.data.generator import generate
        from repro.engine import fast_skycube

        snapshot_path = str(tmp_path / "cube4.npz")
        save_skycube(fast_skycube(generate("independent", 20, 4, seed=1)),
                     snapshot_path)
        with pytest.raises(SystemExit, match="4-dimensional"):
            repro_main(["serve", dataset_file, "--snapshot", snapshot_path])

    def test_query_connection_refused(self):
        # An ephemeral port nothing listens on: typed SystemExit, no
        # traceback leaking out of the CLI.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(SystemExit, match="cannot connect"):
            repro_main(["query", "ping", "--port", str(port),
                        "--timeout", "0.5"])

    def test_bad_inputs(self, dataset_file, tmp_path):
        with pytest.raises(SystemExit):
            repro_main(["skyline", dataset_file, "--subspace", "0b1000"])
        with pytest.raises(SystemExit):
            repro_main(["skyline", str(tmp_path / "missing.txt")])
        with pytest.raises(SystemExit):
            repro_main(["skycube", dataset_file, "--algorithm", "magic"])
        with pytest.raises(SystemExit):
            repro_main(["skyline", dataset_file, "--subspace", "pizza"])


class TestExperimentsCLI:
    def test_single_experiment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert experiments_main(["table02"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert (tmp_path / "table02.txt").exists()

    def test_no_save(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        experiments_main(["table02", "--no-save"])
        assert not (tmp_path / "table02.txt").exists()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])
