"""Smoke tests: every shipped example runs end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} printed nothing"


def test_examples_exist():
    names = {script.stem for script in EXAMPLES}
    assert {"quickstart", "hotel_finder", "nba_allstars",
            "heterogeneous_tour", "live_catalog"} <= names
