"""Tests for skycube persistence."""

import numpy as np
import pytest

from repro.core.serialize import load_skycube, save_skycube
from repro.core.verify import brute_force_skycube
from repro.templates import MDMC, STSC


class TestRoundtrip:
    def test_lattice_roundtrip(self, workload, tmp_path):
        cube = STSC().materialise(workload).skycube
        path = tmp_path / "cube.npz"
        save_skycube(cube, path)
        loaded = load_skycube(path)
        assert loaded == cube

    def test_hashcube_roundtrip(self, workload, tmp_path):
        cube = MDMC("cpu", word_width=8).materialise(workload).skycube
        path = tmp_path / "cube.npz"
        save_skycube(cube, path)
        loaded = load_skycube(path)
        assert loaded == cube
        assert loaded.store.word_width == 8

    def test_level_ordered_hashcube_roundtrip(self, flights, tmp_path):
        cube = MDMC("cpu", bit_order="level").materialise(flights).skycube
        path = tmp_path / "cube.npz"
        save_skycube(cube, path)
        loaded = load_skycube(path)
        assert loaded == cube
        assert loaded.store.bit_order == "level"

    def test_partial_roundtrip(self, flights, tmp_path):
        cube = STSC().materialise(flights, max_level=2).skycube
        path = tmp_path / "cube.npz"
        save_skycube(cube, path)
        loaded = load_skycube(path)
        assert loaded.max_level == 2
        assert loaded == cube
        with pytest.raises(KeyError):
            loaded.skyline(0b111)

    def test_loaded_matches_oracle(self, workload, tmp_path):
        cube = MDMC("cpu").materialise(workload).skycube
        path = tmp_path / "cube.npz"
        save_skycube(cube, path)
        assert load_skycube(path) == brute_force_skycube(workload)


class TestFailures:
    def test_rejects_non_skycube_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a skycube"):
            load_skycube(path)

    def test_rejects_unknown_format_version(self, flights, tmp_path):
        import json

        cube = STSC().materialise(flights).skycube
        path = tmp_path / "cube.npz"
        save_skycube(cube, path)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(arrays["header"]).decode())
        header["format"] = 99
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="unsupported"):
            load_skycube(path)

    def test_rejects_unsupported_store(self, flights, tmp_path):
        from repro.core.closed import ClosedSkycube
        from repro.core.skycube import Skycube

        lattice = STSC().materialise(flights).skycube.as_lattice()
        closed = ClosedSkycube.from_lattice(lattice)
        fake = Skycube.__new__(Skycube)
        fake._store = closed
        fake.d = 3
        fake.max_level = None
        with pytest.raises(TypeError):
            save_skycube(fake, tmp_path / "x.npz")
