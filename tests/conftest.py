"""Shared fixtures: the paper's running example and small workloads."""

import numpy as np
import pytest

from repro.data.generator import generate


def pytest_addoption(parser):
    # benchmarks/conftest.py defines the same option for its suite; a
    # combined `pytest tests benchmarks` run loads both conftests, so
    # tolerate the duplicate registration.
    try:
        parser.addoption(
            "--executor",
            choices=["serial", "process"],
            default="serial",
            help="execution backend; the chaos suite only runs worker-"
                 "kill tests under '--executor process'",
        )
    except ValueError:
        pass


@pytest.fixture
def flights():
    """Table 1 of the paper: (price, duration, arrival) for f0..f4.

    Dimension order matches the paper's bitmask examples: bit 0 =
    Arrival, bit 1 = Duration, bit 2 = Price (so δ=3 is the business
    traveller's {Duration, Arrival} subspace).
    """
    return np.array(
        [
            # arrival, duration, price
            [12.20, 17.0, 120.0],  # f0
            [9.00, 12.0, 148.0],  # f1
            [8.20, 13.0, 169.0],  # f2
            [21.25, 3.0, 186.0],  # f3
            [21.25, 5.0, 196.0],  # f4
        ]
    )


def small_workloads():
    """A deterministic matrix of (name, data) pairs used across suites."""
    cases = []
    for dist in ("independent", "correlated", "anticorrelated"):
        for n, d, seed in ((40, 3, 1), (80, 4, 2), (60, 5, 3)):
            cases.append(
                (f"{dist[:1]}-n{n}-d{d}", generate(dist, n, d, seed=seed))
            )
    # Duplicate-heavy low-cardinality workload (Covertype-like).
    cases.append(
        ("dup-n80-d4", generate("independent", 80, 4, seed=7, distinct_values=3))
    )
    return cases


@pytest.fixture(params=small_workloads(), ids=lambda case: case[0])
def workload(request):
    """Parametrized small dataset covering all distributions + duplicates."""
    return request.param[1]
