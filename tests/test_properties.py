"""Property-based tests of the library's core invariants (hypothesis).

These encode DESIGN.md §5: containment laws between skylines and
extended skylines, equivalence of every materialisation path, and
round-trips between representations — on adversarially small random
datasets where duplicate values and degenerate shapes are common.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import all_subspaces, proper_submasks
from repro.core.hashcube import HashCube
from repro.core.skyline import extended_skyline_indices, skyline_indices
from repro.core.verify import brute_force_skycube
from repro.engine import fast_skycube, fast_skyline
from repro.skycube import QSkycube
from repro.templates import MDMC, STSC


def datasets(max_n=16, max_d=4):
    """Small datasets over a tiny value grid: duplicates guaranteed."""
    return st.integers(1, max_d).flatmap(
        lambda d: st.lists(
            st.lists(st.integers(0, 3).map(float), min_size=d, max_size=d),
            min_size=1,
            max_size=max_n,
        )
    ).map(np.array)


@settings(max_examples=40, deadline=None)
@given(datasets())
def test_skyline_inside_extended_inside_all(rows):
    d = rows.shape[1]
    for delta in all_subspaces(d):
        sky = set(skyline_indices(rows, delta))
        ext = set(extended_skyline_indices(rows, delta))
        assert sky <= ext <= set(range(len(rows)))
        assert sky, "skyline of a non-empty set cannot be empty"


@settings(max_examples=40, deadline=None)
@given(datasets())
def test_extended_skyline_monotone(rows):
    """S+_δ ⊇ S+_δ' for δ' ⊂ δ — the top-down traversal's licence."""
    d = rows.shape[1]
    full = (1 << d) - 1
    outer = set(extended_skyline_indices(rows, full))
    for delta in proper_submasks(full):
        assert set(extended_skyline_indices(rows, delta)) <= outer


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_points_outside_splus_in_no_skyline(rows):
    """Strictly dominated points appear in no subspace skyline —
    the fact that lets MDMC restrict itself to S+(P)."""
    d = rows.shape[1]
    full = (1 << d) - 1
    splus = set(extended_skyline_indices(rows, full))
    for delta in all_subspaces(d):
        assert set(skyline_indices(rows, delta)) <= splus


@settings(max_examples=25, deadline=None)
@given(datasets())
def test_all_materialisation_paths_agree(rows):
    oracle = brute_force_skycube(rows)
    assert QSkycube().materialise(rows).skycube == oracle
    assert STSC().materialise(rows).skycube == oracle
    assert MDMC("cpu").materialise(rows).skycube == oracle
    assert fast_skycube(rows) == oracle


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_fast_skyline_matches_reference(rows):
    d = rows.shape[1]
    for delta in all_subspaces(d):
        assert list(fast_skyline(rows, delta)) == skyline_indices(rows, delta)


@settings(max_examples=40, deadline=None)
@given(datasets(), st.sampled_from([1, 2, 4, 8, 32]))
def test_hashcube_lattice_roundtrip(rows, width):
    lattice = brute_force_skycube(rows).as_lattice()
    cube = HashCube.from_lattice(lattice, word_width=width)
    assert cube.to_lattice() == lattice


@settings(max_examples=30, deadline=None)
@given(datasets(), st.integers(1, 4))
def test_partial_matches_full_below_cut(rows, level):
    d = rows.shape[1]
    level = min(level, d)
    full = brute_force_skycube(rows)
    partial = MDMC("cpu").materialise(rows, max_level=level).skycube
    for delta in partial.subspaces():
        assert partial.skyline(delta) == full.skyline(delta)


@settings(max_examples=30, deadline=None)
@given(datasets())
def test_scale_invariance(rows):
    """Dominance only depends on value order: any strictly increasing
    per-dimension transform preserves the skycube."""
    transformed = 3.0 * rows + 7.0
    assert brute_force_skycube(rows).to_dict() == (
        brute_force_skycube(transformed).to_dict()
    )


@settings(max_examples=30, deadline=None)
@given(datasets(max_n=10), st.permutations(range(4)))
def test_dimension_permutation_consistency(rows, perm):
    """Permuting dimensions permutes subspace masks accordingly."""
    d = rows.shape[1]
    perm = [p for p in perm if p < d]
    if sorted(perm) != list(range(d)):
        return
    permuted = rows[:, perm]
    original = brute_force_skycube(rows)
    shuffled = brute_force_skycube(permuted)
    for delta in all_subspaces(d):
        # dim j of `permuted` is dim perm[j] of `rows`.
        mapped = 0
        for j in range(d):
            if delta & (1 << j):
                mapped |= 1 << perm[j]
        assert shuffled.skyline(delta) == original.skyline(mapped)


@settings(max_examples=25, deadline=None)
@given(datasets(max_n=12))
def test_adding_dominated_point_changes_nothing(rows):
    """Appending a point strictly worse than an existing one leaves
    every subspace skyline unchanged (ids refer to original rows)."""
    worst = rows.max(axis=0) + 1.0
    extended = np.vstack([rows, worst])
    a = brute_force_skycube(rows)
    b = brute_force_skycube(extended)
    for delta in all_subspaces(rows.shape[1]):
        assert a.skyline(delta) == b.skyline(delta)
