"""SKY501 fixture: per-element index loops in an engine module."""

import numpy as np


def per_point_masks(rows, masks):
    out = []
    for i in range(len(rows)):  # SKY501: per-element index loop
        out.append(int(masks[i]))
    for j in range(len(out)):  # SKY501: even just to read
        out[j] |= 1
    return out


def blocked_masks(rows, block):
    total = np.zeros(rows.shape[1])
    for start in range(0, len(rows), block):  # clean: blocked iteration
        total += rows[start:start + block].sum(axis=0)
    for row in rows[: min(4, len(rows))]:  # clean: direct iteration
        total += row
    return total
