"""Suppression fixture: every violation silenced inline."""

from multiprocessing.shared_memory import SharedMemory
from concurrent.futures import ProcessPoolExecutor
import numpy as np


def silenced(nbytes, rows):
    shm = SharedMemory(create=True, size=nbytes)  # skylint: disable=SKY101
    pool = ProcessPoolExecutor()  # skylint: disable=SKY102
    sample = np.random.rand(3)  # skylint: disable=SKY201
    masks = (rows < sample) @ rows  # skylint: disable
    return shm, pool, masks
