"""SKY602 fixture: uint64 shift widths and exponential table sizes.

The flagged forms shift by an unproven count (numpy wraps counts >= 64)
or allocate ``2**d`` tables with no bound on ``d``; the quiet forms use
the repo's masking and guard idioms.
"""

import numpy as np

WORD_BITS = 64
MAX_DIM = 14


def raw_shift(bit):
    return np.uint64(1) << np.uint64(bit)  # line 15: SKY602 (unbounded)


def enclosed_shift(bit):
    return np.uint64(1 << bit)  # line 19: SKY602 (inside the cast)


def unguarded_presence(d):
    return np.zeros(1 << (2 * d), dtype=np.bool_)  # line 23: SKY602


def unguarded_power(d):
    return np.empty(4 ** d, dtype=np.uint8)  # line 27: SKY602


def masked_shift(bit):
    return np.uint64(1) << np.uint64(bit & 63)  # quiet: masked


def divmod_shift(offset):
    word, bit = divmod(offset, WORD_BITS)
    return word, np.uint64(1) << np.uint64(bit)  # quiet: bit in [0, 63]


def guarded_presence(d):
    if not 1 <= d <= MAX_DIM:
        raise ValueError(d)
    return np.zeros(1 << (2 * d), dtype=np.bool_)  # quiet: d guarded
