"""SKY201 fixture: unseeded randomness outside repro.data."""

import random
import numpy as np
from random import shuffle  # line 5: SKY201


def noisy(n):
    data = np.random.rand(n, 4)  # line 9: SKY201
    rng = np.random.default_rng()  # line 10: SKY201 (unseeded)
    jitter = random.random()  # line 11: SKY201
    machine = random.Random()  # line 12: SKY201 (unseeded)
    return data, rng, jitter, machine


def quiet(n, seed):
    rng = np.random.default_rng(seed)  # clean: seeded
    machine = random.Random(seed)  # clean: seeded
    return rng.random((n, 4)), machine
