"""SKY701 fixture: top-level accelerator imports outside engine/jit."""

import numba  # line 3: SKY701
import numpy as np
from cupy import cuda  # line 5: SKY701

import numba.cuda as nbcuda  # line 7: SKY701


def probe():
    import numba  # clean: function-scope, post-probe idiom

    return numba.__version__


def fold(rows):
    from cupy import asarray  # clean: lazy import

    return asarray(np.asarray(rows))
