"""SKY101/SKY102/SKY103 fixture: shared-memory hazards."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def leaky_segment(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # line 8: SKY101
    return shm.name


def safe_segment(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # clean: finally unlinks
    try:
        return shm.name
    finally:
        shm.close()
        shm.unlink()


def stranded_pool(tasks):
    pool = ProcessPoolExecutor(max_workers=2)  # line 22: SKY102
    return [pool.submit(len, task) for task in tasks]


def closed_pool(tasks):
    with ProcessPoolExecutor(max_workers=2) as pool:  # clean: with-block
        return list(pool.map(len, tasks))


def unpicklable_work(pool, rows):
    futures = [pool.submit(lambda row: row.sum(), row) for row in rows]  # SKY103

    def local_task(row):
        return row.sum()

    results = pool.map(local_task, rows)  # line 37: SKY103 (nested def)
    return futures, list(results)
