"""SKY104/SKY105 fixture: shared-memory lifecycle along execution paths.

Unlike ``bad_shm.py`` (SKY101's syntactic shapes), these defects are
path-shaped: one branch returns before the unlink, a helper closes but
never unlinks, a segment is unlinked twice.  SKY101 is suppressed on
the creation lines so each function isolates the flow-rule behaviour;
the clean counterparts at the bottom release through a helper —
syntactically invisible to SKY101, but proven safe by the call-graph
summaries.
"""

from multiprocessing.shared_memory import SharedMemory


def _close_only(segment):
    segment.close()


def _release(segment):
    segment.close()
    segment.unlink()


def early_return_leak(nbytes, fast_path):
    shm = SharedMemory(create=True, size=nbytes)  # skylint: disable=SKY101
    if fast_path:
        shm.close()
        return None  # this path never unlinks
    shm.close()
    shm.unlink()
    return None


def helper_forgets_unlink(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # skylint: disable=SKY101
    _close_only(shm)  # the helper closes but never unlinks
    return None


def double_unlink(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # skylint: disable=SKY101
    shm.close()
    shm.unlink()
    shm.unlink()  # SKY105


def helper_then_unlink(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # skylint: disable=SKY101
    _release(shm)  # already unlinks...
    shm.unlink()  # SKY105


def clean_finally(nbytes):
    shm = SharedMemory(create=True, size=nbytes)
    try:
        return nbytes
    finally:
        shm.close()
        shm.unlink()


def clean_helper_release(nbytes):
    # SKY101 cannot tell `_release` unlinks; the flow rules can.
    shm = SharedMemory(create=True, size=nbytes)  # skylint: disable=SKY101
    try:
        return nbytes
    finally:
        _release(shm)
