"""SKY001 fixture: algorithm classes missing `architecture`."""

from repro.skyline.base import SkylineAlgorithm


class NoArchitecture(SkylineAlgorithm):  # line 7: SKY001
    name = "no-arch"
    parallel = False


class AlsoNoArchitecture(SkylineAlgorithm):  # line 12: SKY001
    name = "also-no-arch"


class DeclaresArchitecture(SkylineAlgorithm):  # clean
    name = "declares-arch"
    architecture = "cpu"


class NotAnAlgorithm:  # clean: no base class
    name = "helper"


class NoRegistryName(SkylineAlgorithm):  # clean: helper without `name`
    parallel = True
