"""SKY301 fixture: ad-hoc dominance comparison chains."""

import numpy as np


def hand_rolled(block, window, p, weights):
    dominated = (window <= block).all()  # line 7: SKY301
    anywhere = np.all(window < block)  # line 8: SKY301
    masks = (block < p) @ weights  # line 9: SKY301
    shapes = (block.shape == window.shape)  # clean: no reduction
    return dominated, anywhere, masks, shapes
