"""SKY002/SKY003 fixture: a template hard-wiring GPU hooks."""

from repro.skyline.skyalign import SkyAlign  # line 3: SKY002
from repro.skyline import GGS, Hybrid  # line 4: SKY002 (GGS only)
import repro.skyline.skyalign  # line 5: SKY002

from repro.templates.base import SkycubeTemplate


class BadTemplate(SkycubeTemplate):
    name = "bad-template"

    def __init__(self):
        super().__init__()
        self.hook = SkyAlign()  # line 15: SKY003
        self._extended_hook = GGS()  # line 16: SKY003
        self.notahook = Hybrid()  # clean: not a hook attribute
