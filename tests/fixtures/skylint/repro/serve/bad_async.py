"""Deliberately broken serving module: blocking calls in coroutines.

Every construct here must trip SKY401 (no-blocking-in-async); the
clean counterparts at the bottom must not.
"""

import socket
import time

from repro.engine.parallel import ParallelExecutor

pool = ParallelExecutor(workers=4)


async def bad_sleep_and_io(path):
    time.sleep(0.5)  # SKY401: blocking sleep
    handle = open(path)  # SKY401: sync file I/O
    return handle


async def bad_sockets(sock):
    conn = socket.create_connection(("localhost", 1234))  # SKY401
    data = sock.recv(4096)  # SKY401: sync socket receive
    return conn, data


async def bad_executor_use(tasks):
    local = ParallelExecutor(workers=2)  # SKY401: pool built on the loop
    results = pool.run(len, tasks)  # SKY401: submission blocks the loop
    return local, results


async def good_counterparts(tasks):
    import asyncio

    await asyncio.sleep(0.5)  # fine: yields the loop
    text = await asyncio.to_thread(_read_file, "x")  # fine: off the loop

    def helper():  # nested sync def runs in a worker thread
        time.sleep(0.1)
        return open("y")

    return text, helper


def _read_file(path):
    with open(path) as handle:  # fine: not a coroutine
        return handle.read()
