"""SKY601 fixture: writes reaching published snapshots and profiles.

Every tainted root is *provable* — a ``ServingSnapshot``/``Profile``
annotation, a factory call, or a ``holder.current`` read.  The quiet
counterparts mutate fresh copies or apply the freezing idiom.
"""

from repro.config.profile import Profile
from repro.serve.snapshot import ServingSnapshot


def _fill_zero(buffer):
    buffer.fill(0)  # mutates arg 0: recorded in the effect summary


def rewrite_ids(snap: ServingSnapshot):
    snap.ids[0] = 0  # line 17: SKY601 (subscript store)
    snap.version = 99  # line 18: SKY601 (attribute store)


def bump(snap: ServingSnapshot):
    snap.hits += 1  # line 22: SKY601 (in-place operation)


def sort_live(holder):
    snap = holder.current  # tainted: a published snapshot read
    snap.ids.sort()  # line 27: SKY601 (mutating method)


def rearm(snap: ServingSnapshot):
    snap.data.setflags(write=True)  # line 31: SKY601 (re-arms writes)


def deep_mutation(snap: ServingSnapshot):
    _fill_zero(snap.data)  # line 35: SKY601 (helper proven mutating)


def tweak_profile(profile: Profile):
    profile.serve.port = 0  # line 39: SKY601 (frozen Profile)


def freeze(snap: ServingSnapshot):
    snap.data.setflags(write=False)  # quiet: the freezing idiom


def safe_copy(snap: ServingSnapshot):
    scratch = snap.data.copy()
    scratch.fill(0)  # quiet: a fresh copy, not the published object
    return scratch
