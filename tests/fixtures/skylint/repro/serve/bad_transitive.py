"""SKY402 fixture: coroutines reaching blocking calls through helpers.

SKY401 cannot see any of these — the blocking primitives live in
synchronous module-level functions, one or two frames below the
coroutine.  Only the call-graph walk connects them.
"""

import asyncio
import time


def _backoff(seconds):
    time.sleep(seconds)  # the primitive, two frames from the coroutine


def _retry(attempts):
    for _ in range(attempts):
        _backoff(0.1)


def _load_config(path):
    return path.read_text()  # blocking file read, one frame away


async def handle(request):
    _retry(3)  # line 26: SKY402 (handle -> _retry -> _backoff)
    return request


async def read_settings(path):
    return _load_config(path)  # line 31: SKY402 (one frame away)


async def quiet(request):
    # The intended fixes stay clean: to_thread takes a *reference*
    # (never a call edge), and asyncio.sleep yields the loop.
    await asyncio.to_thread(_retry, 3)
    await asyncio.sleep(0.01)
    return request
