"""Tests for pivot selection and both partitioning trees."""

import numpy as np
import pytest

from repro.core.bitmask import all_subspaces, dims_of
from repro.core.closures import SubspaceClosures
from repro.core.skyline import skyline_indices
from repro.instrument.counters import Counters
from repro.partitioning.pivots import (
    balanced_pivot,
    partition_mask,
    partition_masks_vectorized,
    quantile_pivots,
    random_skyline_pivot,
)
from repro.partitioning.recursive_tree import classify_skytree
from repro.partitioning.static_tree import StaticTree


class TestPivots:
    def test_balanced_pivot_is_skyline_point(self, workload):
        sky = set(skyline_indices(workload))
        pivot = balanced_pivot(workload, list(range(len(workload))))
        assert pivot in sky

    def test_balanced_pivot_subspace(self, workload):
        d = workload.shape[1]
        delta = 0b11
        sky = set(skyline_indices(workload, delta))
        pivot = balanced_pivot(workload, list(range(len(workload))), delta)
        assert pivot in sky

    def test_balanced_pivot_subset_ids(self, workload):
        ids = list(range(0, len(workload), 2))
        pivot = balanced_pivot(workload, ids)
        assert pivot in ids

    def test_empty_raises(self, workload):
        with pytest.raises(ValueError):
            balanced_pivot(workload, [])

    def test_random_pivot_is_skyline_point(self, workload):
        sky = set(skyline_indices(workload))
        for seed in range(3):
            pivot = random_skyline_pivot(
                workload, list(range(len(workload))), seed=seed
            )
            assert pivot in sky

    def test_quantile_pivots_shape_and_order(self, workload):
        pivots = quantile_pivots(workload, [0.25, 0.5, 0.75])
        assert pivots.shape == (3, workload.shape[1])
        assert np.all(pivots[0] <= pivots[1])
        assert np.all(pivots[1] <= pivots[2])

    def test_quantile_bounds(self, workload):
        with pytest.raises(ValueError):
            quantile_pivots(workload, [0.0])

    def test_partition_mask_figure14(self, flights):
        # Figure 14 uses f2 as pivot over (price, duration).  In our
        # (arrival, duration, price) layout, f0 beats f2 on price
        # (bit 2 unset) but is worse on duration and arrival.
        mask = partition_mask(flights[0], flights[2])
        assert mask == 0b011

    def test_partition_masks_vectorized_matches_scalar(self, workload):
        pivot = np.quantile(workload, 0.5, axis=0)
        vec = partition_masks_vectorized(workload, pivot)
        for i in range(0, len(workload), 5):
            assert int(vec[i]) == partition_mask(workload[i], pivot)


class TestRecursiveTree:
    def test_classification_matches_oracle(self, workload):
        from repro.core.skyline import skyline_and_extended

        d = workload.shape[1]
        ids = list(range(len(workload)))
        for delta in all_subspaces(d):
            kept, _ = classify_skytree(workload, ids, delta)
            got_sky = sorted(pid for pid, dom in kept if not dom)
            got_ext = sorted(pid for pid, _ in kept)
            exp_sky, exp_ext_only = skyline_and_extended(workload, delta)
            assert got_sky == exp_sky, f"skyline mismatch in δ={delta:#b}"
            assert got_ext == sorted(
                exp_sky + exp_ext_only
            ), f"extended mismatch in δ={delta:#b}"

    def test_subset_input(self, workload):
        from repro.core.skyline import skyline_indices

        ids = list(range(0, len(workload), 2))
        delta = (1 << workload.shape[1]) - 1
        kept, _ = classify_skytree(workload, ids, delta)
        sub = workload[np.asarray(ids)]
        expected = [ids[j] for j in skyline_indices(sub, delta)]
        assert sorted(pid for pid, dom in kept if not dom) == expected

    def test_empty_input(self, workload):
        kept, root = classify_skytree(workload, [], 1)
        assert kept == [] and root is None

    def test_counts_work(self, workload):
        counters = Counters()
        delta = (1 << workload.shape[1]) - 1
        classify_skytree(workload, list(range(len(workload))), delta, counters)
        assert counters.dominance_tests > 0
        assert counters.tree_nodes_visited > 0

    def test_all_duplicates(self):
        data = np.tile([[0.5, 0.5, 0.5]], (20, 1))
        kept, _ = classify_skytree(data, list(range(20)), 0b111)
        assert sorted(pid for pid, dom in kept if not dom) == list(range(20))

    def test_deep_chain(self):
        # Strictly increasing chain: only point 0 survives anywhere.
        n = 50
        data = np.column_stack([np.arange(n, dtype=float)] * 2) + [[0.0, 0.0]]
        kept, _ = classify_skytree(data, list(range(n)), 0b11)
        assert kept == [(0, False)]


class TestStaticTree:
    def test_masks_have_expected_meaning(self, workload):
        tree = StaticTree(workload)
        for pos in range(0, len(tree), 5):
            pid = int(tree.ids[pos])
            row = workload[pid][tree.dims]
            med_mask = int(tree.med[pos])
            for i in range(tree.k):
                assert bool(med_mask & (1 << i)) == (row[i] < tree.medians[i])

    def test_leaf_order_sorted_by_path(self, workload):
        tree = StaticTree(workload)
        paths = list(zip(tree.med.tolist(), tree.quart.tolist(), tree.octl.tolist()))
        assert paths == sorted(paths)

    def test_strict_mask_soundness(self, workload):
        """Every dim claimed strict by the tree really is strict."""
        tree = StaticTree(workload)
        rng = np.random.default_rng(0)
        for _ in range(20):
            pos = int(rng.integers(len(tree)))
            masks = tree.leaf_strict_masks(pos)
            target = workload[int(tree.ids[pos])][tree.dims]
            for other in range(0, len(tree), 3):
                claim = int(masks[other])
                row = workload[int(tree.ids[other])][tree.dims]
                for i in dims_of(claim):
                    assert row[i] < target[i], (
                        f"tree claimed leaf {other} beats {pos} on dim {i}"
                    )

    def test_node_strict_mask_soundness(self, workload):
        tree = StaticTree(workload)
        for pos in range(0, len(tree), 7):
            node_masks = tree.node_strict_masks(pos)
            target = workload[int(tree.ids[pos])][tree.dims]
            for node_idx, (m, q, start, end) in enumerate(tree.nodes):
                claim = int(node_masks[node_idx])
                for leaf in range(start, end):
                    row = workload[int(tree.ids[leaf])][tree.dims]
                    for i in dims_of(claim):
                        assert row[i] < target[i]

    def test_prune_mask_soundness(self, workload):
        """A pruned dim proves the leaf cannot dominate the target there."""
        tree = StaticTree(workload)
        for pos in range(0, len(tree), 7):
            prune = tree.leaf_prune_masks(pos)
            target = workload[int(tree.ids[pos])][tree.dims]
            for other in range(len(tree)):
                row = workload[int(tree.ids[other])][tree.dims]
                for i in dims_of(int(prune[other])):
                    assert row[i] > target[i]

    def test_subspace_tree(self, workload):
        delta = 0b11
        tree = StaticTree(workload, delta=delta)
        assert tree.k == 2
        assert tree.dims == [0, 1]

    def test_levels_parameter(self, workload):
        tree1 = StaticTree(workload, levels=1)
        assert np.all(tree1.quart == 0) and np.all(tree1.octl == 0)
        tree2 = StaticTree(workload, levels=2)
        assert np.all(tree2.octl == 0)
        with pytest.raises(ValueError):
            StaticTree(workload, levels=4)

    def test_three_levels_filter_at_least_as_strong(self, workload):
        """Octiles only add strict-dominance evidence (Section 4.3)."""
        tree2 = StaticTree(workload, levels=2)
        tree3 = StaticTree(workload, levels=3)
        pids = np.arange(0, len(workload), 9)
        positions2 = tree2.positions_of(pids)
        positions3 = tree3.positions_of(pids)
        for pos2, pos3 in zip(positions2, positions3):
            strength2 = int(
                np.bitwise_or.reduce(tree2.leaf_strict_masks(pos2))
            )
            strength3 = int(
                np.bitwise_or.reduce(tree3.leaf_strict_masks(pos3))
            )
            assert strength2 & strength3 == strength2

    def test_memory_profile(self, workload):
        tree = StaticTree(workload)
        assert tree.label_bytes() == 24 * len(workload)
        assert tree.memory_bytes() > tree.label_bytes()

    def test_empty_raises(self, workload):
        with pytest.raises(ValueError):
            StaticTree(workload, ids=[])


class TestClosures:
    def test_closure_bits(self):
        closures = SubspaceClosures(3)
        bits = closures.closure(0b101)
        members = {delta for delta in range(1, 8) if bits & (1 << (delta - 1))}
        assert members == {0b001, 0b100, 0b101}

    def test_closure_cached(self):
        closures = SubspaceClosures(4)
        first = closures.closure(0b1111)
        assert closures.cache_size() == 1
        assert closures.closure(0b1111) is first

    def test_dominated_update_matches_definition(self):
        closures = SubspaceClosures(4)
        le, eq = 0b1011, 0b0010
        bits = closures.dominated_update(le, eq)
        for delta in range(1, 16):
            expected = (delta & le) == delta and (delta & eq) != delta
            assert bool(bits & (1 << (delta - 1))) == expected

    def test_empty_masks(self):
        closures = SubspaceClosures(3)
        assert closures.closure(0) == 0
        assert closures.dominated_update(0, 0) == 0

    def test_out_of_range(self):
        closures = SubspaceClosures(3)
        with pytest.raises(ValueError):
            closures.closure(0b1000)
