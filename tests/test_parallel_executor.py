"""The real shared-memory multicore backend (repro.engine.parallel).

Three guarantees are load-bearing: (1) the process backend produces
skycubes equal to the serial reference on every template and workload
shape, (2) a dying worker degrades to a correct result instead of a
crash or a hang, and (3) the shared-memory segment is always unlinked,
even when orchestration raises mid-flight.
"""

import glob
import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data.generator import generate
from repro.engine.parallel import (
    EXECUTORS,
    ParallelExecutor,
    SharedDataset,
    parallel_point_masks,
)
from repro.templates import MDMC, SDSC, STSC


def _square(task):
    return task * task


def _die_in_worker(task):
    """Kill the hosting pool worker; succeed when run in the parent."""
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return task * 2


def _raise_value_error(task):
    raise ValueError(f"task {task} is broken")


def _hang_in_worker(task):
    """Stall the pool worker past any timeout; instant in the parent."""
    import multiprocessing
    import time

    if multiprocessing.parent_process() is not None:
        time.sleep(60)
    return task + 10


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*")) if os.path.isdir("/dev/shm") else set()


class TestSharedDataset:
    def test_roundtrip_view_is_zero_copy_and_readonly(self):
        data = np.arange(12, dtype=np.float64).reshape(4, 3)
        with SharedDataset(data) as shared:
            view = SharedDataset.attach(shared.descriptor)
            np.testing.assert_array_equal(view, data)
            with pytest.raises(ValueError):
                view[0, 0] = 99.0

    def test_descriptor_is_picklable(self):
        import pickle

        data = np.ones((2, 2))
        with SharedDataset(data) as shared:
            name, shape, dtype = pickle.loads(pickle.dumps(shared.descriptor))
            assert shape == (2, 2)

    def test_unlinks_segment_on_error(self):
        data = np.ones((4, 3))
        with pytest.raises(RuntimeError):
            with SharedDataset(data) as shared:
                name = shared.name
                raise RuntimeError("boom")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_no_leaked_segments_after_template_run(self):
        before = _shm_segments()
        data = generate("independent", 80, 4, seed=5)
        MDMC(executor="process", workers=2).materialise(data)
        assert _shm_segments() == before

    def test_double_close_is_safe(self):
        shared = SharedDataset(np.ones((2, 2)))
        shared.close()
        shared.close()

    def test_rejects_empty_array(self):
        with pytest.raises(ValueError):
            SharedDataset(np.empty((0, 3)))


class TestParallelExecutor:
    def test_serial_when_single_worker(self):
        out = ParallelExecutor(workers=1).run(_square, [1, 2, 3])
        assert out == [1, 4, 9]

    def test_process_pool_preserves_task_order(self):
        tasks = list(range(20))
        costs = [20 - t for t in tasks]  # skewed so LPT actually bins
        out = ParallelExecutor(workers=4).run(_square, tasks, costs)
        assert out == [t * t for t in tasks]

    def test_worker_death_degrades_to_correct_result(self):
        executor = ParallelExecutor(workers=2, max_retries=1)
        out = executor.run(_die_in_worker, [1, 2, 3, 4])
        assert out == [2, 4, 6, 8]

    def test_timeout_kills_pool_and_falls_back(self):
        executor = ParallelExecutor(
            workers=2, task_timeout=0.5, max_retries=0
        )
        assert executor.run(_hang_in_worker, [1, 2]) == [11, 12]

    def test_task_exception_surfaces_from_serial_fallback(self):
        executor = ParallelExecutor(workers=2, max_retries=0)
        with pytest.raises(ValueError, match="is broken"):
            executor.run(_raise_value_error, [1, 2])

    def test_cost_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2).run(_square, [1, 2], costs=[1.0])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(task_timeout=0)
        with pytest.raises(ValueError):
            ParallelExecutor(max_retries=-1)

    def test_empty_task_list(self):
        assert ParallelExecutor(workers=4).run(_square, []) == []


class TestBackendEquality:
    """Acceptance: workers=4 equals the serial backend on A/I/C."""

    WORKLOADS = [
        ("independent", 120, 4, 1),
        ("correlated", 120, 4, 2),
        ("anticorrelated", 100, 4, 3),
    ]

    @pytest.mark.parametrize(
        "dist,n,d,seed", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    @pytest.mark.parametrize("template", [STSC, SDSC, MDMC])
    def test_process_equals_serial(self, template, dist, n, d, seed):
        data = generate(dist, n, d, seed=seed)
        serial = template().materialise(data)
        pooled = template(executor="process", workers=4).materialise(data)
        assert pooled.skycube == serial.skycube

    def test_partial_skycube_equality(self):
        data = generate("anticorrelated", 90, 5, seed=4)
        for template in (STSC, SDSC, MDMC):
            serial = template().materialise(data, max_level=2)
            pooled = template(executor="process", workers=3).materialise(
                data, max_level=2
            )
            assert pooled.skycube == serial.skycube

    def test_point_masks_match_fast_skycube(self):
        from repro.core.hashcube import HashCube
        from repro.engine.kernels import fast_extended_skyline, fast_skycube

        data = generate("independent", 150, 4, seed=9)
        splus = fast_extended_skyline(data)
        rows = np.ascontiguousarray(data[splus])
        masks = parallel_point_masks(
            rows, ParallelExecutor(workers=3), block=16
        )
        cube = HashCube(4)
        cube.insert_batch(zip((int(i) for i in splus), masks))
        assert cube == fast_skycube(data).store

    def test_single_point_dataset(self):
        data = np.array([[0.5, 0.5, 0.5]])
        for template in (STSC, SDSC, MDMC):
            run = template(executor="process", workers=2).materialise(data)
            assert run.skycube.skyline(0b111) == (0,)

    def test_unknown_executor_rejected(self):
        assert EXECUTORS == ("serial", "process")
        for template in (STSC, SDSC, MDMC):
            with pytest.raises(ValueError):
                template(executor="threads")
            with pytest.raises(ValueError):
                template(workers=0)
