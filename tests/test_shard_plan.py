"""Tests for repro.shard.plan: partitioners and the merge oracle.

The load-bearing property is the **local-skyline union property**: for
every partitioner, every global skyline point is a local skyline point
of its own shard, so the union of local skylines is a complete merge
candidate set and one refine sweep recovers the exact global skyline —
ties, duplicates and all.  The partitioner sweep here (all partitioners
x A/I/C distributions x d in 2..8 x duplicate-heavy data) is what lets
the coordinator treat partitioning as a pure performance knob.
"""

import numpy as np
import pytest

from repro.data.generator import generate
from repro.engine.kernels import fast_skyline
from repro.shard.plan import PARTITIONER_NAMES, PARTITIONERS, ShardPlan

DISTRIBUTIONS = ("anticorrelated", "independent", "correlated")


def merged_skyline(plan, data, delta=None):
    """The coordinator's merge, as plain reference code."""
    candidates = np.concatenate([
        plan.local_skyline(data, shard, delta)
        for shard in range(plan.shards)
    ])
    if len(candidates) == 0:
        return []
    survivors = fast_skyline(
        np.ascontiguousarray(data[candidates]), delta
    )
    return sorted(int(pid) for pid in candidates[survivors])


# -- structure ---------------------------------------------------------


class TestPlanStructure:
    @pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
    def test_plan_is_a_partition(self, partitioner):
        data = generate("independent", 120, 4, seed=1)
        plan = ShardPlan.build(data, 5, partitioner=partitioner)
        assert sorted(np.concatenate(
            [plan.ids_of(s) for s in range(plan.shards)]
        ).tolist()) == list(range(120))
        assert sum(plan.sizes) == 120
        # order is shard-major and each shard is one contiguous slice.
        for shard in range(plan.shards):
            start, stop = plan.bounds(shard)
            assert np.all(plan.assignment[plan.order[start:stop]] == shard)

    @pytest.mark.parametrize(
        "partitioner", [n for n in PARTITIONER_NAMES if n != "grid"]
    )
    def test_chunked_partitioners_balance(self, partitioner):
        data = generate("anticorrelated", 103, 3, seed=2)
        plan = ShardPlan.build(data, 4, partitioner=partitioner)
        assert max(plan.sizes) - min(plan.sizes) <= 1

    def test_grid_single_shard_is_trivial(self):
        data = generate("independent", 30, 3, seed=0)
        plan = ShardPlan.build(data, 1, partitioner="grid")
        assert plan.sizes == [30]

    @pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
    def test_deterministic_per_seed(self, partitioner):
        data = generate("independent", 80, 4, seed=3)
        a = ShardPlan.build(data, 3, partitioner=partitioner, seed=7)
        b = ShardPlan.build(data, 3, partitioner=partitioner, seed=7)
        assert np.array_equal(a.assignment, b.assignment)
        assert np.array_equal(a.order, b.order)

    def test_random_seed_changes_assignment(self):
        data = generate("independent", 200, 4, seed=3)
        a = ShardPlan.build(data, 4, partitioner="random", seed=0)
        b = ShardPlan.build(data, 4, partitioner="random", seed=1)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_describe_names_the_layout(self):
        data = generate("independent", 40, 3, seed=0)
        plan = ShardPlan.build(data, 2, partitioner="angular")
        info = plan.describe()
        assert info["shards"] == 2
        assert info["partitioner"] == "angular"
        assert info["n"] == 40 and info["d"] == 3
        assert sum(info["sizes"]) == 40

    def test_plan_arrays_are_frozen(self):
        data = generate("independent", 20, 2, seed=0)
        plan = ShardPlan.build(data, 2)
        with pytest.raises(ValueError):
            plan.assignment[0] = 1
        with pytest.raises(ValueError):
            plan.order[0] = 1


class TestPlanErrors:
    def test_more_shards_than_points(self):
        data = generate("independent", 3, 2, seed=0)
        with pytest.raises(ValueError, match="cannot split 3 points"):
            ShardPlan.build(data, 4)

    def test_nonpositive_shards(self):
        data = generate("independent", 10, 2, seed=0)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardPlan.build(data, 0)

    def test_unknown_partitioner_lists_names(self):
        data = generate("independent", 10, 2, seed=0)
        with pytest.raises(ValueError) as excinfo:
            ShardPlan.build(data, 2, partitioner="hash")
        for name in PARTITIONER_NAMES:
            assert name in str(excinfo.value)

    def test_empty_dataset(self):
        with pytest.raises(ValueError, match="non-empty"):
            ShardPlan.build(np.empty((0, 3)), 1)

    def test_assignment_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            ShardPlan(np.asarray([0, 1, 2]), 2, "manual", d=2)

    def test_bounds_out_of_range(self):
        data = generate("independent", 10, 2, seed=0)
        plan = ShardPlan.build(data, 2)
        with pytest.raises(IndexError):
            plan.bounds(2)


# -- the union property and exact merges -------------------------------


class TestUnionProperty:
    @pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("d", range(2, 9))
    def test_global_skyline_subset_of_local_union(
        self, partitioner, distribution, d
    ):
        data = generate(distribution, 64, d, seed=d)
        plan = ShardPlan.build(data, 3, partitioner=partitioner, seed=d)
        union = set()
        for shard in range(plan.shards):
            union.update(
                int(pid) for pid in plan.local_skyline(data, shard)
            )
        global_sky = set(
            int(pid) for pid in fast_skyline(np.ascontiguousarray(data))
        )
        assert global_sky <= union

    @pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_merge_recovers_exact_skyline_per_subspace(
        self, partitioner, distribution
    ):
        d = 4
        data = generate(distribution, 96, d, seed=11)
        plan = ShardPlan.build(data, 4, partitioner=partitioner)
        for delta in (None, 0b1111, 0b0101, 0b0011, 0b1000):
            want = sorted(
                int(pid)
                for pid in fast_skyline(np.ascontiguousarray(data), delta)
            )
            assert merged_skyline(plan, data, delta) == want, (
                partitioner, distribution, delta
            )

    @pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
    def test_merge_exact_with_duplicates_and_ties(self, partitioner):
        """Duplicate rows (incomparable ties) must all survive the
        distributed merge, even when the copies land on different
        shards."""
        rng = np.random.default_rng(5)
        base = rng.integers(0, 4, size=(40, 3)).astype(np.float64)
        data = np.ascontiguousarray(np.vstack([base, base[:10], base[:5]]))
        plan = ShardPlan.build(data, 5, partitioner=partitioner)
        for delta in (None, 0b011, 0b100):
            want = sorted(
                int(pid)
                for pid in fast_skyline(data, delta)
            )
            assert merged_skyline(plan, data, delta) == want

    def test_union_property_survives_empty_shards(self):
        """A skewed grid may leave shards empty; the merge must not
        care."""
        data = np.ascontiguousarray(
            np.ones((32, 3)) + np.arange(32)[:, None]
        )
        plan = ShardPlan.build(data, 4, partitioner="grid")
        assert 0 in plan.sizes  # the point of this fixture
        want = sorted(int(pid) for pid in fast_skyline(data))
        assert merged_skyline(plan, data) == want

    def test_every_partitioner_is_registered(self):
        assert set(PARTITIONER_NAMES) == set(PARTITIONERS)
        assert PARTITIONER_NAMES == tuple(sorted(PARTITIONER_NAMES))
