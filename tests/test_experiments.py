"""Smoke tests of the experiment harness (tables, runner, report)."""

import os

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.report import Table, format_seconds
from repro.experiments.runner import ALGORITHM_KEYS, build_run


class TestTable:
    def test_add_and_lookup(self):
        table = Table("t", ["k", "v"])
        table.add_row("a", 1)
        table.add_row("b", 2.5)
        assert table.cell("a", "v") == 1
        assert table.column("v") == [1, 2.5]

    def test_wrong_arity(self):
        table = Table("t", ["k", "v"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_missing_row(self):
        table = Table("t", ["k", "v"])
        with pytest.raises(KeyError):
            table.cell("nope", "v")

    def test_format_contains_everything(self):
        table = Table("Title", ["a", "b"], notes=["hello"])
        table.add_row("x", 12345)
        text = table.format()
        assert "Title" in text and "12345" in text and "hello" in text

    def test_save(self, tmp_path):
        table = Table("T", ["a"])
        table.add_row(1)
        path = table.save("out.txt", str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert "T" in handle.read()

    def test_float_rendering(self):
        table = Table("t", ["v"])
        table.add_row(0.00001)
        table.add_row(123456.0)
        table.add_row(1.5)
        text = table.format()
        assert "1.00e-05" in text and "1.23e+05" in text and "1.5" in text


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(0.0005) == "0.50 ms"
        assert format_seconds(1.25) == "1.25 s"
        assert format_seconds(250.0) == "250 s"


class TestRunner:
    def test_cache_returns_same_object(self):
        a = build_run("mdmc-cpu", "independent", 80, 4, seed=1)
        b = build_run("mdmc-cpu", "independent", 80, 4, seed=1)
        assert a is b

    def test_all_keys_buildable(self):
        for key in ALGORITHM_KEYS:
            run = build_run(key, "independent", 60, 3, seed=2)
            assert run.skycube.skyline(0b111)

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            build_run("magic", "independent", 10, 3)

    def test_registry_covers_every_figure_and_table(self):
        expected = {
            "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig13", "table02", "table03",
            "ablations",
        }
        assert set(EXPERIMENTS) == expected
        for module in EXPERIMENTS.values():
            assert callable(module.run)
