"""Tests for the lattice, HashCube and Skycube facade."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bitmask import all_subspaces
from repro.core.hashcube import HashCube
from repro.core.lattice import Lattice
from repro.core.skycube import Skycube
from repro.core.verify import brute_force_skycube


def figure1_lattice():
    """The flights skycube of Figure 1a as a Lattice."""
    return Lattice.from_dict(
        3,
        {
            0b111: [0, 1, 2, 3],
            0b110: [0, 1, 3],
            0b101: [0, 1, 2],
            0b011: [1, 2, 3],
            0b100: [0],
            0b010: [3],
            0b001: [2],
        },
    )


class TestLattice:
    def test_figure1_redundancy(self):
        # The paper notes each id is stored 4 times over 7 subspaces.
        lattice = figure1_lattice()
        assert lattice.total_ids_stored() == 16
        assert lattice.is_complete()

    def test_sorted_storage(self):
        lattice = Lattice(2)
        lattice.set_cuboid(0b01, [3, 1, 2])
        assert lattice.skyline(0b01) == (1, 2, 3)

    def test_extended_bookkeeping(self):
        lattice = Lattice(2)
        lattice.set_cuboid(0b11, [0, 1], extended_only_ids=[4])
        assert lattice.extended_skyline(0b11) == (0, 1, 4)
        assert lattice.extended_only(0b11) == (4,)
        assert lattice.input_size(0b11) == 3
        lattice.drop_extended(0b11)
        assert lattice.extended_only(0b11) == ()
        assert lattice.skyline(0b11) == (0, 1)

    def test_incomplete(self):
        lattice = Lattice(3)
        lattice.set_cuboid(0b111, [0])
        assert not lattice.is_complete()
        assert lattice.is_complete(max_level=3) is False
        assert lattice.has_cuboid(0b111)
        assert not lattice.has_cuboid(0b001)

    def test_partial_completeness(self):
        lattice = Lattice(2)
        lattice.set_cuboid(0b01, [0])
        lattice.set_cuboid(0b10, [1])
        assert lattice.is_complete(max_level=1)
        assert not lattice.is_complete()

    def test_invalid_subspace_rejected(self):
        lattice = Lattice(2)
        with pytest.raises(KeyError):
            lattice.set_cuboid(0b100, [0])
        with pytest.raises(KeyError):
            lattice.skyline(0)

    def test_level_sizes(self):
        lattice = figure1_lattice()
        assert lattice.level_sizes() == {3: 4, 2: 9, 1: 3}

    def test_equality(self):
        assert figure1_lattice() == figure1_lattice()
        other = figure1_lattice()
        other.set_cuboid(0b001, [0])
        assert figure1_lattice() != other


class TestHashCube:
    def test_figure1_roundtrip(self):
        lattice = figure1_lattice()
        cube = HashCube.from_lattice(lattice, word_width=4)
        for delta in all_subspaces(3):
            assert cube.skyline(delta) == lattice.skyline(delta)
        assert cube.to_lattice() == lattice

    def test_figure1_word_split(self):
        # Paper Appendix B.1: B_{f1∉S} splits into w1=000, w0=1011 at
        # w=4... our flights fixture reverses dim order, so check the
        # relation via the membership mask instead.
        lattice = figure1_lattice()
        cube = HashCube.from_lattice(lattice, word_width=4)
        mask = cube.membership_mask(4)
        # f4 is in no skyline: mask must have all 7 bits set.
        assert mask == (1 << 7) - 1

    def test_insert_query(self):
        cube = HashCube(2, word_width=2)
        cube.insert(0, 0b000)  # in every skyline
        cube.insert(1, 0b011)  # only in S_3
        assert cube.skyline(1) == (0,)
        assert cube.skyline(2) == (0,)
        assert cube.skyline(3) == (0, 1)

    def test_fully_dominated_point_not_stored(self):
        cube = HashCube(2, word_width=4)
        cube.insert(7, 0b111)
        assert cube.total_ids_stored() == 0
        assert cube.point_ids() == ()

    def test_compression_beats_lattice(self):
        lattice = figure1_lattice()
        cube = HashCube.from_lattice(lattice, word_width=8)
        # One word of width >= 7: each point stored at most once, and
        # the everywhere-dominated f4 not at all.
        assert cube.total_ids_stored() == 4
        assert cube.compression_ratio_vs(lattice) >= 4

    def test_mask_out_of_range(self):
        cube = HashCube(2)
        with pytest.raises(ValueError):
            cube.insert(0, 1 << 3)

    def test_contains_matches_skyline(self):
        lattice = figure1_lattice()
        cube = HashCube.from_lattice(lattice, word_width=4)
        for delta in all_subspaces(3):
            members = set(cube.skyline(delta))
            for pid in range(6):
                assert cube.contains(pid, delta) == (pid in members)

    def test_contains_unknown_and_dominated_ids(self):
        cube = HashCube(2, word_width=4)
        cube.insert(7, 0b111)  # dominated everywhere: omitted words
        assert not cube.contains(7, 1)
        assert not cube.contains(7, 3)
        assert not cube.contains(99, 1)  # never inserted

    def test_contains_invalid_subspace(self):
        cube = HashCube(2)
        cube.insert(0, 0)
        with pytest.raises(KeyError):
            cube.contains(0, 0)
        with pytest.raises(KeyError):
            cube.contains(0, 1 << 2)

    @given(
        st.lists(st.integers(0, 2**7 - 1), min_size=1, max_size=12),
        st.sampled_from([1, 3, 4, 7, 8, 32]),
    )
    def test_contains_agrees_with_membership_mask(self, masks, width):
        cube = HashCube(3, word_width=width)
        for pid, mask in enumerate(masks):
            cube.insert(pid, mask)
        for pid, mask in enumerate(masks):
            for delta in all_subspaces(3):
                expected = not mask & (1 << (delta - 1))
                assert cube.contains(pid, delta) == expected

    def test_rejects_incomplete_lattice(self):
        lattice = Lattice(2)
        lattice.set_cuboid(0b11, [0])
        with pytest.raises(ValueError):
            HashCube.from_lattice(lattice)

    @given(
        st.lists(st.integers(0, 2**7 - 1), min_size=1, max_size=12),
        st.sampled_from([1, 3, 4, 7, 8, 32]),
    )
    def test_roundtrip_any_masks(self, masks, width):
        cube = HashCube(3, word_width=width)
        for pid, mask in enumerate(masks):
            cube.insert(pid, mask)
        for pid, mask in enumerate(masks):
            assert cube.membership_mask(pid) == mask
        for delta in all_subspaces(3):
            expected = tuple(
                pid for pid, mask in enumerate(masks)
                if not mask & (1 << (delta - 1))
            )
            assert cube.skyline(delta) == expected


class TestSkycube:
    def test_facade_over_lattice(self, flights):
        cube = Skycube(figure1_lattice(), data=flights)
        assert cube.skyline(0b011) == (1, 2, 3)
        assert cube.skyline_points(0b100).shape == (1, 3)
        assert len(list(cube.subspaces())) == 7

    def test_facade_over_hashcube(self):
        store = HashCube.from_lattice(figure1_lattice())
        cube = Skycube(store)
        assert cube.skyline(0b011) == (1, 2, 3)
        assert cube.as_lattice() == figure1_lattice()

    def test_equality_across_representations(self):
        a = Skycube(figure1_lattice())
        b = Skycube(HashCube.from_lattice(figure1_lattice()))
        assert a == b

    def test_partial_raises_above_level(self):
        lattice = Lattice(3)
        for delta in (1, 2, 4):
            lattice.set_cuboid(delta, [0])
        cube = Skycube(lattice, max_level=1)
        assert cube.skyline(1) == (0,)
        with pytest.raises(KeyError):
            cube.skyline(0b011)
        with pytest.raises(ValueError):
            cube.as_hashcube()

    def test_rejects_unknown_store(self):
        with pytest.raises(TypeError):
            Skycube({})


class TestBruteForceOracle:
    def test_matches_reference_per_subspace(self, workload):
        from repro.core.skyline import skyline_indices

        cube = brute_force_skycube(workload)
        for delta in all_subspaces(workload.shape[1]):
            assert list(cube.skyline(delta)) == skyline_indices(workload, delta)

    def test_flights_matches_figure1(self, flights):
        cube = brute_force_skycube(flights)
        assert cube.as_lattice() == figure1_lattice()

    def test_membership_masks_match_lattice(self, flights):
        from repro.core.verify import brute_force_membership_masks

        masks = brute_force_membership_masks(flights)
        lattice = figure1_lattice()
        for delta in all_subspaces(3):
            ids = tuple(
                pid for pid in range(5) if not masks[pid] & (1 << (delta - 1))
            )
            assert ids == lattice.skyline(delta)

    def test_verify_skycube_flags_mismatch(self, flights):
        from repro.core.verify import verify_skycube

        cube = brute_force_skycube(flights)
        assert verify_skycube(cube, flights) == []
        bad = Lattice(3)
        for delta, ids in cube.as_lattice().cuboids():
            bad.set_cuboid(delta, ids)
        bad.set_cuboid(0b001, [0, 2])  # inject a spurious id
        problems = verify_skycube(Skycube(bad), flights)
        assert len(problems) == 1
        assert "spurious" in problems[0]

    def test_partial_oracle(self, flights):
        cube = brute_force_skycube(flights, max_level=2)
        assert len(list(cube.subspaces())) == 6
        with pytest.raises(KeyError):
            cube.skyline(0b111)
