"""Unit tests for dominance tests, comparison masks and mask tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.dominance import (
    DominanceTester,
    comparison_masks,
    dominance_masks_vs_all,
    dominates,
    mask_test,
    strictly_dominates,
)
from repro.instrument.counters import Counters

point = st.lists(
    st.integers(0, 4).map(float), min_size=1, max_size=6
)


class TestComparisonMasks:
    def test_paper_flight_example(self, flights):
        # Paper (Section 2.1): B_{f0<=f1} = 100, B_{f1<=f0} = 011,
        # B_{f0=f1} = 000, with bit order (Price=2, Duration=1, Arrival=0).
        f0, f1 = flights[0], flights[1]
        le01, _, eq01 = comparison_masks(f0[::-1][::-1], f1)
        le01, _, eq01 = comparison_masks(f0, f1)
        # Our fixture stores (arrival, duration, price): bit2 = price.
        assert le01 == 0b100
        assert eq01 == 0b000
        le10, _, _ = comparison_masks(f1, f0)
        assert le10 == 0b011

    def test_equal_points(self):
        le, lt, eq = comparison_masks([1.0, 2.0], [1.0, 2.0])
        assert le == 0b11 and eq == 0b11 and lt == 0

    @given(point, point)
    def test_mask_consistency(self, p, q):
        if len(p) != len(q):
            q = (q * len(p))[: len(p)]
        le, lt, eq = comparison_masks(p, q)
        assert le == (lt | eq)
        assert lt & eq == 0
        le_r, lt_r, eq_r = comparison_masks(q, p)
        assert eq == eq_r
        assert lt & lt_r == 0  # cannot both be strictly better on a dim
        full = (1 << len(p)) - 1
        assert (le | le_r) == full  # every dim is <=, >= or both


class TestDominates:
    def test_paper_examples(self, flights):
        # f1 ≺ f0 in δ=011 ({Duration, Arrival}); f3 ≺≺ f4 in δ=110;
        # f3 ≺ f4 but not ≺≺ in δ=111 (equal arrival).
        assert dominates(flights[1], flights[0], 0b011)
        assert strictly_dominates(flights[3], flights[4], 0b110)
        assert dominates(flights[3], flights[4], 0b111)
        assert not strictly_dominates(flights[3], flights[4], 0b111)

    def test_no_self_dominance(self):
        p = [1.0, 2.0, 3.0]
        assert not dominates(p, p, 0b111)

    def test_duplicate_points_do_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0], 0b11)

    def test_counters_record_work(self):
        counters = Counters()
        dominates([1.0, 2.0], [2.0, 3.0], 0b11, counters)
        assert counters.dominance_tests == 1
        assert counters.values_loaded == 4

    @given(point, point, point)
    def test_transitivity(self, p, q, r):
        size = min(len(p), len(q), len(r))
        p, q, r = p[:size], q[:size], r[:size]
        delta = (1 << size) - 1
        if dominates(p, q, delta) and dominates(q, r, delta):
            assert dominates(p, r, delta)

    @given(point, point)
    def test_strict_implies_dominance(self, p, q):
        size = min(len(p), len(q))
        p, q = p[:size], q[:size]
        delta = (1 << size) - 1
        if strictly_dominates(p, q, delta):
            assert dominates(p, q, delta)

    @given(point, point)
    def test_antisymmetry(self, p, q):
        size = min(len(p), len(q))
        p, q = p[:size], q[:size]
        delta = (1 << size) - 1
        assert not (dominates(p, q, delta) and dominates(q, p, delta))

    @given(point, point, st.integers(1, 63))
    def test_subspace_projection_consistency(self, p, q, raw):
        size = min(len(p), len(q))
        p, q = p[:size], q[:size]
        delta = raw & ((1 << size) - 1)
        if delta == 0:
            return
        # Dominance in δ must agree with full-space dominance of the
        # projected points.
        from repro.core.bitmask import dims_of

        dims = dims_of(delta)
        proj_p = [p[i] for i in dims]
        proj_q = [q[i] for i in dims]
        assert dominates(p, q, delta) == dominates(
            proj_p, proj_q, (1 << len(dims)) - 1
        )


class TestVectorized:
    def test_matches_scalar(self, workload):
        data = workload
        for j in (0, len(data) // 2, len(data) - 1):
            le, lt, eq = dominance_masks_vs_all(data, data[j])
            for i in range(0, len(data), 7):
                s_le, s_lt, s_eq = comparison_masks(data[i], data[j])
                assert (le[i], lt[i], eq[i]) == (s_le, s_lt, s_eq)

    def test_rejects_high_dims(self):
        data = np.zeros((2, 64))
        with pytest.raises(ValueError):
            dominance_masks_vs_all(data, data[0])


class TestMaskTest:
    def test_passing_is_necessary_for_dominance(self, workload):
        """Equation 1: whenever p ≺δ q, the mask test must pass."""
        data = workload
        d = data.shape[1]
        pivot = np.quantile(data, 0.5, axis=0)
        from repro.partitioning.pivots import partition_masks_vectorized

        masks = partition_masks_vectorized(data, pivot)
        delta = (1 << d) - 1
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j = rng.integers(0, len(data), 2)
            if dominates(data[i], data[j], delta):
                assert mask_test(int(masks[i]), int(masks[j]), delta)

    def test_failing_disproves_dominance(self):
        # pivot-le-p = 01 means p >= pivot on dim 0 only; if q is below
        # the pivot on dim 0 (mask bit unset) then p cannot dominate q
        # in any subspace containing dim 0.
        assert not mask_test(0b01, 0b00, 0b01)
        assert mask_test(0b01, 0b01, 0b01)


class TestDominanceTester:
    def test_bound_subspace(self, flights):
        tester = DominanceTester(flights, delta=0b011)
        assert tester.dominates(1, 0)
        assert not tester.dominates(0, 1)
        assert tester.counters.dominance_tests == 2

    def test_default_full_space(self, flights):
        tester = DominanceTester(flights)
        assert tester.delta == 0b111
        assert tester.dominates(3, 4)
        assert not tester.strictly_dominates(3, 4)

    def test_masks(self, flights):
        tester = DominanceTester(flights)
        le, lt, eq = tester.masks(1, 0)
        assert le == 0b011 and eq == 0
