"""Tests for the related-work extensions: ClosedSkycube and SUBSKY."""

import numpy as np
import pytest

from repro.core.bitmask import all_subspaces, is_subspace_of
from repro.core.closed import ClosedSkycube
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.instrument.counters import Counters
from repro.query import SubskyIndex


class TestClosedSkycube:
    def build(self, workload):
        lattice = brute_force_skycube(workload).as_lattice()
        return lattice, ClosedSkycube.from_lattice(lattice)

    def test_queries_match_lattice(self, workload):
        lattice, closed = self.build(workload)
        for delta in all_subspaces(workload.shape[1]):
            assert closed.skyline(delta) == lattice.skyline(delta)

    def test_compresses(self, workload):
        lattice, closed = self.build(workload)
        assert closed.num_classes() <= len(lattice.materialised_subspaces())
        assert closed.total_ids_stored() <= lattice.total_ids_stored()

    def test_correlated_data_compresses_hard(self):
        """Tiny skylines repeat across subspaces → few classes."""
        data = generate("correlated", 200, 6, seed=4)
        lattice = brute_force_skycube(data).as_lattice()
        closed = ClosedSkycube.from_lattice(lattice)
        assert closed.num_classes() < 63 / 2
        assert closed.compression_ratio_vs(lattice) > 1.5

    def test_closed_subspaces_are_maximal(self, workload):
        _, closed = self.build(workload)
        for delta in all_subspaces(workload.shape[1]):
            maximal = closed.closed_subspaces(delta)
            assert maximal, "every class has at least one closed subspace"
            for closed_delta in maximal:
                assert closed.skyline(closed_delta) == closed.skyline(delta)
            # No closed member contains another.
            for a in maximal:
                for b in maximal:
                    assert a == b or not is_subspace_of(a, b)

    def test_class_sizes_partition_lattice(self, workload):
        _, closed = self.build(workload)
        total = sum(size * count for size, count in closed.class_sizes().items())
        assert total == 2 ** workload.shape[1] - 1

    def test_rejects_incomplete(self):
        from repro.core.lattice import Lattice

        partial = Lattice(3)
        partial.set_cuboid(0b111, [0])
        with pytest.raises(ValueError):
            ClosedSkycube.from_lattice(partial)

    def test_invalid_query(self, workload):
        _, closed = self.build(workload)
        with pytest.raises(KeyError):
            closed.skyline(0)


class TestSubskyIndex:
    def test_exact_on_every_subspace(self, workload):
        from repro.core.skyline import skyline_indices

        index = SubskyIndex(workload, num_anchors=3)
        for delta in all_subspaces(workload.shape[1]):
            assert index.subspace_skyline(delta) == skyline_indices(
                workload, delta
            )

    def test_anchor_counts(self, workload):
        from repro.core.skyline import skyline_indices

        full = (1 << workload.shape[1]) - 1
        for anchors in (1, 2, 8):
            index = SubskyIndex(workload, num_anchors=anchors)
            assert index.subspace_skyline(full) == skyline_indices(workload)

    def test_pruning_saves_work_on_correlated_data(self):
        data = generate("correlated", 800, 4, seed=2)
        index = SubskyIndex(data)
        counters = Counters()
        index.subspace_skyline(0b1111, counters)
        assert counters.values_loaded < 4 * len(data) / 2, (
            "early termination should skip most of a correlated dataset"
        )

    def test_degrades_with_dimensionality(self):
        """The paper's point: ad-hoc pruning collapses as d grows."""
        visited = {}
        for d in (2, 6):
            data = generate("independent", 400, d, seed=5)
            index = SubskyIndex(data)
            counters = Counters()
            index.subspace_skyline((1 << d) - 1, counters)
            visited[d] = counters.values_loaded / d
        assert visited[6] > visited[2]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            SubskyIndex(np.empty((0, 3)))
        with pytest.raises(ValueError):
            SubskyIndex(np.array([[np.nan, 1.0]]))
        with pytest.raises(ValueError):
            SubskyIndex(np.array([[1.0, 2.0]]), num_anchors=0)
        index = SubskyIndex(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            index.subspace_skyline(0)

    def test_memory_linear(self):
        data = generate("independent", 500, 4, seed=0)
        index = SubskyIndex(data)
        assert index.memory_bytes() < 16 * 500 + 1024
