"""Tests for skycube analytics and online maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytics import (
    membership_masks,
    minimal_subspaces,
    most_robust_points,
    skyline_frequency,
    subspace_stability,
)
from repro.core.bitmask import all_subspaces
from repro.core.maintain import SkycubeMaintainer
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate


class TestAnalytics:
    def test_membership_masks_match_oracle(self, workload):
        from repro.core.verify import brute_force_membership_masks

        cube = brute_force_skycube(workload)
        masks = membership_masks(cube)
        oracle = brute_force_membership_masks(workload)
        full = (1 << (2 ** workload.shape[1] - 1)) - 1
        for pid, not_in in oracle.items():
            assert masks.get(pid, 0) == full & ~not_in

    def test_frequency_flights(self, flights):
        cube = brute_force_skycube(flights)
        frequency = skyline_frequency(cube)
        # Figure 1a: f1 appears in S7, S6, S5, S3 (4 subspaces).
        assert frequency[1] == 4
        assert 4 not in frequency  # f4 is in no skyline

    def test_most_robust(self, flights):
        cube = brute_force_skycube(flights)
        ranked = most_robust_points(cube, k=2)
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]
        with pytest.raises(ValueError):
            most_robust_points(cube, k=0)

    def test_minimal_subspaces_flights(self, flights):
        cube = brute_force_skycube(flights)
        minimal = minimal_subspaces(cube)
        # f0 is the price minimum: δ=4 is minimal for it.
        assert 0b100 in minimal[0]
        # f1 is in S3/S5/S6/S7 but no singleton: minimal = {3, 5, 6}.
        assert sorted(minimal[1]) == [0b011, 0b101, 0b110]
        # A point in no skyline has no minimal subspaces.
        assert minimal_subspaces(cube, point_id=4) == {4: []}

    def test_minimal_subspaces_are_minimal(self, workload):
        cube = brute_force_skycube(workload)
        masks = membership_masks(cube)
        for pid, deltas in minimal_subspaces(cube).items():
            for delta in deltas:
                assert masks[pid] & (1 << (delta - 1))
                from repro.core.bitmask import proper_submasks

                for sub in proper_submasks(delta):
                    assert not masks[pid] & (1 << (sub - 1))

    def test_subspace_stability(self, flights):
        cube = brute_force_skycube(flights)
        # f0 (cheapest): in every superspace of {price}.
        assert subspace_stability(cube, 0, 0b100)
        # f3: in S2 and its superspaces S3, S6, S7.
        assert subspace_stability(cube, 3, 0b010)
        # f2: in S1 but not in S... S1⊂S3✓ S5✓ S7✓ — stable too; test
        # a negative: f1 is in S3 but not in singleton subspaces of it.
        assert not subspace_stability(cube, 1, 0b001)
        assert not subspace_stability(cube, 4, 0b001)


class TestMaintainer:
    def test_batch_matches_oracle(self, workload):
        maintainer = SkycubeMaintainer(workload)
        oracle = brute_force_skycube(workload)
        for delta in all_subspaces(workload.shape[1]):
            assert maintainer.skyline(delta) == list(oracle.skyline(delta))
        assert maintainer.skycube() == oracle

    def test_incremental_equals_batch(self):
        data = generate("independent", 60, 3, seed=8)
        maintainer = SkycubeMaintainer(d=3)
        for row in data:
            maintainer.insert(row)
        assert maintainer.skycube() == brute_force_skycube(data)

    def test_insert_then_delete_roundtrip(self):
        data = generate("anticorrelated", 40, 3, seed=2)
        maintainer = SkycubeMaintainer(data)
        before = {d: maintainer.skyline(d) for d in all_subspaces(3)}
        new_id = maintainer.insert(np.zeros(3))  # dominates everything
        assert maintainer.skyline(0b111) == [new_id]
        maintainer.delete(new_id)
        for delta in all_subspaces(3):
            assert maintainer.skyline(delta) == before[delta], (
                f"delete must restore δ={delta:#b}"
            )

    def test_delete_original_point(self):
        data = generate("independent", 50, 3, seed=4)
        maintainer = SkycubeMaintainer(data)
        victim = maintainer.skyline(0b111)[0]
        maintainer.delete(victim)
        remaining = np.array(
            [row for i, row in enumerate(data) if i != victim]
        )
        oracle = brute_force_skycube(remaining)
        # Compare by value: ids shift after deletion in the oracle.
        kept_ids = [i for i in range(len(data)) if i != victim]
        for delta in all_subspaces(3):
            expected = sorted(kept_ids[j] for j in oracle.skyline(delta))
            assert maintainer.skyline(delta) == expected

    def test_duplicate_insertion(self):
        maintainer = SkycubeMaintainer(d=2)
        a = maintainer.insert([0.5, 0.5])
        b = maintainer.insert([0.5, 0.5])
        assert maintainer.skyline(0b11) == [a, b]

    def test_errors(self):
        maintainer = SkycubeMaintainer(d=2)
        with pytest.raises(ValueError):
            maintainer.insert([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            maintainer.insert([np.nan, 1.0])
        with pytest.raises(KeyError):
            maintainer.delete(99)
        with pytest.raises(ValueError):
            SkycubeMaintainer()
        with pytest.raises(ValueError):
            SkycubeMaintainer(np.zeros((2, 3)), d=4)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.lists(st.integers(0, 3).map(float), min_size=3, max_size=3),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_random_update_sequences(self, operations):
        """After any update sequence, the maintained masks equal a
        from-scratch computation on the surviving points."""
        maintainer = SkycubeMaintainer(d=3)
        live = {}
        for action, values in operations:
            if action == "insert" or not live:
                pid = maintainer.insert(values)
                live[pid] = values
            else:
                victim = sorted(live)[0]
                maintainer.delete(victim)
                del live[victim]
        if not live:
            return
        rows = np.array([live[pid] for pid in sorted(live)])
        oracle = brute_force_skycube(rows)
        ordered = sorted(live)
        for delta in all_subspaces(3):
            expected = sorted(ordered[j] for j in oracle.skyline(delta))
            assert maintainer.skyline(delta) == expected
