"""Tests for the reference skyline/extended-skyline operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import all_subspaces, proper_submasks
from repro.core.skyline import (
    extended_skyline_indices,
    skyline_and_extended,
    skyline_indices,
)

small_dataset = st.lists(
    st.lists(st.integers(0, 5).map(float), min_size=2, max_size=4),
    min_size=1,
    max_size=24,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


class TestPaperExample:
    def test_full_space_skyline(self, flights):
        # Table 1: f0..f3 in the skyline, f4 dominated by f3.
        assert skyline_indices(flights) == [0, 1, 2, 3]

    def test_business_traveller_subspace(self, flights):
        # δ=3 ({Duration, Arrival}): S_3 = {f1, f2, f3}.
        assert skyline_indices(flights, 0b011) == [1, 2, 3]

    def test_extended_skyline_includes_shared_value(self, flights):
        # S+_3 also contains f4 (shares arrival time with f3).
        assert extended_skyline_indices(flights, 0b011) == [1, 2, 3, 4]

    def test_singleton_subspaces(self, flights):
        # Fig 1a: S_4 = {f0} (price), S_2 = {f3} (duration), S_1 = {f2}.
        assert skyline_indices(flights, 0b100) == [0]
        assert skyline_indices(flights, 0b010) == [3]
        assert skyline_indices(flights, 0b001) == [2]

    def test_full_lattice_matches_figure_1a(self, flights):
        expected = {
            0b111: [0, 1, 2, 3],
            0b110: [0, 1, 3],
            0b101: [0, 1, 2],
            0b011: [1, 2, 3],
            0b100: [0],
            0b010: [3],
            0b001: [2],
        }
        for delta, ids in expected.items():
            assert skyline_indices(flights, delta) == ids


class TestEdgeCases:
    def test_single_point(self):
        data = np.array([[1.0, 2.0]])
        assert skyline_indices(data) == [0]
        assert extended_skyline_indices(data) == [0]

    def test_all_duplicates(self):
        data = np.array([[1.0, 2.0]] * 5)
        # Duplicates do not dominate each other: all in the skyline.
        assert skyline_indices(data) == [0, 1, 2, 3, 4]

    def test_chain(self):
        data = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        assert skyline_indices(data) == [0]
        assert extended_skyline_indices(data) == [0]

    def test_invalid_subspace(self):
        data = np.array([[1.0, 2.0]])
        with pytest.raises(ValueError):
            skyline_indices(data, 0)
        with pytest.raises(ValueError):
            skyline_indices(data, 0b100)

    def test_rejects_1d_array(self):
        with pytest.raises(ValueError):
            skyline_indices(np.array([1.0, 2.0]))


class TestInvariants:
    def test_skyline_subset_of_extended(self, workload):
        d = workload.shape[1]
        for delta in all_subspaces(d):
            sky = set(skyline_indices(workload, delta))
            ext = set(extended_skyline_indices(workload, delta))
            assert sky <= ext

    def test_extended_monotone_in_subspace(self, workload):
        """S+_δ ⊇ S+_δ' for δ' ⊂ δ — the top-down traversal's licence."""
        d = workload.shape[1]
        full = (1 << d) - 1
        ext_full = set(extended_skyline_indices(workload, full))
        for delta in proper_submasks(full):
            assert set(extended_skyline_indices(workload, delta)) <= ext_full

    def test_skyline_of_subspace_inside_parent_extended(self, workload):
        d = workload.shape[1]
        full = (1 << d) - 1
        ext_full = set(extended_skyline_indices(workload, full))
        for delta in proper_submasks(full):
            assert set(skyline_indices(workload, delta)) <= ext_full

    def test_pair_function_consistent(self, workload):
        d = workload.shape[1]
        for delta in all_subspaces(d):
            sky, ext_only = skyline_and_extended(workload, delta)
            assert sky == skyline_indices(workload, delta)
            combined = sorted(set(sky) | set(ext_only))
            assert combined == extended_skyline_indices(workload, delta)
            assert not set(sky) & set(ext_only)

    @settings(max_examples=30, deadline=None)
    @given(small_dataset)
    def test_no_skyline_point_dominated(self, rows):
        from repro.core.dominance import dominates

        data = np.array(rows)
        delta = (1 << data.shape[1]) - 1
        sky = skyline_indices(data, delta)
        assert sky, "skyline of a non-empty set is non-empty"
        for j in sky:
            for i in range(len(data)):
                assert not dominates(data[i], data[j], delta)

    @settings(max_examples=30, deadline=None)
    @given(small_dataset)
    def test_every_dropped_point_has_a_skyline_dominator(self, rows):
        from repro.core.dominance import dominates

        data = np.array(rows)
        delta = (1 << data.shape[1]) - 1
        sky = skyline_indices(data, delta)
        for j in range(len(data)):
            if j in sky:
                continue
            assert any(dominates(data[i], data[j], delta) for i in sky)
