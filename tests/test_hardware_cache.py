"""Tests for the LRU cache/TLB simulators and scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cache import LINE_BYTES, Cache, CacheHierarchy, TLB
from repro.hardware.schedule import lpt_assign, lpt_makespan


class TestCache:
    def test_repeat_access_hits(self):
        cache = Cache(64 * 1024)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1020)  # same 64-byte line

    def test_capacity_eviction(self):
        cache = Cache(8 * LINE_BYTES, ways=8)  # one set, 8 ways
        for i in range(9):
            cache.access(i * LINE_BYTES * cache.num_sets)
        # First line was LRU-evicted by the ninth insert.
        assert not cache.access(0)

    def test_lru_order(self):
        cache = Cache(2 * LINE_BYTES, ways=2)  # one set, two ways
        cache.access(0)
        cache.access(LINE_BYTES)
        cache.access(0)  # refresh line 0
        cache.access(2 * LINE_BYTES)  # evicts line 1 (LRU)
        assert cache.access(0)
        assert not cache.access(LINE_BYTES)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Cache(LINE_BYTES, ways=8)

    def test_streaming_large_array_misses_every_line(self):
        cache = Cache(32 * 1024)
        hierarchy = CacheHierarchy({"l2": cache})
        misses = hierarchy.stream(0, 1024 * 1024)
        assert misses["l2"] == 1024 * 1024 // LINE_BYTES

    def test_resident_structure_hits_after_warmup(self):
        cache = Cache(64 * 1024)
        hierarchy = CacheHierarchy({"l2": cache})
        hierarchy.stream(0, 16 * 1024)  # warm
        cache.reset_stats()
        hierarchy.stream(0, 16 * 1024)
        assert cache.stats.miss_rate < 0.05

    def test_hierarchy_probe_order(self):
        l2 = Cache(4 * 1024, ways=4)
        l3 = Cache(64 * 1024, ways=8)
        hierarchy = CacheHierarchy({"l2": l2, "l3": l3})
        assert hierarchy.access(0) == "memory"
        assert hierarchy.access(0) == "l2"
        # Evict from tiny L2 by streaming, then find it in L3.
        for i in range(1, 200):
            hierarchy.access(i * LINE_BYTES)
        assert hierarchy.access(0) == "l3"

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy({})


class TestContentionBehaviour:
    """The qualitative claims the analytic model encodes."""

    def test_two_interleaved_working_sets_thrash(self):
        """Two 'threads' sharing a cache evict each other once their
        combined working set exceeds capacity (the L3 story of Fig 8)."""
        capacity = 64 * 1024
        solo = Cache(capacity)
        CacheHierarchy({"c": solo}).stream(0, 48 * 1024)
        solo.reset_stats()
        CacheHierarchy({"c": solo}).stream(0, 48 * 1024)
        solo_rate = solo.stats.miss_rate

        shared = Cache(capacity)
        hierarchy = CacheHierarchy({"c": shared})
        # warm both, then interleave accesses of two 48 KB sets.
        hierarchy.stream(0, 48 * 1024)
        hierarchy.stream(1 << 20, 48 * 1024)
        shared.reset_stats()
        for offset in range(0, 48 * 1024, LINE_BYTES):
            hierarchy.access(offset)
            hierarchy.access((1 << 20) + offset)
        assert shared.stats.miss_rate > solo_rate + 0.3

    def test_miss_fraction_matches_simulator(self):
        """The closed form tracks steady-state LRU under the random
        re-touch pattern it models (cyclic scans are LRU's worst case
        and intentionally not what the formula describes)."""
        import numpy as np

        from repro.hardware.model import miss_fraction

        capacity = 32 * 1024
        rng = np.random.default_rng(0)
        for ws_factor in (0.5, 2.0, 4.0):
            ws = int(capacity * ws_factor)
            lines = ws // LINE_BYTES
            cache = Cache(capacity, ways=16)
            addresses = rng.integers(0, lines, 6 * lines) * LINE_BYTES
            for address in addresses[: 2 * lines]:  # warm
                cache.access(int(address))
            cache.reset_stats()
            for address in addresses[2 * lines:]:
                cache.access(int(address))
            predicted = miss_fraction(ws, capacity)
            assert abs(cache.stats.miss_rate - predicted) < 0.15, (
                f"ws={ws_factor}×cap: sim={cache.stats.miss_rate:.3f} "
                f"model={predicted:.3f}"
            )


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB(entries=4, page_bytes=4096)
        assert not tlb.access(0)
        assert tlb.access(100)  # same page
        assert not tlb.access(4096)

    def test_eviction(self):
        tlb = TLB(entries=2, page_bytes=4096)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(8192)
        assert not tlb.access(0)

    def test_coverage(self):
        assert TLB(entries=1024, page_bytes=4096).coverage_bytes == 4 * 1024 * 1024

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestScheduler:
    def test_single_worker_sums(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == 6.0

    def test_perfect_split(self):
        assert lpt_makespan([2.0, 2.0, 2.0, 2.0], 2) == 4.0

    def test_dominant_task_bounds_makespan(self):
        assert lpt_makespan([10.0, 1.0, 1.0], 4) == 10.0

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0
        assert lpt_assign([], 2) == [[], []]

    def test_assignment_covers_all_tasks(self):
        bins = lpt_assign([5.0, 3.0, 2.0, 2.0, 1.0], 2)
        assert sorted(i for b in bins for i in b) == [0, 1, 2, 3, 4]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30),
        st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, costs, workers):
        makespan = lpt_makespan(costs, workers)
        assert makespan >= max(costs) - 1e-9
        assert makespan >= sum(costs) / workers - 1e-9
        assert makespan <= sum(costs) + 1e-9

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_more_workers_never_worse(self, costs):
        times = [lpt_makespan(costs, w) for w in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
