"""Cross-validation of every skycube algorithm/template vs the oracle."""

import numpy as np
import pytest

from repro.core.bitmask import all_subspaces, subspaces_at_level
from repro.core.verify import brute_force_skycube, verify_skycube
from repro.instrument.counters import Counters
from repro.skycube import (
    BottomUpSkycube,
    DistributedSkycube,
    PQSkycube,
    QSkycube,
)
from repro.templates import MDMC, SDSC, STSC, TemplateSpecialisationError


def all_builders():
    return [
        ("qskycube", QSkycube()),
        ("pqskycube", PQSkycube()),
        ("bottomup", BottomUpSkycube()),
        ("distributed", DistributedSkycube(workers=3)),
        ("stsc-cpu", STSC()),
        ("sdsc-cpu", SDSC("cpu")),
        ("sdsc-gpu", SDSC("gpu")),
        ("mdmc-cpu", MDMC("cpu")),
        ("mdmc-gpu", MDMC("gpu")),
    ]


@pytest.fixture(params=all_builders(), ids=lambda pair: pair[0])
def builder(request):
    return request.param[1]


class TestCorrectness:
    def test_matches_oracle(self, builder, workload):
        expected = brute_force_skycube(workload)
        run = builder.materialise(workload)
        assert run.skycube == expected, (
            f"{builder.name}: {verify_skycube(run.skycube, workload)[:3]}"
        )

    def test_flights(self, builder, flights):
        run = builder.materialise(flights)
        assert run.skycube.skyline(0b111) == (0, 1, 2, 3)
        assert run.skycube.skyline(0b011) == (1, 2, 3)
        assert run.skycube.skyline(0b100) == (0,)

    def test_duplicate_heavy(self, builder):
        from repro.data.generator import generate

        data = generate("independent", 60, 3, seed=5, distinct_values=2)
        expected = brute_force_skycube(data)
        run = builder.materialise(data)
        assert run.skycube == expected

    def test_single_point(self, builder):
        data = np.array([[0.5, 0.5, 0.5]])
        run = builder.materialise(data)
        for delta in all_subspaces(3):
            assert run.skycube.skyline(delta) == (0,)


class TestPartialSkycube:
    """Appendix A.2: materialise only levels ≤ d'."""

    @pytest.mark.parametrize("max_level", [1, 2, 3])
    def test_partial_matches_oracle_below_cut(self, builder, max_level):
        from repro.data.generator import generate

        data = generate("anticorrelated", 50, 4, seed=9)
        expected = brute_force_skycube(data)
        run = builder.materialise(data, max_level=max_level)
        assert run.skycube.max_level == max_level
        for level in range(1, max_level + 1):
            for delta in subspaces_at_level(4, level):
                assert run.skycube.skyline(delta) == expected.skyline(delta), (
                    f"{builder.name} δ={delta:#b}"
                )

    def test_partial_blocks_queries_above_cut(self, builder, flights):
        run = builder.materialise(flights, max_level=1)
        with pytest.raises(KeyError):
            run.skycube.skyline(0b011)

    def test_invalid_max_level(self, builder, flights):
        with pytest.raises(ValueError):
            builder.materialise(flights, max_level=0)
        with pytest.raises(ValueError):
            builder.materialise(flights, max_level=4)


class TestTraces:
    def test_lattice_methods_have_level_phases(self, workload):
        d = workload.shape[1]
        run = STSC().materialise(workload)
        # root + one phase per level below the top.
        assert len(run.phases) == d
        assert run.phases[0].name == "root"
        widths = [len(phase.tasks) for phase in run.phases[1:]]
        import math

        assert widths == [math.comb(d, level) for level in range(d - 1, 0, -1)]

    def test_mdmc_has_point_tasks(self, workload):
        run = MDMC("cpu").materialise(workload)
        assert len(run.phases) == 2
        from repro.core.skyline import extended_skyline_indices

        splus = extended_skyline_indices(workload)
        assert len(run.phases[1].tasks) == len(splus)

    def test_counters_aggregate(self, workload):
        counters = Counters()
        run = QSkycube().materialise(workload, counters=counters)
        assert run.counters is counters
        assert counters.dominance_tests > 0
        total = Counters()
        for phase in run.phases:
            total.merge(phase.total_counters())
        assert total.dominance_tests == counters.dominance_tests

    def test_peak_memory_positive(self, workload):
        for builder in (PQSkycube(), MDMC("cpu")):
            run = builder.materialise(workload)
            assert run.peak_memory_bytes() > 0

    def test_pq_marks_shared_trees_stsc_does_not(self, workload):
        pq_run = PQSkycube().materialise(workload)
        st_run = STSC().materialise(workload)
        pq_shared = sum(
            task.profile.shared_pointer_bytes
            for phase in pq_run.phases
            for task in phase.tasks
        )
        st_shared = sum(
            task.profile.shared_pointer_bytes
            for phase in st_run.phases
            for task in phase.tasks
        )
        assert pq_shared > 0
        assert st_shared == 0

    def test_mdmc_gpu_reports_state(self, workload):
        run = MDMC("gpu").materialise(workload)
        d = workload.shape[1]
        task = run.phases[1].tasks[0]
        assert task.counters.extra["state_bytes"] == 2 * (2**d) // 8


class TestTemplateSpecialisation:
    def test_stsc_rejects_gpu(self):
        with pytest.raises(TemplateSpecialisationError):
            STSC("gpu")

    def test_unknown_architecture(self):
        with pytest.raises(TemplateSpecialisationError):
            SDSC("fpga")

    def test_sdsc_rejects_sequential_hook(self):
        from repro.skyline import BlockNestedLoops

        with pytest.raises(ValueError):
            SDSC("cpu", hook=BlockNestedLoops())

    def test_sdsc_default_hooks(self):
        assert SDSC("cpu").hook.name == "hybrid"
        assert SDSC("gpu").hook.name == "skyalign"

    def test_stsc_rejects_gpu_only_hook(self):
        """Regression: STSC used to accept a GPU-only hook silently."""
        from repro.skyline.skyalign import SkyAlign

        with pytest.raises(TemplateSpecialisationError, match="gpu-only"):
            STSC(hook=SkyAlign())

    def test_sdsc_rejects_architecture_mismatched_hook(self):
        from repro.skyline.gpu_baselines import GNL
        from repro.skyline.hybrid import Hybrid

        with pytest.raises(TemplateSpecialisationError, match="gpu-only"):
            SDSC("cpu", hook=GNL())
        with pytest.raises(TemplateSpecialisationError, match="cpu-only"):
            SDSC("gpu", hook=Hybrid())

    def test_matching_hooks_still_accepted(self):
        from repro.skyline.hybrid import Hybrid
        from repro.skyline.skyalign import SkyAlign

        assert STSC(hook=Hybrid()).hook.name == "hybrid"
        assert SDSC("gpu", hook=SkyAlign()).hook.name == "skyalign"

    def test_mdmc_engines(self):
        assert MDMC("cpu").engine.name == "cpu"
        assert MDMC("gpu").engine.name == "gpu"


class TestRelativeWork:
    def test_topdown_beats_bottomup(self):
        """The motivation for top-down traversal (Section 3)."""
        from repro.data.generator import generate

        data = generate("independent", 150, 5, seed=2)
        top, bottom = Counters(), Counters()
        QSkycube().materialise(data, counters=top)
        BottomUpSkycube().materialise(data, counters=bottom)
        assert top.dominance_tests < bottom.dominance_tests

    def test_distributed_records_communication(self):
        """The cluster baseline pays shipping costs shared memory
        does not (Section 3: Anthill is not for a single node)."""
        from repro.data.generator import generate

        data = generate("independent", 120, 4, seed=6)
        counters = Counters()
        DistributedSkycube(workers=4).materialise(data, counters=counters)
        assert counters.extra["messages"] >= 4 * 15  # workers x cuboids
        assert counters.extra["bytes_shipped"] > 0

    def test_gpu_spec_does_more_processing_than_cpu(self):
        """Section 6.2: warp votes make every lane test, so the GPU
        engine performs far more DTs than the node-pruned CPU engine."""
        from repro.data.generator import generate

        data = generate("independent", 150, 5, seed=2)
        cpu, gpu = Counters(), Counters()
        MDMC("cpu").materialise(data, counters=cpu)
        MDMC("gpu").materialise(data, counters=gpu)
        assert gpu.dominance_tests > cpu.dominance_tests
        # ... while its coalesced scans dominate its traffic profile.
        assert gpu.sequential_bytes > gpu.random_bytes
