"""Tests for repro.config: the validated deployment-profile layer.

The two ISSUE 6 acceptance properties live here: an empty profile
reproduces the shipped defaults bit-for-bit (checked against the
actual constructor/CLI defaults, not copies of them), and any invalid
knob fails with an error naming the offending key.
"""

import inspect

import pytest

from repro.config import (
    DEFAULT_PROFILE,
    EngineSection,
    FilterSection,
    Profile,
    ProfileError,
    ServeSection,
    ShardSection,
    TraceSection,
    apply_filter_gates,
    load_profile,
    profile_from_dict,
)
from repro.config._toml import parse_toml_subset

GOOD_TOML = """
# a full profile touching every section
[serve]
host = "0.0.0.0"
port = 9000
window_ms = 1.5
max_batch = 128
max_pending = 2048
max_level = 3
live = true

[engine]
engine = "packed-filtered"
executor = "process"
workers = 4

[filter]
prefilter_min_rows = 256
prefilter_max_paths = 0.5

[trace]
path = "traces/prod.jsonl"
flush_every = 1

[shard]
shards = 4
partitioner = "angular"
worker_timeout_s = 5.0
"""


@pytest.fixture
def good_profile(tmp_path):
    path = tmp_path / "prod.toml"
    path.write_text(GOOD_TOML)
    return load_profile(str(path))


# -- the bit-for-bit default invariant ---------------------------------


class TestDefaults:
    def test_empty_file_equals_default_profile(self, tmp_path):
        path = tmp_path / "empty.toml"
        path.write_text("")
        profile = load_profile(str(path))
        assert profile == Profile(source=str(path))
        # Same knobs as no profile at all (source aside).
        for section in ("serve", "engine", "filter", "trace", "shard"):
            assert getattr(profile, section) == getattr(
                DEFAULT_PROFILE, section
            )

    def test_empty_sections_equal_defaults(self):
        profile = profile_from_dict(
            {"serve": {}, "engine": {}, "filter": {}, "trace": {},
             "shard": {}}
        )
        assert profile.serve == ServeSection()
        assert profile.engine == EngineSection()
        assert profile.filter == FilterSection()
        assert profile.trace == TraceSection()
        assert profile.shard == ShardSection()

    def test_serve_defaults_match_service_constructor(self):
        """The profile defaults ARE the constructor defaults — compare
        against the live signature so drift cannot go unnoticed."""
        from repro.serve import SkycubeService

        parameters = inspect.signature(SkycubeService.__init__).parameters
        section = ServeSection()
        assert parameters["window"].default == section.window_ms / 1000.0
        assert parameters["max_batch"].default == section.max_batch
        assert parameters["max_pending"].default == section.max_pending

    def test_filter_defaults_leave_kernel_gates_alone(self):
        from repro.engine import kernels

        before = (kernels.PREFILTER_MIN_ROWS, kernels.PREFILTER_MAX_PATHS)
        apply_filter_gates(DEFAULT_PROFILE)
        assert (
            kernels.PREFILTER_MIN_ROWS, kernels.PREFILTER_MAX_PATHS
        ) == before

    def test_engine_defaults_match_build_run(self):
        """All three engine knobs use a ``None`` sentinel in
        :func:`build_run` so explicit arguments (even ones equal to the
        shipped default, like ``executor="serial"``) are
        distinguishable from "not passed" and always beat the
        profile."""
        from repro.experiments.runner import build_run

        parameters = inspect.signature(build_run.__wrapped__).parameters
        section = EngineSection()
        assert parameters["executor"].default is None
        assert parameters["workers"].default == section.workers
        assert parameters["engine"].default == section.engine
        # ...and the resolved fallback is still the section default.
        assert section.executor == "serial"

    def test_describe_is_quiet_on_defaults(self):
        assert DEFAULT_PROFILE.describe().endswith("defaults")


# -- loading and validation -------------------------------------------


class TestLoading:
    def test_full_profile_round_trips(self, good_profile):
        assert good_profile.serve.host == "0.0.0.0"
        assert good_profile.serve.port == 9000
        assert good_profile.serve.window_ms == 1.5
        assert good_profile.serve.max_batch == 128
        assert good_profile.serve.max_pending == 2048
        assert good_profile.serve.max_level == 3
        assert good_profile.serve.live is True
        assert good_profile.engine.engine == "packed-filtered"
        assert good_profile.engine.executor == "process"
        assert good_profile.engine.workers == 4
        assert good_profile.filter.prefilter_min_rows == 256
        assert good_profile.filter.prefilter_max_paths == 0.5
        assert good_profile.trace.path == "traces/prod.jsonl"
        assert good_profile.trace.flush_every == 1
        assert good_profile.shard.shards == 4
        assert good_profile.shard.partitioner == "angular"
        assert good_profile.shard.worker_timeout_s == 5.0

    def test_profile_is_hashable_and_frozen(self, good_profile):
        assert isinstance(hash(good_profile), int)
        with pytest.raises(AttributeError):
            good_profile.serve = ServeSection()

    def test_missing_file_raises_profile_error(self):
        with pytest.raises(ProfileError, match="cannot read"):
            load_profile("/nonexistent/prod.toml")

    def test_yaml_profile_loads_when_pyyaml_present(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "prod.yaml"
        path.write_text("serve:\n  window_ms: 3.0\n")
        assert load_profile(str(path)).serve.window_ms == 3.0

    def test_fallback_parser_agrees_with_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert parse_toml_subset(GOOD_TOML) == tomllib.loads(GOOD_TOML)

    def test_fallback_parser_rejects_what_it_cannot_parse(self):
        for text in (
            "[serve\nwindow_ms = 1\n",
            "serve]\n",
            "window_ms\n",
            "key = \n",
            "[a.b]\nx = 1\n",
            "[[servers]]\nx = 1\n",
            "x = [1, 2]\n",
        ):
            with pytest.raises(ValueError, match="line"):
                parse_toml_subset(text)

    def test_fallback_parser_scalars_and_comments(self):
        parsed = parse_toml_subset(
            "# header\ntop = 1\n[s]\na = 'x'  # trailing\nb = true\n"
            "c = 1_000\nd = -2.5\n"
        )
        assert parsed == {
            "top": 1,
            "s": {"a": "x", "b": True, "c": 1000, "d": -2.5},
        }


class TestValidation:
    @pytest.mark.parametrize("data, named_key", [
        ({"serve": {"windw_ms": 1.0}}, "serve.windw_ms"),
        ({"serv": {"window_ms": 1.0}}, "[serv]"),
        ({"serve": {"window_ms": -1.0}}, "serve.window_ms"),
        ({"serve": {"max_batch": 0}}, "serve.max_batch"),
        ({"serve": {"max_pending": 0}}, "serve.max_pending"),
        ({"serve": {"port": 70_000}}, "serve.port"),
        ({"serve": {"max_level": -1}}, "serve.max_level"),
        ({"serve": {"live": 1}}, "serve.live"),
        ({"serve": {"window_ms": "fast"}}, "serve.window_ms"),
        ({"serve": {"max_batch": True}}, "serve.max_batch"),
        ({"engine": {"executor": "gpu"}}, "engine.executor"),
        ({"engine": {"engine": "warp"}}, "engine.engine"),
        ({"engine": {"workers": 0}}, "engine.workers"),
        ({"filter": {"prefilter_max_paths": 1.5}},
         "filter.prefilter_max_paths"),
        ({"filter": {"prefilter_min_rows": -1}},
         "filter.prefilter_min_rows"),
        ({"trace": {"flush_every": 0}}, "trace.flush_every"),
        ({"trace": {"path": 7}}, "trace.path"),
        ({"shard": {"shards": -1}}, "shard.shards"),
        ({"shard": {"partitioner": "hash"}}, "shard.partitioner"),
        ({"shard": {"worker_timeout_s": 0}}, "shard.worker_timeout_s"),
        ({"shard": {"worker_timeout_s": "slow"}}, "shard.worker_timeout_s"),
    ])
    def test_invalid_knob_names_the_key(self, data, named_key):
        with pytest.raises(ProfileError) as excinfo:
            profile_from_dict(data)
        assert named_key in str(excinfo.value)

    def test_typo_gets_a_suggestion(self):
        with pytest.raises(ProfileError, match="did you mean 'window_ms'"):
            profile_from_dict({"serve": {"window_m": 1.0}})

    def test_bad_partitioner_lists_the_known_names(self):
        from repro.shard.plan import PARTITIONER_NAMES

        with pytest.raises(ProfileError) as excinfo:
            profile_from_dict({"shard": {"partitioner": "hash"}})
        for name in PARTITIONER_NAMES:
            assert name in str(excinfo.value)

    def test_section_must_be_a_table(self):
        with pytest.raises(ProfileError, match=r"\[serve\] must be a table"):
            profile_from_dict({"serve": 3})

    def test_profile_must_be_a_mapping(self):
        with pytest.raises(ProfileError, match="table of sections"):
            profile_from_dict([1, 2])  # type: ignore[arg-type]


# -- consumers ---------------------------------------------------------


class TestConsumers:
    def test_apply_filter_gates_sets_kernel_constants(self, monkeypatch):
        from repro.engine import kernels

        # monkeypatch restores the real gates after the test.
        monkeypatch.setattr(
            kernels, "PREFILTER_MIN_ROWS", kernels.PREFILTER_MIN_ROWS
        )
        monkeypatch.setattr(
            kernels, "PREFILTER_MAX_PATHS", kernels.PREFILTER_MAX_PATHS
        )
        profile = profile_from_dict({
            "filter": {
                "prefilter_min_rows": 99, "prefilter_max_paths": 0.125,
            },
        })
        apply_filter_gates(profile)
        assert kernels.PREFILTER_MIN_ROWS == 99
        assert kernels.PREFILTER_MAX_PATHS == 0.125

    def test_build_run_profile_fills_engine_defaults(self, monkeypatch):
        import repro.experiments.runner as runner

        calls = []
        real_builder = runner._builder

        def spy(key, executor="serial", workers=None, engine=None, backend=None):
            calls.append((key, executor, workers, engine))
            return real_builder(key, executor, workers, engine, backend)

        monkeypatch.setattr(runner, "_builder", spy)
        profile = profile_from_dict({
            "engine": {"engine": "loop", "workers": 2},
        })
        run = runner.build_run(
            "mdmc-cpu", "independent", 30, 3, profile=profile
        )
        assert calls == [("mdmc-cpu", "serial", 2, "loop")]
        assert len(list(run.skycube.subspaces())) == 7

    def test_build_run_explicit_argument_beats_profile(self, monkeypatch):
        import repro.experiments.runner as runner

        calls = []
        real_builder = runner._builder

        def spy(key, executor="serial", workers=None, engine=None, backend=None):
            calls.append((key, executor, workers, engine))
            return real_builder(key, executor, workers, engine, backend)

        monkeypatch.setattr(runner, "_builder", spy)
        profile = profile_from_dict({"engine": {"engine": "loop"}})
        runner.build_run(
            "mdmc-cpu", "independent", 30, 3, engine="packed",
            profile=profile,
        )
        assert calls == [("mdmc-cpu", "serial", None, "packed")]

    def test_build_run_explicit_serial_beats_process_profile(
        self, monkeypatch
    ):
        """Regression: ``executor="serial"`` used to be indistinguishable
        from the default, so a ``process`` profile silently won over an
        explicit request for the serial path."""
        import repro.experiments.runner as runner

        calls = []
        real_builder = runner._builder

        def spy(key, executor="serial", workers=None, engine=None, backend=None):
            calls.append((key, executor, workers, engine))
            return real_builder(key, executor, workers, engine, backend)

        monkeypatch.setattr(runner, "_builder", spy)
        profile = profile_from_dict({"engine": {"executor": "process"}})
        runner.build_run(
            "mdmc-cpu", "independent", 30, 3, executor="serial",
            profile=profile,
        )
        assert calls == [("mdmc-cpu", "serial", None, None)]
        # ...while leaving the knob unset still lets the profile fill it.
        calls.clear()
        runner.build_run(
            "mdmc-cpu", "independent", 31, 3, profile=profile
        )
        assert calls == [("mdmc-cpu", "process", None, None)]

    def test_build_run_profile_result_matches_no_profile(self):
        from repro.experiments.runner import build_run

        plain = build_run("mdmc-cpu", "independent", 40, 3, seed=9)
        profiled = build_run(
            "mdmc-cpu", "independent", 40, 3, seed=9,
            profile=profile_from_dict({"engine": {"engine": "packed"}}),
        )
        for delta in range(1, 8):
            assert plain.skycube.skyline(delta) == (
                profiled.skycube.skyline(delta)
            )

    def test_serve_cli_rejects_bad_profile(self, tmp_path):
        import os
        import subprocess
        import sys

        bad = tmp_path / "bad.toml"
        bad.write_text("[serve]\nwindw_ms = 1.0\n")
        data = tmp_path / "d.npy"
        import numpy as np

        np.save(data, np.random.default_rng(0).random((10, 3)))
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(os.path.dirname(repro.__file__))]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", str(data),
             "--profile", str(bad)],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert result.returncode != 0
        assert "serve.windw_ms" in result.stderr
