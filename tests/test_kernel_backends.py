"""Kernel-backend parity oracle and selection semantics.

Every registered backend of :mod:`repro.engine.jit` must be
bit-identical to the numpy reference (and to the brute-force oracle)
on anticorrelated/independent/correlated data for every d in 2..8,
with duplicate and tied rows present.  The suite must pass both with
and without the ``[accel]`` extra installed: backend-specific tests
run for whichever backends probe available, and the fallback tests
force an import failure to prove the graceful degradation path.
"""

import json
import sys
import warnings

import numpy as np
import pytest

from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.engine import packed
from repro.engine.jit import (
    BACKEND_CHOICES,
    KERNEL_BACKENDS,
    BackendUnavailableError,
    clear_backend_cache,
    get_backend,
    gpu_backend,
    probe_backends,
    resolve_backend,
)
from repro.engine.kernels import fast_extended_skyline, fast_skycube, fast_skyline
from repro.instrument.counters import Counters


def available_backends():
    return [probe.name for probe in probe_backends() if probe.available]


AVAILABLE = available_backends()


def backend_workloads():
    """Seeded A/I/C cases, every d in 2..8, duplicates and ties mixed in."""
    cases = []
    for dist in ("anticorrelated", "independent", "correlated"):
        for d in range(2, 9):
            data = generate(dist, 70, d, seed=3 + d)
            data = np.vstack([data, data[:9]])  # exact duplicates
            data[10, 0] = data[11, 0]  # per-dimension tie
            cases.append((f"{dist[:1]}-d{d}", data))
    return cases


@pytest.fixture(params=backend_workloads(), ids=lambda case: case[0])
def workload(request):
    return request.param[1]


@pytest.fixture(params=AVAILABLE)
def backend_name(request):
    return request.param


# -- parity oracle: every available backend, every workload ------------


def test_backend_masks_match_reference(workload, backend_name):
    backend = get_backend(backend_name)
    rows = np.ascontiguousarray(workload)
    expected = packed.packed_point_masks(rows)
    assert np.array_equal(backend.point_masks(rows), expected)
    counters = Counters()
    filtered = backend.filtered_point_masks(rows, counters=counters)
    assert np.array_equal(filtered, expected)


def test_backend_skycube_matches_oracle(workload, backend_name):
    reference = fast_skycube(workload, engine="packed-filtered")
    for engine in ("packed", "packed-filtered"):
        cube = fast_skycube(workload, engine=engine, backend=backend_name)
        assert cube.store == reference.store
    assert reference == brute_force_skycube(workload)


def test_backend_classify_matches_kernels(workload, backend_name):
    backend = get_backend(backend_name)
    dominated, strictly = backend.classify(workload)
    n = len(workload)
    skyline = np.flatnonzero(~dominated)
    extended = np.flatnonzero(~strictly)
    assert np.array_equal(skyline, fast_skyline(workload))
    assert np.array_equal(extended, fast_extended_skyline(workload))
    assert dominated.dtype == bool and strictly.dtype == bool
    assert len(dominated) == len(strictly) == n


# -- registry selection semantics --------------------------------------


def test_registry_constants():
    assert KERNEL_BACKENDS == ("numpy", "numba", "cupy")
    assert BACKEND_CHOICES == ("auto", "numpy", "numba", "cupy")
    assert "numpy" in AVAILABLE  # the reference is always available


def test_resolve_defaults_to_numpy():
    assert resolve_backend(None).name == "numpy"
    assert resolve_backend("numpy").name == "numpy"


def test_resolve_auto_picks_an_available_backend():
    assert resolve_backend("auto").name in AVAILABLE


def test_unknown_backend_suggests():
    with pytest.raises(ValueError, match="did you mean 'numba'"):
        resolve_backend("nmba")
    with pytest.raises(ValueError, match="choose from"):
        get_backend("simd")


def test_probes_report_detail():
    for probe in probe_backends():
        assert probe.name in KERNEL_BACKENDS
        assert probe.device in ("cpu", "gpu")
        assert probe.detail  # human-readable either way


def test_preferred_block_positive():
    for name in AVAILABLE:
        backend = get_backend(name)
        for d in (2, 5, 8, 14):
            assert backend.preferred_block(d) >= 1
    assert get_backend("numpy").preferred_block(8) == packed.DEFAULT_BLOCK


# -- graceful degradation: forced import failure -----------------------


@pytest.fixture
def broken_numba(monkeypatch):
    """Make ``import numba`` fail even if the extra is installed."""
    clear_backend_cache()
    monkeypatch.setitem(sys.modules, "numba", None)
    yield
    clear_backend_cache()


def test_missing_backend_degrades_to_numpy(broken_numba):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = resolve_backend("numba")
    assert backend.name == "numpy"
    messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
    assert any("numba" in m and "bit-identical" in m for m in messages)
    # One warning per process: a second resolve stays silent.
    with warnings.catch_warnings(record=True) as again:
        warnings.simplefilter("always")
        assert resolve_backend("numba").name == "numpy"
    assert not [w for w in again if w.category is RuntimeWarning]


def test_missing_backend_fallback_is_bit_identical(broken_numba):
    data = generate("anticorrelated", 90, 4, seed=8)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cube = fast_skycube(data, engine="packed-filtered", backend="numba")
    assert cube.store == fast_skycube(data, engine="packed-filtered").store


def test_missing_backend_strict_raises_typed(broken_numba):
    with pytest.raises(BackendUnavailableError) as info:
        resolve_backend("numba", strict=True)
    assert info.value.backend == "numba"
    assert "accel" in str(info.value)  # names the missing extra


def test_probe_failure_names_install_hint(broken_numba):
    probe = [p for p in probe_backends() if p.name == "numba"][0]
    assert not probe.available
    assert "accel" in probe.detail


# -- block-size knob ---------------------------------------------------


def test_env_block_validation(monkeypatch):
    from repro.engine import kernels

    data = generate("independent", 60, 3, seed=2)
    base = fast_skycube(data)
    monkeypatch.setenv(kernels.BLOCK_ENV, "9")
    assert fast_skycube(data).store == base.store
    monkeypatch.setenv(kernels.BLOCK_ENV, "not-a-number")
    with pytest.raises(ValueError, match="REPRO_KERNEL_BLOCK.*integer"):
        fast_skycube(data)
    monkeypatch.setenv(kernels.BLOCK_ENV, "0")
    with pytest.raises(ValueError, match="REPRO_KERNEL_BLOCK.*positive"):
        fast_skycube(data)
    monkeypatch.setenv(kernels.BLOCK_ENV, "-4")
    with pytest.raises(ValueError, match="REPRO_KERNEL_BLOCK.*positive"):
        fast_skycube(data)


def test_loop_engine_rejects_accelerated_backend():
    data = generate("independent", 40, 3, seed=1)
    with pytest.raises(ValueError, match="numpy-only"):
        fast_skycube(data, engine="loop", backend="numba")
    # The no-op selections stay valid on the loop engine.
    cube = fast_skycube(data, engine="loop", backend="numpy")
    assert cube.store == fast_skycube(data, engine="loop").store


# -- the GPU hook ------------------------------------------------------


def test_default_hook_gpu_strict_by_default():
    from repro.skyline.registry import default_hook

    if any(p.device == "gpu" and p.available for p in probe_backends()):
        hook = default_hook("gpu", parallel=True)
        assert hook.architecture == "gpu"
    else:
        with pytest.raises(BackendUnavailableError) as info:
            default_hook("gpu", parallel=True)
        assert "simulate=True" in str(info.value)
        assert "cupy" in str(info.value)


def test_default_hook_gpu_simulate_accepts_simulation():
    from repro.skyline.registry import default_hook

    hook = default_hook("gpu", parallel=True, simulate=True)
    assert hook.architecture == "gpu"  # real backend or SkyAlign


def test_gpu_backend_error_when_no_device():
    probes = {p.name: p for p in probe_backends()}
    if probes["cupy"].available:
        assert gpu_backend().device == "gpu"
    else:
        with pytest.raises(BackendUnavailableError, match="cupy"):
            gpu_backend()


def test_kernel_skyline_matches_reference():
    from repro.skyline.accelerated import KernelSkyline

    data = generate("anticorrelated", 100, 4, seed=13)
    data = np.vstack([data, data[:6]])
    algorithm = KernelSkyline(get_backend("numpy"))
    assert algorithm.parallel and algorithm.architecture == "cpu"
    assert algorithm.name == "kernel-numpy"
    result = algorithm.compute(data, delta=0b1011)
    dims = [0, 1, 3]
    assert result.skyline == sorted(
        int(i) for i in fast_skyline(data[:, dims])
    )
    assert result.extended == sorted(
        int(i) for i in fast_extended_skyline(data[:, dims])
    )


def test_kernel_skyline_rejects_non_backend():
    from repro.skyline.accelerated import KernelSkyline

    with pytest.raises(TypeError):
        KernelSkyline("numpy")


# -- template and serve integration ------------------------------------


def test_mdmc_backend_matches_default():
    from repro.templates.mdmc import MDMC

    data = generate("independent", 130, 4, seed=17)
    data = np.vstack([data, data[:8]])
    base = MDMC(engine="packed-filtered").materialise(data)
    for name in AVAILABLE:
        run = MDMC(engine="packed-filtered", backend=name).materialise(data)
        assert run.skycube.store == base.skycube.store


def test_mdmc_process_backend_matches_serial():
    from repro.templates.mdmc import MDMC

    data = generate("anticorrelated", 140, 4, seed=23)
    serial = MDMC(engine="packed").materialise(data)
    run = MDMC(executor="process", workers=2, backend="numpy").materialise(
        data
    )
    assert run.skycube.store == serial.skycube.store


def test_mdmc_backend_validation():
    from repro.templates.mdmc import MDMC

    with pytest.raises(ValueError, match="backend must be one of"):
        MDMC(engine="packed", backend="simd")
    with pytest.raises(ValueError, match="engine="):
        MDMC(backend="numpy")  # serial instrumented loop has no backends
    MDMC(executor="process", backend="numpy")  # process default engine is fine


def test_serving_snapshot_backend():
    from repro.serve.snapshot import ServingSnapshot

    data = generate("independent", 80, 4, seed=29)
    reference = ServingSnapshot.build(data)
    for name in AVAILABLE:
        snapshot = ServingSnapshot.build(data, backend=name)
        for delta in (1, 5, 9, 15):
            assert snapshot.skyline(delta) == reference.skyline(delta)


def test_profile_backend_knob(tmp_path):
    from repro.config import ProfileError, load_profile

    path = tmp_path / "accel.toml"
    path.write_text("[engine]\nbackend = \"numba\"\n")
    assert load_profile(str(path)).engine.backend == "numba"
    bad = tmp_path / "bad.toml"
    bad.write_text("[engine]\nbackend = \"simd\"\n")
    with pytest.raises(ProfileError, match="backend"):
        load_profile(str(bad))


def test_builder_backend_scoped_to_mdmc():
    from repro.experiments.runner import _builder

    with pytest.raises(ValueError, match="backend"):
        _builder("stsc", backend="numpy")
    template = _builder("mdmc-cpu", "process", None, None, "numpy")
    assert template.backend == "numpy"


# -- the backends CLI --------------------------------------------------


def test_backends_cli(capsys):
    from repro.__main__ import main

    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in KERNEL_BACKENDS:
        assert name in out
    assert "available" in out


def test_backends_cli_json(capsys):
    from repro.__main__ import main

    assert main(["backends", "--json", "--refresh"]) == 0
    probes = json.loads(capsys.readouterr().out)
    assert [p["name"] for p in probes] == list(KERNEL_BACKENDS)
    by_name = {p["name"]: p for p in probes}
    assert by_name["numpy"]["available"] is True
    assert {"name", "device", "available", "detail"} <= set(by_name["cupy"])
