"""Tests for dynamic skylines and skylist compression."""

import numpy as np
import pytest

from repro.core.bitmask import all_subspaces
from repro.core.skylists import SkylistCube
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.query.dynamic import (
    dynamic_skycube,
    dynamic_skyline,
    dynamic_topk,
    dynamic_transform,
)
from repro.templates import MDMC


class TestDynamicSkyline:
    def test_transform_semantics(self):
        data = np.array([[1.0, 5.0], [3.0, 3.0]])
        out = dynamic_transform(data, [2.0, 4.0])
        assert np.allclose(out, [[1.0, 1.0], [1.0, 1.0]])

    def test_matches_static_at_origin_like_query(self):
        """With a query below every value, dynamic == static skyline."""
        from repro.engine import fast_skyline

        data = generate("independent", 200, 4, seed=3)
        query = np.zeros(4) - 1.0
        assert dynamic_skyline(data, query) == [
            int(i) for i in fast_skyline(data)
        ]

    def test_query_point_relative(self):
        # Points equidistant around the query: all undominated.
        data = np.array([[0.0, 2.0], [2.0, 0.0], [2.0, 2.0], [0.0, 0.0]])
        ids = dynamic_skyline(data, [1.0, 1.0])
        assert ids == [0, 1, 2, 3]
        # Move the query: point 3 becomes the unique ideal neighbour.
        ids = dynamic_skyline(data, [-0.5, -0.5])
        assert ids == [3]

    def test_dynamic_skycube_matches_per_subspace(self):
        data = generate("anticorrelated", 80, 3, seed=1)
        query = np.full(3, 0.4)
        cube = dynamic_skycube(data, query)
        transformed = dynamic_transform(data, query)
        oracle = brute_force_skycube(transformed)
        for delta in all_subspaces(3):
            assert cube.skyline(delta) == oracle.skyline(delta)

    def test_dynamic_skycube_any_algorithm(self):
        data = generate("independent", 60, 3, seed=2)
        query = np.full(3, 0.5)
        a = dynamic_skycube(data, query)
        b = dynamic_skycube(data, query, algorithm=MDMC("cpu"))
        assert a == b

    def test_attached_points_are_original(self):
        data = generate("independent", 40, 3, seed=4)
        cube = dynamic_skycube(data, np.full(3, 0.5))
        ids = cube.skyline(0b111)
        assert np.allclose(cube.skyline_points(0b111), data[list(ids)])

    def test_invalid_query(self):
        data = generate("independent", 10, 3, seed=0)
        with pytest.raises(ValueError):
            dynamic_transform(data, [0.1, 0.2])
        with pytest.raises(ValueError):
            dynamic_transform(data, [0.1, np.nan, 0.2])

    def test_string_subspace_accepted(self):
        data = generate("independent", 60, 3, seed=6)
        for spelling in ("0b101", "5", "0,2"):
            assert dynamic_skyline(data, np.full(3, 0.5), delta=spelling) \
                == dynamic_skyline(data, np.full(3, 0.5), delta=0b101)
        with pytest.raises(ValueError):
            dynamic_skyline(data, np.full(3, 0.5), delta="banana")


class TestDynamicTopk:
    def test_subset_of_dynamic_skyline_ranked_by_distance(self):
        data = generate("anticorrelated", 120, 3, seed=9)
        query = np.full(3, 0.5)
        members = dynamic_skyline(data, query)
        top = dynamic_topk(data, query, k=5)
        assert len(top) == 5
        assert set(top) <= set(members)
        distances = [float(np.abs(data[i] - query).sum()) for i in top]
        assert distances == sorted(distances)

    def test_exact_match_ranks_first(self):
        data = generate("independent", 50, 3, seed=10)
        assert dynamic_topk(data, data[17], k=1) == [17]

    def test_k_truncates_and_caps(self):
        data = generate("independent", 50, 3, seed=11)
        query = np.full(3, 0.5)
        members = dynamic_skyline(data, query)
        everything = dynamic_topk(data, query, k=10_000)
        assert sorted(everything) == members
        assert dynamic_topk(data, query, k=2) == everything[:2]

    def test_subspace_restriction(self):
        data = generate("independent", 80, 3, seed=12)
        query = np.full(3, 0.5)
        top = dynamic_topk(data, query, k=4, delta="0b011")
        members = dynamic_skyline(data, query, delta=0b011)
        assert set(top) <= set(members)
        # Distance is over active dimensions only.
        distances = [
            float(np.abs(data[i, :2] - query[:2]).sum()) for i in top
        ]
        assert distances == sorted(distances)


class TestSkylistCube:
    def build(self, workload):
        lattice = brute_force_skycube(workload).as_lattice()
        return lattice, SkylistCube.from_lattice(lattice)

    def test_queries_match_lattice(self, workload):
        lattice, cube = self.build(workload)
        for delta in all_subspaces(workload.shape[1]):
            assert cube.skyline(delta) == lattice.skyline(delta)

    def test_roundtrip(self, workload):
        lattice, cube = self.build(workload)
        assert cube.to_lattice() == lattice

    def test_tree_covers_every_subspace_once(self, workload):
        _, cube = self.build(workload)
        d = workload.shape[1]
        assert sorted(cube._deltas) == list(all_subspaces(d))
        roots = [s for s, p in cube._parent.items() if p is None]
        assert roots == [(1 << d) - 1]

    def test_compresses_on_overlapping_cuboids(self):
        for dist in ("correlated", "independent"):
            data = generate(dist, 300, 6, seed=9)
            lattice = brute_force_skycube(data).as_lattice()
            cube = SkylistCube.from_lattice(lattice)
            assert cube.compression_ratio_vs(lattice) > 1.3, dist

    def test_invalid(self, workload):
        lattice, cube = self.build(workload)
        with pytest.raises(KeyError):
            cube.skyline(0)
        from repro.core.lattice import Lattice

        partial = Lattice(3)
        partial.set_cuboid(0b111, [0])
        with pytest.raises(ValueError):
            SkylistCube.from_lattice(partial)
