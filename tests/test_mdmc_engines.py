"""Direct tests of MDMC's filter/refine engines (the template hooks)."""

import pytest

from repro.core.bitmask import full_space
from repro.core.closures import SubspaceClosures
from repro.core.verify import brute_force_membership_masks
from repro.data.generator import generate
from repro.engine import fast_extended_skyline
from repro.instrument.counters import Counters
from repro.partitioning.static_tree import StaticTree
from repro.templates.mdmc import CPUPointEngine, GPUPointEngine

ENGINES = [CPUPointEngine(), GPUPointEngine()]


def build_setting(distribution, n, d, seed):
    data = generate(distribution, n, d, seed=seed)
    splus = [int(i) for i in fast_extended_skyline(data)]
    tree = StaticTree(data, splus, levels=3)
    closures = SubspaceClosures(d)
    relevant = (1 << full_space(d)) - 1
    oracle = brute_force_membership_masks(data)
    return data, tree, closures, relevant, oracle


@pytest.fixture(params=ENGINES, ids=lambda e: e.name)
def engine(request):
    return request.param


class TestEngineExactness:
    @pytest.mark.parametrize("distribution", [
        "independent", "correlated", "anticorrelated",
    ])
    def test_masks_match_oracle(self, engine, distribution):
        data, tree, closures, relevant, oracle = build_setting(
            distribution, 120, 4, seed=3
        )
        for pos in range(len(tree)):
            pid = int(tree.ids[pos])
            mask = engine.process_point(
                tree, pos, closures, Counters(), relevant
            )
            assert mask == oracle[pid], (
                f"{engine.name}: wrong mask for point {pid} "
                f"({distribution})"
            )

    def test_duplicate_heavy_masks(self, engine):
        data, tree, closures, relevant, oracle = build_setting(
            "independent", 90, 3, seed=5
        )
        # also with explicit low-cardinality duplicates
        data = generate("independent", 90, 3, seed=5, distinct_values=2)
        splus = [int(i) for i in fast_extended_skyline(data)]
        tree = StaticTree(data, splus, levels=3)
        oracle = brute_force_membership_masks(data)
        for pos in range(len(tree)):
            pid = int(tree.ids[pos])
            mask = engine.process_point(
                tree, pos, closures, Counters(), relevant
            )
            assert mask == oracle[pid]

    def test_partial_relevance_exact_below_cut(self, engine):
        d = 4
        data, tree, closures, _, oracle = build_setting(
            "anticorrelated", 100, d, seed=7
        )
        relevant = 0
        for delta in range(1, full_space(d) + 1):
            if bin(delta).count("1") <= 2:
                relevant |= 1 << (delta - 1)
        for pos in range(0, len(tree), 5):
            pid = int(tree.ids[pos])
            mask = engine.process_point(
                tree, pos, closures, Counters(), relevant
            )
            assert mask & relevant == oracle[pid] & relevant


class TestEngineBehaviour:
    def test_correlated_filter_resolves_most_points_cheaply(self, engine):
        """On clustered data the filter alone settles most points: far
        fewer DTs per point than on anticorrelated data."""
        costs = {}
        for distribution in ("correlated", "anticorrelated"):
            _, tree, closures, relevant, _ = build_setting(
                distribution, 200, 4, seed=11
            )
            counters = Counters()
            for pos in range(len(tree)):
                engine.process_point(tree, pos, closures, counters, relevant)
            costs[distribution] = (
                counters.dominance_tests / max(1, counters.points_processed)
            )
        assert costs["correlated"] < costs["anticorrelated"]

    def test_memoization_shares_closure_cache(self, engine):
        """The closure cache is global: processing more points barely
        grows it (bounded by 2^d distinct masks)."""
        _, tree, closures, relevant, _ = build_setting(
            "independent", 150, 4, seed=2
        )
        engine.process_point(tree, 0, closures, Counters(), relevant)
        after_one = closures.cache_size()
        for pos in range(1, len(tree)):
            engine.process_point(tree, pos, closures, Counters(), relevant)
        assert closures.cache_size() <= 15  # 2^4 - 1 distinct masks
        assert closures.cache_size() >= after_one

    def test_gpu_engine_counts_warp_effects(self):
        _, tree, closures, relevant, _ = build_setting(
            "independent", 200, 4, seed=1
        )
        counters = Counters()
        engine = GPUPointEngine()
        for pos in range(len(tree)):
            engine.process_point(tree, pos, closures, counters, relevant)
        assert counters.branch_divergences > 0
        # Warp votes execute DTs in multiples of whole warps (or the
        # tail chunk), so sequential bytes dominate the traffic.
        assert counters.sequential_bytes > counters.random_bytes
