"""Failure-injection tests: malformed inputs must fail loudly."""

import numpy as np
import pytest

from repro.core.skycube import Skycube
from repro.engine import fast_skycube, fast_skyline
from repro.skycube import QSkycube
from repro.skyline import BSkyTree, Hybrid
from repro.templates import MDMC, SDSC, STSC


NAN_DATA = np.array([[0.1, np.nan], [0.2, 0.3]])
RAGGED = np.array([1.0, 2.0, 3.0])


class TestNaNRejection:
    def test_skyline_algorithms(self):
        for algorithm in (BSkyTree(), Hybrid()):
            with pytest.raises(ValueError, match="NaN"):
                algorithm.compute(NAN_DATA)

    def test_skycube_algorithms(self):
        for builder in (QSkycube(), STSC(), SDSC("cpu"), MDMC("cpu")):
            with pytest.raises(ValueError, match="NaN"):
                builder.materialise(NAN_DATA)


class TestShapeRejection:
    def test_one_dimensional(self):
        with pytest.raises(ValueError):
            QSkycube().materialise(RAGGED)
        with pytest.raises(ValueError):
            Hybrid().compute(RAGGED)

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            MDMC("cpu").materialise(np.empty((0, 3)))
        with pytest.raises(ValueError):
            fast_skyline(np.empty((0, 3)))

    def test_infinities_are_legal(self):
        # ±inf is an ordered value: dominance is well-defined.
        data = np.array([[0.0, np.inf], [1.0, 1.0], [-np.inf, 2.0]])
        cube = fast_skycube(data)
        assert cube.skyline(0b11)  # does not raise, returns something

    def test_out_of_range_subspace_everywhere(self):
        data = np.array([[0.1, 0.2]])
        run = STSC().materialise(data)
        with pytest.raises(KeyError):
            run.skycube.skyline(0b100)
        with pytest.raises(KeyError):
            run.skycube.skyline(0)


class TestFacadeMisuse:
    def test_skycube_without_data_blocks_point_queries(self):
        run = QSkycube().materialise(np.array([[0.1, 0.2]]))
        cube = Skycube(run.skycube.store)  # re-wrap without data
        with pytest.raises(ValueError):
            cube.skyline_points(0b11)
