"""Property-based tests on the partitioning/compression structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import popcount
from repro.core.closures import SubspaceClosures
from repro.instrument.counters import Counters
from repro.partitioning.static_tree import StaticTree

datasets = st.integers(2, 4).flatmap(
    lambda d: st.lists(
        st.lists(st.integers(0, 7).map(float), min_size=d, max_size=d),
        min_size=2,
        max_size=20,
    )
).map(np.array)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10), st.integers(0, 1023))
def test_closure_popcount_identity(d, raw):
    """|closure(m)| = 2^|m| - 1: every non-empty submask, once."""
    mask = raw & ((1 << d) - 1)
    closures = SubspaceClosures(d)
    assert popcount(closures.closure(mask)) == 2 ** popcount(mask) - 1


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8), st.integers(0, 255), st.integers(0, 255))
def test_closure_monotone_under_union(d, a, b):
    """closure(a) and closure(b) are both inside closure(a | b)."""
    limit = (1 << d) - 1
    a &= limit
    b &= limit
    closures = SubspaceClosures(d)
    union = closures.closure(a | b)
    assert closures.closure(a) & ~union == 0
    assert closures.closure(b) & ~union == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8), st.integers(0, 255), st.integers(0, 255))
def test_dominated_update_never_includes_equal_only_subspaces(d, le_raw, eq_raw):
    limit = (1 << d) - 1
    le = le_raw & limit
    eq = eq_raw & le  # B_eq ⊆ B_le by construction
    closures = SubspaceClosures(d)
    bits = closures.dominated_update(le, eq)
    for delta in range(1, limit + 1):
        expected = (delta & le) == delta and (delta & eq) != delta
        assert bool(bits & (1 << (delta - 1))) == expected


@settings(max_examples=30, deadline=None)
@given(datasets)
def test_static_tree_strict_masks_always_sound(rows):
    """Whatever the data (duplicates included), every strict-dominance
    claim the tree's path labels make must hold on the raw values."""
    tree = StaticTree(rows, counters=Counters())
    for pos in range(len(tree)):
        claims = tree.leaf_strict_masks(pos)
        target = rows[int(tree.ids[pos])][tree.dims]
        for other in range(len(tree)):
            claim = int(claims[other])
            row = rows[int(tree.ids[other])][tree.dims]
            for i in range(tree.k):
                if claim & (1 << i):
                    assert row[i] < target[i]


@settings(max_examples=30, deadline=None)
@given(datasets)
def test_static_tree_prune_masks_always_sound(rows):
    tree = StaticTree(rows, counters=Counters())
    for pos in range(len(tree)):
        prune = tree.leaf_prune_masks(pos)
        target = rows[int(tree.ids[pos])][tree.dims]
        for other in range(len(tree)):
            claim = int(prune[other])
            row = rows[int(tree.ids[other])][tree.dims]
            for i in range(tree.k):
                if claim & (1 << i):
                    assert row[i] > target[i]


@settings(max_examples=25, deadline=None)
@given(datasets)
def test_scalagon_prefilter_only_drops_dominated(rows):
    """Whatever the data, Scalagon equals the oracle — i.e. its grid
    prefilter never drops a surviving point."""
    from repro.core.skyline import skyline_and_extended
    from repro.skyline.scalagon import Scalagon

    result = Scalagon(max_cells=256).compute(rows)
    exp_sky, exp_extra = skyline_and_extended(rows)
    assert result.skyline == exp_sky
    assert result.extended_only == exp_extra


@settings(max_examples=25, deadline=None)
@given(datasets, st.integers(0, 3))
def test_subsky_exact_for_any_data(rows, anchors_minus_one):
    from repro.core.skyline import skyline_indices
    from repro.query import SubskyIndex

    index = SubskyIndex(rows, num_anchors=anchors_minus_one + 1)
    d = rows.shape[1]
    full = (1 << d) - 1
    assert index.subspace_skyline(full) == skyline_indices(rows, full)
