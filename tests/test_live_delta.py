"""Tests for incremental (delta) publishing on the live write path.

The contract under test is *bit-identity*: after any sequence of
inserts and deletes, three independently derived views must agree on
every subspace skyline —

1. the :class:`~repro.core.maintain.SkycubeMaintainer`'s own masks
   (updated in place by the delta sweeps of
   :mod:`repro.engine.delta`),
2. the delta-published :class:`~repro.serve.snapshot.ServingSnapshot`
   chain (copy-on-write ``HashCube.with_updates`` clones + periodic
   compaction rebuilds), and
3. a from-scratch :func:`~repro.engine.kernels.fast_skycube` rebuild
   of the surviving rows.

On top of that, every ``skyline_diff`` answer is oracle-checked
against full rebuilds of both endpoint versions.
"""

import numpy as np
import pytest

from repro.core.analytics import membership_masks
from repro.core.bitmask import full_space
from repro.core.maintain import SkycubeMaintainer
from repro.data.generator import generate
from repro.engine.kernels import fast_skycube
from repro.serve.snapshot import ChangeLog, LiveUpdater
from repro.trace.tracer import Tracer


class RecordingTracer(Tracer):
    enabled = True

    def __init__(self):
        super().__init__()
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def by_stage(self, stage):
        return [event for event in self.events if event.stage == stage]


def mutate_randomly(rng, updater, live, d):
    """One random mutation; keeps ``live`` ({pid: row}) in sync.

    Inserts are biased toward interesting cases: one in three is an
    exact duplicate of a live point (ties on every dimension), the rest
    are fresh draws.
    """
    do_delete = live and rng.random() < 0.45
    if do_delete:
        victim = int(rng.choice(sorted(live)))
        _, version = updater.delete(victim)
        del live[victim]
        return version
    if live and rng.random() < 0.34:
        point = live[int(rng.choice(sorted(live)))].copy()
    else:
        point = rng.integers(0, 8, size=d).astype(np.float64)
    point_id, version = updater.insert(point)
    live[point_id] = np.asarray(point, dtype=np.float64)
    return version


def oracle_in_masks(live):
    """``{pid: B_{p∈S}}`` from a from-scratch packed rebuild."""
    pids = sorted(live)
    if not pids:
        return {}
    data = np.stack([live[pid] for pid in pids])
    positional = membership_masks(fast_skycube(data))
    return {pids[pos]: mask for pos, mask in positional.items()}


def snapshot_in_masks(snapshot):
    """``{pid: B_{p∈S}}`` probed out of a published snapshot's cube."""
    masks = {}
    for delta in range(1, full_space(snapshot.d) + 1):
        bit = 1 << (delta - 1)
        for pid in snapshot.skyline(delta):
            masks[pid] = masks.get(pid, 0) | bit
    return masks


def maintainer_in_masks(maintainer, live):
    full = (1 << full_space(maintainer.d)) - 1
    masks = {
        pid: full & ~maintainer.membership_mask(pid) for pid in live
    }
    # membership_masks (the oracle view) omits points in no skyline.
    return {pid: mask for pid, mask in masks.items() if mask}


class TestRandomizedMutationSequences:
    @pytest.mark.parametrize(
        "distribution, d, n0, steps",
        [
            ("independent", 2, 40, 30),
            ("anticorrelated", 4, 60, 30),
            ("correlated", 5, 60, 25),
            ("independent", 8, 50, 15),
        ],
    )
    def test_three_views_bit_identical(self, distribution, d, n0, steps):
        data = generate(distribution, n0, d, seed=d * 7 + n0)
        updater, holder = LiveUpdater.bootstrap(data, compact_every=7)
        live = {pid: data[pid].copy() for pid in range(n0)}
        rng = np.random.default_rng(d * 1000 + steps)
        for step in range(steps):
            version = mutate_randomly(rng, updater, live, d)
            assert version == holder.version == step + 1
            snapshot = holder.current
            assert sorted(int(pid) for pid in snapshot.ids) == sorted(live)
            oracle = oracle_in_masks(live)
            assert maintainer_in_masks(updater.maintainer, live) == oracle
            assert snapshot_in_masks(snapshot) == oracle

    def test_duplicates_and_ties(self):
        # Few distinct values per dim: ties and exact duplicates abound,
        # exercising the eq-mask side of the delta folds.
        data = generate("independent", 50, 3, seed=9, distinct_values=3)
        updater, holder = LiveUpdater.bootstrap(data, compact_every=5)
        live = {pid: data[pid].copy() for pid in range(len(data))}
        rng = np.random.default_rng(42)
        for _ in range(40):
            do_delete = live and rng.random() < 0.45
            if do_delete:
                victim = int(rng.choice(sorted(live)))
                updater.delete(victim)
                del live[victim]
            else:
                point = rng.integers(0, 3, size=3).astype(np.float64)
                pid, _ = updater.insert(point)
                live[pid] = point
            oracle = oracle_in_masks(live)
            assert maintainer_in_masks(updater.maintainer, live) == oracle
            assert snapshot_in_masks(holder.current) == oracle

    def test_drain_to_empty_and_refill(self):
        data = generate("independent", 6, 3, seed=1)
        updater, holder = LiveUpdater.bootstrap(data)
        for pid in range(6):
            updater.delete(pid)
        assert len(holder.current) == 0
        assert holder.current.skyline(7) == ()
        pid, version = updater.insert([1.0, 2.0, 3.0])
        assert holder.current.skyline(7) == (pid,)
        assert version == holder.version == 7


class TestSkylineDiffOracle:
    def test_every_version_pair_matches_two_full_rebuilds(self):
        d, n0, steps = 4, 40, 14
        data = generate("anticorrelated", n0, d, seed=31)
        updater, holder = LiveUpdater.bootstrap(data, compact_every=5)
        live = {pid: data[pid].copy() for pid in range(n0)}
        rng = np.random.default_rng(7)

        def skylines_now():
            # Two independent full rebuilds (packed and per-point loop
            # engines) that must agree with each other — the diff
            # oracle is their common answer.
            pids = sorted(live)
            rows = np.stack([live[pid] for pid in pids])
            packed = fast_skycube(rows, engine="packed")
            loop = fast_skycube(rows, engine="loop")
            by_delta = {}
            for delta in range(1, full_space(d) + 1):
                a = frozenset(pids[pos] for pos in packed.skyline(delta))
                b = frozenset(pids[pos] for pos in loop.skyline(delta))
                assert a == b
                by_delta[delta] = a
            return by_delta

        per_version = {0: skylines_now()}
        for _ in range(steps):
            version = mutate_randomly(rng, updater, live, d)
            per_version[version] = skylines_now()

        for v_from in range(steps + 1):
            for v_to in range(v_from + 1, steps + 1):
                for delta in range(1, full_space(d) + 1):
                    was = per_version[v_from][delta]
                    now = per_version[v_to][delta]
                    entered, left = updater.skyline_diff(delta, v_from, v_to)
                    assert entered == sorted(now - was)
                    assert left == sorted(was - now)


class TestCopyOnWriteAndCompaction:
    def test_generation_resets_on_compaction(self):
        data = generate("independent", 30, 3, seed=5)
        tracer = RecordingTracer()
        updater, holder = LiveUpdater.bootstrap(
            data, compact_every=4, tracer=tracer
        )
        rng = np.random.default_rng(3)
        generations = []
        for _ in range(10):
            updater.insert(rng.random(3) * 4)
            generations.append(holder.current.cube.generation)
        # 4 delta generations, then a rebuild resets to 0, repeatedly.
        assert generations == [1, 2, 3, 4, 0, 1, 2, 3, 4, 0]
        publishes = tracer.by_stage("publish")
        compacts = tracer.by_stage("compact")
        assert len(publishes) == 8 and len(compacts) == 2
        assert all(e.extra["mode"] == "delta" for e in publishes)
        assert all(e.extra["mode"] == "rebuild" for e in compacts)
        # One publish per mutation: versions are the consecutive range.
        versions = sorted(
            e.snapshot_version for e in publishes + compacts
        )
        assert versions == list(range(1, 11))

    def test_published_snapshots_are_frozen_in_time(self):
        # Older versions keep answering their own state after further
        # copy-on-write publishes (no shared-table aliasing).
        data = generate("independent", 25, 3, seed=8)
        updater, holder = LiveUpdater.bootstrap(data, compact_every=100)
        before = holder.current
        before_masks = snapshot_in_masks(before)
        rng = np.random.default_rng(12)
        live = {pid: data[pid].copy() for pid in range(len(data))}
        for _ in range(12):
            mutate_randomly(rng, updater, live, 3)
        assert snapshot_in_masks(before) == before_masks
        assert snapshot_in_masks(holder.current) == oracle_in_masks(live)

    def test_cow_cube_refuses_in_place_insert(self):
        data = generate("independent", 20, 3, seed=2)
        updater, holder = LiveUpdater.bootstrap(data, compact_every=100)
        updater.insert([1.0, 1.0, 1.0])
        cube = holder.current.cube
        assert cube.generation == 1
        with pytest.raises(ValueError, match="copy-on-write"):
            cube.insert(999, 0)

    def test_compact_every_validation(self):
        data = generate("independent", 10, 2, seed=1)
        with pytest.raises(ValueError, match="compact_every"):
            LiveUpdater.bootstrap(data, compact_every=0)


class TestChangeLogWindow:
    def test_retention_evicts_oldest_versions(self):
        data = generate("independent", 30, 3, seed=4)
        updater, holder = LiveUpdater.bootstrap(
            data, changelog_retention=4
        )
        rng = np.random.default_rng(6)
        live = {pid: data[pid].copy() for pid in range(len(data))}
        for _ in range(9):
            mutate_randomly(rng, updater, live, 3)
        oldest, latest = updater.changelog.versions()
        assert (oldest, latest) == (5, 9)
        updater.skyline_diff(7, 5, 9)  # in-window: fine
        with pytest.raises(ValueError, match="retention window"):
            updater.skyline_diff(7, 4, 9)

    def test_interval_and_subspace_validation(self):
        data = generate("independent", 10, 3, seed=3)
        updater, _ = LiveUpdater.bootstrap(data)
        updater.insert([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="from < to"):
            updater.skyline_diff(7, 1, 1)
        with pytest.raises(ValueError, match="unknown snapshot version"):
            updater.skyline_diff(7, 0, 5)
        with pytest.raises(KeyError):
            updater.skyline_diff(0, 0, 1)
        with pytest.raises(KeyError):
            updater.skyline_diff(8, 0, 1)

    def test_record_rejects_non_monotone_versions(self):
        from repro.core.maintain import MaskDelta

        log = ChangeLog(3, base_version=2)
        with pytest.raises(ValueError, match="not newer"):
            log.record(2, MaskDelta())
        log.record(3, MaskDelta(changed={0: 1}, previous={0: 0}))
        with pytest.raises(ValueError, match="not newer"):
            log.record(3, MaskDelta())
