"""Trace-driven calibration: analytic model vs LRU simulator."""

from repro.hardware.config import CPUConfig
from repro.hardware.trace import validate_against_simulator
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile

CONFIG = CPUConfig().scaled(250)  # L2 = 2 KB at this scale


def make_counters(seq=0, rand=0, hops=0):
    counters = Counters()
    counters.sequential_bytes = seq
    counters.random_bytes = rand
    counters.pointer_hops = hops
    return counters


class TestTraceValidation:
    def test_streaming_oversized_flat(self):
        """Sequential sweeps over a too-large flat region: both the
        model and the simulator see high miss counts."""
        counters = make_counters(seq=2_000_000)
        profile = MemoryProfile(flat_bytes=64 * 1024)
        validation = validate_against_simulator(counters, profile, CONFIG)
        assert 0.3 < validation.ratio < 3.0, validation

    def test_random_over_large_data(self):
        counters = make_counters(rand=1_000_000)
        profile = MemoryProfile(data_bytes=256 * 1024)
        validation = validate_against_simulator(counters, profile, CONFIG)
        assert 0.5 < validation.ratio < 2.0, validation

    def test_resident_structures_barely_miss(self):
        counters = make_counters(rand=1_000_000)
        profile = MemoryProfile(data_bytes=CONFIG.l2_bytes // 2)
        validation = validate_against_simulator(counters, profile, CONFIG)
        # Both sides should report near-zero misses.
        assert validation.simulated_l2_misses < 0.1 * validation.accesses
        assert validation.analytic_l2_misses < 0.1 * validation.accesses

    def test_hot_cold_chase_skew(self):
        """The chase stream's hot-set model tracks a skewed trace."""
        counters = make_counters(hops=50_000)
        profile = MemoryProfile(pointer_bytes=128 * 1024)
        validation = validate_against_simulator(counters, profile, CONFIG)
        assert 0.4 < validation.ratio < 2.5, validation

    def test_mixed_streams(self):
        counters = make_counters(seq=500_000, rand=500_000, hops=10_000)
        profile = MemoryProfile(
            flat_bytes=32 * 1024,
            data_bytes=128 * 1024,
            pointer_bytes=64 * 1024,
        )
        validation = validate_against_simulator(counters, profile, CONFIG)
        assert 0.4 < validation.ratio < 2.5, validation

    def test_empty_trace(self):
        validation = validate_against_simulator(
            Counters(), MemoryProfile(), CONFIG
        )
        assert validation.accesses == 0
        assert validation.simulated_l2_misses == 0

    def test_deterministic(self):
        counters = make_counters(rand=200_000)
        profile = MemoryProfile(data_bytes=64 * 1024)
        a = validate_against_simulator(counters, profile, CONFIG, seed=1)
        b = validate_against_simulator(counters, profile, CONFIG, seed=1)
        assert a.simulated_l2_misses == b.simulated_l2_misses

    def test_real_algorithm_trace(self):
        """Validate against an actual algorithm's recorded counters."""
        from repro.data.generator import generate
        from repro.skyline import Hybrid

        data = generate("independent", 600, 6, seed=3)
        counters = Counters()
        result = Hybrid().compute(data, counters=counters)
        validation = validate_against_simulator(
            counters, result.profile, CONFIG
        )
        assert validation.accesses > 0
        assert 0.2 < validation.ratio < 5.0, validation
