"""Tests for the skylint static-analysis pass (repro.analysis).

The fixtures under ``tests/fixtures/skylint/repro/`` are deliberately
broken modules, one per rule family; the ``repro/`` directory makes the
module-name inference scope them like package modules.  The suite also
runs the real tree through the CLI — the repo must lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Allowlist,
    all_rules,
    analyse_paths,
    module_name,
)
from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "skylint"
REPRO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def codes_in(path, **kwargs):
    report = analyse_paths([path], **kwargs)
    assert not report.parse_errors, report.parse_errors
    return [v.code for v in report.violations]


def fixture(name):
    path = FIXTURES / "repro" / name
    assert path.is_file(), path
    return path


# -- rule-by-rule on fixtures -----------------------------------------


def test_sky001_architecture_declared():
    codes = codes_in(fixture("skyline/bad_algo.py"))
    assert codes == ["SKY001", "SKY001"]


def test_sky002_sky003_hook_imports_and_setter():
    codes = codes_in(fixture("templates/bad_imports.py"))
    assert codes.count("SKY002") == 3
    assert codes.count("SKY003") == 2
    assert set(codes) == {"SKY002", "SKY003"}


def test_sky10x_shared_memory_hygiene():
    codes = codes_in(fixture("engine/bad_shm.py"))
    assert codes.count("SKY101") == 1  # safe_segment's finally is clean
    assert codes.count("SKY102") == 1  # with-block pool is clean
    assert codes.count("SKY103") == 2  # lambda + nested def
    assert set(codes) == {"SKY101", "SKY102", "SKY103"}


def test_sky201_determinism():
    codes = codes_in(fixture("engine/bad_rng.py"))
    assert codes == ["SKY201"] * 5  # seeded calls in quiet() are clean


def test_sky301_dominance_semantics():
    codes = codes_in(fixture("templates/bad_dominance.py"))
    assert codes == ["SKY301"] * 3


def test_sky501_index_loops():
    codes = codes_in(fixture("engine/bad_pointloop.py"))
    assert codes == ["SKY501"] * 2


def test_sky501_scoped_to_engine_only():
    from repro.analysis.loops import IndexLoopRule

    rule = IndexLoopRule()
    assert rule.applies_to("repro.engine")


def test_sky701_accelerator_imports():
    codes = codes_in(fixture("engine/bad_accel_import.py"))
    assert codes == ["SKY701"] * 3  # function-scope imports are clean


def test_sky701_exempts_jit_package():
    from repro.analysis.accel import AcceleratorImportRule

    rule = AcceleratorImportRule()
    assert not rule.applies_to("repro.engine.jit")
    assert not rule.applies_to("repro.engine.jit.numba_backend")
    assert rule.applies_to("repro.engine.kernels")
    assert rule.applies_to("repro.engine.jitter")  # prefix, not package
    assert rule.applies_to("repro.engine.packed")
    assert rule.applies_to("repro.templates.mdmc")


def test_sky401_blocking_in_async():
    codes = codes_in(fixture("serve/bad_async.py"))
    assert codes == ["SKY401"] * 6


def test_sky401_flags_exact_lines():
    report = analyse_paths([fixture("serve/bad_async.py")])
    # sleep, open, create_connection, recv, pool construction, pool.run —
    # and nothing from good_counterparts or the sync helper.
    assert [v.line for v in report.violations] == [16, 17, 22, 23, 28, 29]


def test_sky401_scoped_to_serve_only():
    from repro.analysis.blocking import BlockingCallRule

    rule = BlockingCallRule()
    assert rule.applies_to("repro.serve")
    assert rule.applies_to("repro.serve.server")
    assert not rule.applies_to("repro.engine.parallel")
    assert not rule.applies_to("repro.served")  # prefix, not substring


def test_violation_locations_and_format():
    report = analyse_paths([fixture("skyline/bad_algo.py")])
    first = report.violations[0]
    assert first.line == 6  # class NoArchitecture
    assert first.code in first.format()
    assert str(first.path) in first.format()
    payload = first.to_json()
    assert payload["code"] == "SKY001"
    assert payload["severity"] == "error"


# -- suppression and allowlist ----------------------------------------


def test_inline_suppression_silences_rules():
    assert codes_in(fixture("engine/suppressed.py")) == []


def test_allowlist_moves_violations_aside():
    allowlist = Allowlist.load(FIXTURES / "allow.txt")
    report = analyse_paths(
        [fixture("engine/bad_rng.py"), fixture("templates/bad_dominance.py")],
        allowlist=allowlist,
    )
    assert report.violations == []
    assert len(report.allowlisted) == 8  # 5×SKY201 + 3×SKY301
    assert report.exit_code == 0


def test_allowlist_only_matches_named_code():
    allowlist = Allowlist.load(FIXTURES / "allow.txt")
    report = analyse_paths(
        [fixture("templates/bad_imports.py")], allowlist=allowlist
    )
    assert report.violations  # SKY002/SKY003 are not grandfathered


def test_malformed_allowlist_rejected(tmp_path):
    bad = tmp_path / "allow.txt"
    bad.write_text("no-colon-here\n")
    with pytest.raises(ValueError, match="malformed allowlist"):
        Allowlist.load(bad)


# -- module scoping ----------------------------------------------------


def test_module_name_anchors_at_repro():
    assert (
        module_name(Path("tests/fixtures/skylint/repro/engine/bad_rng.py"))
        == "repro.engine.bad_rng"
    )
    assert module_name(Path("src/repro/core/__init__.py")) == "repro.core"
    assert module_name(Path("scratch/tool.py")) == "tool"


def test_scoped_rules_skip_foreign_modules(tmp_path):
    # The same bad template code outside repro.templates is not flagged
    # by the hook rules (but generic hygiene rules still apply).
    copy = tmp_path / "elsewhere.py"
    copy.write_text(fixture("templates/bad_imports.py").read_text())
    codes = codes_in(copy)
    assert "SKY002" not in codes
    assert "SKY003" not in codes


# -- selection filters -------------------------------------------------


def test_select_and_ignore_filters():
    path = fixture("engine/bad_shm.py")
    assert set(codes_in(path, select=["SKY103"])) == {"SKY103"}
    assert "SKY103" not in codes_in(path, ignore=["SKY103"])


def test_rule_registry_complete_and_unique():
    rules = all_rules()
    codes = [rule.code for rule in rules]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert {
        "SKY001", "SKY002", "SKY003",
        "SKY101", "SKY102", "SKY103", "SKY104", "SKY105",
        "SKY201", "SKY301", "SKY401", "SKY402", "SKY501",
        "SKY601", "SKY602",
    } <= set(codes)


def test_project_rules_marked_as_such():
    from repro.analysis import RULE_REGISTRY

    project_codes = {
        code
        for code, rule_class in RULE_REGISTRY.items()
        if rule_class.requires_project
    }
    assert {"SKY104", "SKY105", "SKY402", "SKY601", "SKY602"} <= project_codes
    assert "SKY101" not in project_codes


# -- CLI ---------------------------------------------------------------


def test_cli_nonzero_on_fixtures(capsys):
    exit_code = main([str(FIXTURES / "repro"), "--no-allowlist"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "SKY001" in out
    assert "violation(s)" in out


def test_cli_json_output(capsys):
    exit_code = main(
        [str(fixture("engine/bad_rng.py")), "--no-allowlist", "--json"]
    )
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert {v["code"] for v in payload["violations"]} == {"SKY201"}


def test_cli_allowlist_flag(capsys):
    exit_code = main(
        [
            str(fixture("engine/bad_rng.py")),
            "--allowlist",
            str(FIXTURES / "allow.txt"),
        ]
    )
    assert exit_code == 0
    assert "allowlisted" in capsys.readouterr().out


def test_cli_parse_error_is_reported(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def unclosed(:\n")
    exit_code = main([str(broken), "--no-allowlist"])
    assert exit_code == 1
    assert "SKY000" in capsys.readouterr().out


def test_cli_missing_path_exits_2(tmp_path, capsys):
    exit_code = main([str(tmp_path / "nope.txt"), "--no-allowlist"])
    assert exit_code == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SKY101" in out and "SKY301" in out


# -- the real tree must lint clean ------------------------------------


def test_repo_lints_clean_without_allowlist(capsys):
    exit_code = main([str(REPRO_SRC), "--no-allowlist"])
    out = capsys.readouterr().out
    assert exit_code == 0, out
    assert "0 violation(s)" in out


# -- flow-aware rules (v2) ---------------------------------------------


def test_sky402_transitive_blocking():
    report = analyse_paths([fixture("serve/bad_transitive.py")])
    assert [v.code for v in report.violations] == ["SKY402", "SKY402"]
    # handle (line 26, two frames away) and read_settings (line 31).
    assert [v.line for v in report.violations] == [26, 31]
    two_frames = report.violations[0].message
    assert "handle -> _retry -> _backoff" in two_frames
    assert "time.sleep(...)" in two_frames
    assert "2 frame(s)" in two_frames
    assert "path.read_text(...)" in report.violations[1].message


def test_sky402_quiet_on_to_thread_dispatch():
    # The `quiet` coroutine dispatches the same helper via to_thread
    # and never appears in the findings.
    report = analyse_paths([fixture("serve/bad_transitive.py")])
    assert all("quiet" not in v.message for v in report.violations)


def test_sky104_leak_paths():
    path = fixture("engine/bad_shm_flow.py")
    report = analyse_paths([path], select=["SKY104"])
    # early_return_leak (line 25) and helper_forgets_unlink (line 35);
    # the clean finally / helper-release functions stay quiet.
    assert [v.code for v in report.violations] == ["SKY104", "SKY104"]
    assert [v.line for v in report.violations] == [25, 35]


def test_sky105_double_release_paths():
    path = fixture("engine/bad_shm_flow.py")
    report = analyse_paths([path], select=["SKY105"])
    # double_unlink (line 44) and helper_then_unlink (line 50) — and
    # crucially NOT the finally-block releases of the clean functions.
    assert [v.code for v in report.violations] == ["SKY105", "SKY105"]
    assert [v.line for v in report.violations] == [44, 50]


def test_shm_flow_fixture_full_code_set():
    # SKY101 is inline-suppressed except in clean_finally (where it is
    # satisfied), so the whole fixture reports exactly the flow rules.
    assert codes_in(fixture("engine/bad_shm_flow.py")) == [
        "SKY104", "SKY104", "SKY105", "SKY105",
    ]


def test_sky601_snapshot_mutation():
    report = analyse_paths([fixture("serve/bad_mutation.py")])
    assert [v.code for v in report.violations] == ["SKY601"] * 7
    assert [v.line for v in report.violations] == [17, 18, 22, 27, 31, 35, 39]
    by_line = {v.line: v.message for v in report.violations}
    assert "subscript store" in by_line[17]
    assert "attribute store" in by_line[18]
    assert "in-place operation" in by_line[22]
    assert ".sort(...)" in by_line[27]
    assert ".setflags(...)" in by_line[31]
    assert "_fill_zero() mutates its argument" in by_line[35]
    assert "frozen Profile" in by_line[39]


def test_sky602_domain_bounds():
    report = analyse_paths([fixture("engine/bad_domains.py")])
    assert [v.code for v in report.violations] == ["SKY602"] * 4
    assert [v.line for v in report.violations] == [15, 19, 23, 27]
    shifts = [v for v in report.violations if "shift count" in v.message]
    tables = [v for v in report.violations if "exponential table" in v.message]
    assert len(shifts) == 2 and len(tables) == 2


def test_flow_cfg_finally_runs_once_per_path():
    # Regression: an exception raised inside a finally body must not
    # re-enter the same try (which re-ran the cleanup and produced
    # phantom double-release states).
    import ast as ast_module

    from repro.analysis.flow import ResourceSpec, track_resource

    source = (
        "def f(n):\n"
        "    shm = SharedMemory(create=True, size=n)\n"
        "    try:\n"
        "        return n\n"
        "    finally:\n"
        "        shm.close()\n"
        "        shm.unlink()\n"
    )
    function = ast_module.parse(source).body[0]
    creation = function.body[0]
    spec = ResourceSpec(
        kind="SharedMemory",
        finalizers={"close": "closed", "unlink": "unlinked"},
        required=frozenset({"unlinked"}),
        once=frozenset({"unlink"}),
    )
    assert track_resource(function, creation, "shm", spec) == []


# -- selection validation ----------------------------------------------


def test_unknown_select_code_raises_with_suggestion():
    with pytest.raises(ValueError, match="SKY999"):
        analyse_paths([fixture("engine/bad_rng.py")], select=["SKY999"])
    with pytest.raises(ValueError, match="did you mean 'SKY201'"):
        analyse_paths([fixture("engine/bad_rng.py")], ignore=["SKY200"])


def test_cli_unknown_code_exits_2(capsys):
    exit_code = main(
        [str(fixture("engine/bad_rng.py")), "--select", "SKY999"]
    )
    assert exit_code == 2
    err = capsys.readouterr().err
    assert "SKY999" in err and "--list-rules" in err


# -- incremental cache -------------------------------------------------


def test_cache_module_rules_warm_run(tmp_path):
    cache = tmp_path / "cache"
    path = fixture("engine/bad_rng.py")
    cold = analyse_paths([path], cache_dir=cache)
    assert cold.cache_stats == {
        "files": 1, "module_hits": 0, "project_hits": 0, "warm": False,
    }
    warm = analyse_paths([path], cache_dir=cache)
    assert warm.cache_stats["module_hits"] == 1
    assert warm.cache_stats["warm"] is True
    assert [v.to_json() for v in warm.violations] == [
        v.to_json() for v in cold.violations
    ]


def test_cache_invalidates_on_content_change(tmp_path):
    cache = tmp_path / "cache"
    target = tmp_path / "repro" / "engine" / "scratch.py"
    target.parent.mkdir(parents=True)
    target.write_text("import numpy as np\n\nx = np.random.rand(3)\n")
    first = analyse_paths([target], cache_dir=cache)
    assert [v.code for v in first.violations] == ["SKY201"]
    target.write_text("import numpy as np\n\nrng = np.random.default_rng(7)\n")
    second = analyse_paths([target], cache_dir=cache)
    assert second.cache_stats["module_hits"] == 0
    assert second.violations == []


def _write_serve_project(root, blocking=True):
    pkg = root / "repro" / "serve"
    pkg.mkdir(parents=True, exist_ok=True)
    if blocking:
        (pkg / "util.py").write_text(
            "import time\n\n\ndef backoff(seconds):\n"
            "    time.sleep(seconds)\n"
        )
    else:
        (pkg / "util.py").write_text(
            "def backoff(seconds):\n    return seconds\n"
        )
    (pkg / "api.py").write_text(
        "from repro.serve.util import backoff\n\n\n"
        "async def handle(request):\n"
        "    backoff(1)\n"
        "    return request\n"
    )
    return pkg


def test_cache_project_rules_warm_and_dependency_invalidation(tmp_path):
    cache = tmp_path / "cache"
    pkg = _write_serve_project(tmp_path, blocking=True)

    cold = analyse_paths([pkg], cache_dir=cache)
    assert [v.code for v in cold.violations] == ["SKY402"]
    assert cold.cache_stats["project_hits"] == 0

    warm = analyse_paths([pkg], cache_dir=cache)
    assert warm.cache_stats == {
        "files": 2, "module_hits": 2, "project_hits": 2, "warm": True,
    }
    assert [v.code for v in warm.violations] == ["SKY402"]

    # Editing only the *dependency* must invalidate api.py's cached
    # project findings even though api.py's own hash is unchanged.
    _write_serve_project(tmp_path, blocking=False)
    third = analyse_paths([pkg], cache_dir=cache)
    assert third.cache_stats["module_hits"] == 1  # api.py byte-identical
    assert third.cache_stats["project_hits"] < 2
    assert third.violations == []

    # And the fixed state becomes warm again.
    fourth = analyse_paths([pkg], cache_dir=cache)
    assert fourth.cache_stats["warm"] is True
    assert fourth.violations == []


def test_cache_survives_allowlist_changes(tmp_path):
    # Findings are cached raw: adding an allowlist later still
    # partitions them out of a fully warm run.
    cache = tmp_path / "cache"
    path = fixture("engine/bad_rng.py")
    analyse_paths([path], cache_dir=cache)
    allowlist = Allowlist.load(FIXTURES / "allow.txt")
    warm = analyse_paths([path], cache_dir=cache, allowlist=allowlist)
    assert warm.cache_stats["module_hits"] == 1
    assert warm.violations == []
    assert len(warm.allowlisted) == 5


def test_cli_cache_and_jobs_flags(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    argv = [
        str(fixture("engine/bad_rng.py")),
        "--no-allowlist",
        "--cache-dir", str(cache_dir),
        "--jobs", "2",
    ]
    assert main(argv) == 1
    assert "[cache: 0/1 warm]" in capsys.readouterr().out
    assert main(argv) == 1
    assert "[cache: 1/1 warm]" in capsys.readouterr().out


# -- SARIF output ------------------------------------------------------


def test_cli_sarif_output(capsys):
    exit_code = main(
        [
            str(fixture("engine/bad_rng.py")),
            "--no-allowlist",
            "--format", "sarif",
        ]
    )
    assert exit_code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "skylint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {"SKY201", "SKY402", "SKY602"} <= rule_ids
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"SKY201"}
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert location["region"]["startLine"] > 0
        assert "primaryLocationLineHash" not in result.get(
            "partialFingerprints", {}
        )
        assert result["partialFingerprints"]["skylint/v1"]


def test_sarif_document_structure():
    from repro.analysis import sarif_document

    report = analyse_paths([fixture("serve/bad_transitive.py")])
    document = sarif_document(
        report.violations, all_rules(), base_dir=Path.cwd()
    )
    run = document["runs"][0]
    assert run["originalUriBaseIds"]["SRCROOT"]["uri"].startswith("file://")
    result = run["results"][0]
    assert result["ruleId"] == "SKY402"
    assert result["level"] == "error"


# -- baseline management -----------------------------------------------


def test_baseline_roundtrip(tmp_path):
    from repro.analysis import Baseline

    path = fixture("engine/bad_rng.py")
    report = analyse_paths([path])
    recorded = Baseline.from_violations(report.violations)
    baseline_path = tmp_path / "baseline.json"
    recorded.write(baseline_path)

    suppressed = analyse_paths([path], baseline=Baseline.load(baseline_path))
    assert suppressed.violations == []
    assert len(suppressed.baselined) == 5
    assert suppressed.stale_baseline == []
    assert suppressed.exit_code == 0


def test_baseline_budget_is_count_aware(tmp_path):
    from repro.analysis import Baseline

    path = fixture("engine/bad_rng.py")
    report = analyse_paths([path])
    recorded = Baseline.from_violations(report.violations[:-1])  # 4 of 5
    partial = analyse_paths([path], baseline=recorded)
    # All five findings share one fingerprint (same code+message), so
    # a budget of four leaves exactly one reported.
    assert len(partial.baselined) == 4
    assert len(partial.violations) == 1


def test_baseline_stale_entries_reported(tmp_path):
    from repro.analysis import Baseline

    rng = fixture("engine/bad_rng.py")
    recorded = Baseline.from_violations(analyse_paths([rng]).violations)
    other = analyse_paths(
        [fixture("templates/bad_dominance.py")], baseline=recorded
    )
    assert other.stale_baseline  # nothing in bad_dominance matches
    assert other.stale_entries == other.stale_baseline


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    baseline_path = tmp_path / "skylint-baseline.json"
    target = str(fixture("engine/bad_rng.py"))
    assert main(
        [target, "--no-allowlist", "--write-baseline", str(baseline_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "wrote baseline with 5 finding(s)" in out
    assert baseline_path.is_file()

    assert main(
        [target, "--no-allowlist", "--baseline", str(baseline_path)]
    ) == 0
    assert "5 baselined" in capsys.readouterr().out


def test_cli_malformed_baseline_exits_2(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("[not a mapping]")
    exit_code = main(
        [
            str(fixture("engine/bad_rng.py")),
            "--no-allowlist",
            "--baseline", str(bad),
        ]
    )
    assert exit_code == 2


# -- stale allowlist ---------------------------------------------------


def test_stale_allowlist_entries_warn(tmp_path, capsys):
    allow = tmp_path / "allow.txt"
    allow.write_text(
        "repro.engine.bad_rng: SKY201\n"
        "repro.engine.never_exists: SKY101\n"
    )
    argv = [
        str(fixture("engine/bad_rng.py")),
        "--allowlist", str(allow),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "stale allowlist entry" in out
    assert "never_exists" in out

    assert main(argv + ["--fail-on-stale-allowlist"]) == 1


def test_fresh_allowlist_passes_stale_gate(capsys):
    argv = [
        str(fixture("engine/bad_rng.py")),
        str(fixture("templates/bad_dominance.py")),
        "--allowlist", str(FIXTURES / "allow.txt"),
        "--fail-on-stale-allowlist",
    ]
    assert main(argv) == 0


# -- JSON report shape -------------------------------------------------


def test_json_report_includes_cache_and_stale_keys(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    argv = [
        str(fixture("engine/bad_rng.py")),
        "--no-allowlist",
        "--cache-dir", str(cache_dir),
        "--json",
    ]
    main(argv)
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"]["files"] == 1
    assert payload["stale_allowlist"] == []
    assert payload["stale_baseline"] == []
    assert payload["baselined"] == []
