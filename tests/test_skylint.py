"""Tests for the skylint static-analysis pass (repro.analysis).

The fixtures under ``tests/fixtures/skylint/repro/`` are deliberately
broken modules, one per rule family; the ``repro/`` directory makes the
module-name inference scope them like package modules.  The suite also
runs the real tree through the CLI — the repo must lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Allowlist,
    all_rules,
    analyse_paths,
    module_name,
)
from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "skylint"
REPRO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def codes_in(path, **kwargs):
    report = analyse_paths([path], **kwargs)
    assert not report.parse_errors, report.parse_errors
    return [v.code for v in report.violations]


def fixture(name):
    path = FIXTURES / "repro" / name
    assert path.is_file(), path
    return path


# -- rule-by-rule on fixtures -----------------------------------------


def test_sky001_architecture_declared():
    codes = codes_in(fixture("skyline/bad_algo.py"))
    assert codes == ["SKY001", "SKY001"]


def test_sky002_sky003_hook_imports_and_setter():
    codes = codes_in(fixture("templates/bad_imports.py"))
    assert codes.count("SKY002") == 3
    assert codes.count("SKY003") == 2
    assert set(codes) == {"SKY002", "SKY003"}


def test_sky10x_shared_memory_hygiene():
    codes = codes_in(fixture("engine/bad_shm.py"))
    assert codes.count("SKY101") == 1  # safe_segment's finally is clean
    assert codes.count("SKY102") == 1  # with-block pool is clean
    assert codes.count("SKY103") == 2  # lambda + nested def
    assert set(codes) == {"SKY101", "SKY102", "SKY103"}


def test_sky201_determinism():
    codes = codes_in(fixture("engine/bad_rng.py"))
    assert codes == ["SKY201"] * 5  # seeded calls in quiet() are clean


def test_sky301_dominance_semantics():
    codes = codes_in(fixture("templates/bad_dominance.py"))
    assert codes == ["SKY301"] * 3


def test_sky501_index_loops():
    codes = codes_in(fixture("engine/bad_pointloop.py"))
    assert codes == ["SKY501"] * 2


def test_sky501_scoped_to_engine_only():
    from repro.analysis.loops import IndexLoopRule

    rule = IndexLoopRule()
    assert rule.applies_to("repro.engine")
    assert rule.applies_to("repro.engine.packed")
    assert not rule.applies_to("repro.templates.mdmc")
    assert not rule.applies_to("repro.engineering")  # prefix, not substring


def test_sky401_blocking_in_async():
    codes = codes_in(fixture("serve/bad_async.py"))
    assert codes == ["SKY401"] * 6


def test_sky401_flags_exact_lines():
    report = analyse_paths([fixture("serve/bad_async.py")])
    # sleep, open, create_connection, recv, pool construction, pool.run —
    # and nothing from good_counterparts or the sync helper.
    assert [v.line for v in report.violations] == [16, 17, 22, 23, 28, 29]


def test_sky401_scoped_to_serve_only():
    from repro.analysis.blocking import BlockingCallRule

    rule = BlockingCallRule()
    assert rule.applies_to("repro.serve")
    assert rule.applies_to("repro.serve.server")
    assert not rule.applies_to("repro.engine.parallel")
    assert not rule.applies_to("repro.served")  # prefix, not substring


def test_violation_locations_and_format():
    report = analyse_paths([fixture("skyline/bad_algo.py")])
    first = report.violations[0]
    assert first.line == 6  # class NoArchitecture
    assert first.code in first.format()
    assert str(first.path) in first.format()
    payload = first.to_json()
    assert payload["code"] == "SKY001"
    assert payload["severity"] == "error"


# -- suppression and allowlist ----------------------------------------


def test_inline_suppression_silences_rules():
    assert codes_in(fixture("engine/suppressed.py")) == []


def test_allowlist_moves_violations_aside():
    allowlist = Allowlist.load(FIXTURES / "allow.txt")
    report = analyse_paths(
        [fixture("engine/bad_rng.py"), fixture("templates/bad_dominance.py")],
        allowlist=allowlist,
    )
    assert report.violations == []
    assert len(report.allowlisted) == 8  # 5×SKY201 + 3×SKY301
    assert report.exit_code == 0


def test_allowlist_only_matches_named_code():
    allowlist = Allowlist.load(FIXTURES / "allow.txt")
    report = analyse_paths(
        [fixture("templates/bad_imports.py")], allowlist=allowlist
    )
    assert report.violations  # SKY002/SKY003 are not grandfathered


def test_malformed_allowlist_rejected(tmp_path):
    bad = tmp_path / "allow.txt"
    bad.write_text("no-colon-here\n")
    with pytest.raises(ValueError, match="malformed allowlist"):
        Allowlist.load(bad)


# -- module scoping ----------------------------------------------------


def test_module_name_anchors_at_repro():
    assert (
        module_name(Path("tests/fixtures/skylint/repro/engine/bad_rng.py"))
        == "repro.engine.bad_rng"
    )
    assert module_name(Path("src/repro/core/__init__.py")) == "repro.core"
    assert module_name(Path("scratch/tool.py")) == "tool"


def test_scoped_rules_skip_foreign_modules(tmp_path):
    # The same bad template code outside repro.templates is not flagged
    # by the hook rules (but generic hygiene rules still apply).
    copy = tmp_path / "elsewhere.py"
    copy.write_text(fixture("templates/bad_imports.py").read_text())
    codes = codes_in(copy)
    assert "SKY002" not in codes
    assert "SKY003" not in codes


# -- selection filters -------------------------------------------------


def test_select_and_ignore_filters():
    path = fixture("engine/bad_shm.py")
    assert set(codes_in(path, select=["SKY103"])) == {"SKY103"}
    assert "SKY103" not in codes_in(path, ignore=["SKY103"])


def test_rule_registry_complete_and_unique():
    rules = all_rules()
    codes = [rule.code for rule in rules]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert {
        "SKY001", "SKY002", "SKY003",
        "SKY101", "SKY102", "SKY103",
        "SKY201", "SKY301",
    } <= set(codes)


# -- CLI ---------------------------------------------------------------


def test_cli_nonzero_on_fixtures(capsys):
    exit_code = main([str(FIXTURES / "repro"), "--no-allowlist"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "SKY001" in out
    assert "violation(s)" in out


def test_cli_json_output(capsys):
    exit_code = main(
        [str(fixture("engine/bad_rng.py")), "--no-allowlist", "--json"]
    )
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert {v["code"] for v in payload["violations"]} == {"SKY201"}


def test_cli_allowlist_flag(capsys):
    exit_code = main(
        [
            str(fixture("engine/bad_rng.py")),
            "--allowlist",
            str(FIXTURES / "allow.txt"),
        ]
    )
    assert exit_code == 0
    assert "allowlisted" in capsys.readouterr().out


def test_cli_parse_error_is_reported(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def unclosed(:\n")
    exit_code = main([str(broken), "--no-allowlist"])
    assert exit_code == 1
    assert "SKY000" in capsys.readouterr().out


def test_cli_missing_path_exits_2(tmp_path, capsys):
    exit_code = main([str(tmp_path / "nope.txt"), "--no-allowlist"])
    assert exit_code == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SKY101" in out and "SKY301" in out


# -- the real tree must lint clean ------------------------------------


def test_repo_lints_clean_without_allowlist(capsys):
    exit_code = main([str(REPRO_SRC), "--no-allowlist"])
    out = capsys.readouterr().out
    assert exit_code == 0, out
    assert "0 violation(s)" in out
