"""Chaos tests: kill pool workers mid-batch, assert recovery + taxonomy.

These run only under ``pytest --executor process`` (the CI chaos job);
the default serial run skips them, since deliberately SIGKILLing
workers is exactly what a constrained sandbox or a laptop test run
does not want.  What they pin down, per ISSUE 6:

(a) a run whose worker is SIGKILLed mid-batch still completes, via the
    executor's retry rounds (or serial fallback),
(b) the trace records the death as a first-class ``WorkerDeath``
    event, together with the recovery outcome, and
(c) the recovered results are bit-identical to the serial reference.
"""

import os
import signal
import sys

import pytest

from repro.engine.parallel import ParallelExecutor
from repro.trace import (
    INTERNAL_ERROR,
    WORKER_DEATH,
    JsonlTracer,
    executor_event_to_trace,
    install_executor_sink,
    uninstall_executor_sink,
)
from repro.trace.analyze import analyze_file

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="SIGKILL worker chaos needs linux process semantics",
)


@pytest.fixture(autouse=True)
def _only_with_process_executor(request):
    if request.config.getoption("--executor", default="serial") != "process":
        pytest.skip("chaos tests run under --executor process only")


def _kill_once_task(task):
    """Dies by SIGKILL the first time any worker runs it; the sentinel
    file makes every later attempt (retry round, serial fallback)
    compute normally."""
    sentinel, value = task
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 3


def _buggy_task(task):
    raise ValueError("task bug")


class TestWorkerDeath:
    def test_sigkill_mid_batch_recovers_bit_identically(self, tmp_path):
        events = []
        executor = ParallelExecutor(
            workers=2, max_retries=2, start_method="fork",
            on_event=events.append,
        )
        sentinel = str(tmp_path / "killed")
        tasks = [(sentinel, value) for value in range(8)]

        results = executor.run(_kill_once_task, tasks)

        # (a) + (c): completed, and equal to the serial reference.
        assert results == [value * 3 for value in range(8)]
        assert os.path.exists(sentinel)  # the kill really happened
        # (b): the death and the recovery are first-class events.
        kinds = [event["kind"] for event in events]
        assert "worker_death" in kinds
        assert kinds[-1] in ("retry_recovered", "serial_recovered")
        assert "task_error" not in kinds
        death = next(e for e in events if e["kind"] == "worker_death")
        assert death["tasks"] >= 1
        assert death["attempt"] == 0

    def test_worker_death_lands_in_trace_file_classified(self, tmp_path):
        path = str(tmp_path / "chaos.jsonl")
        tracer = JsonlTracer(path, flush_every=1)
        install_executor_sink(tracer.executor_sink())
        try:
            executor = ParallelExecutor(
                workers=2, max_retries=1, start_method="fork"
            )
            sentinel = str(tmp_path / "killed")
            results = executor.run(
                _kill_once_task,
                [(sentinel, value) for value in range(6)],
            )
        finally:
            uninstall_executor_sink()
            tracer.close()

        assert results == [value * 3 for value in range(6)]
        report = analyze_file(path)
        assert report.failures.get(WORKER_DEATH, 0) >= 1
        assert report.unclassified == []
        assert report.executor_events.get("worker_death", 0) >= 1
        recovery = set(report.executor_events) & {
            "retry_recovered", "serial_recovered",
        }
        assert recovery  # the retry outcome is recorded, not silent

    def test_exhausted_retries_fall_back_serially(self, tmp_path):
        """max_retries=0: the single pool round dies, the serial
        fallback completes the work, and the trace says so."""
        events = []
        executor = ParallelExecutor(
            workers=2, max_retries=0, start_method="fork",
            on_event=events.append,
        )
        sentinel = str(tmp_path / "killed")
        results = executor.run(
            _kill_once_task, [(sentinel, value) for value in range(4)]
        )
        assert results == [value * 3 for value in range(4)]
        kinds = [event["kind"] for event in events]
        assert "worker_death" in kinds
        assert kinds[-1] == "serial_recovered"


class TestTaskBugs:
    def test_task_exception_is_internal_error_not_worker_death(self):
        events = []
        executor = ParallelExecutor(
            workers=2, max_retries=0, start_method="fork",
            on_event=events.append,
        )
        # The serial fallback re-raises the bug — correctness first.
        with pytest.raises(ValueError, match="task bug"):
            executor.run(_buggy_task, list(range(4)))
        kinds = {event["kind"] for event in events}
        assert "task_error" in kinds
        assert "worker_death" not in kinds
        task_error = next(
            event for event in events if event["kind"] == "task_error"
        )
        assert task_error["error"] == "ValueError"
        assert executor_event_to_trace(task_error).failure == INTERNAL_ERROR


class TestEventPlumbing:
    def test_clean_run_emits_no_events(self):
        events = []
        executor = ParallelExecutor(
            workers=2, max_retries=1, start_method="fork",
            on_event=events.append,
        )
        results = executor.run(_square, list(range(10)))
        assert results == [value * value for value in range(10)]
        assert events == []

    def test_broken_sink_never_breaks_the_run(self, tmp_path):
        def broken_sink(event):
            raise RuntimeError("observer bug")

        executor = ParallelExecutor(
            workers=2, max_retries=1, start_method="fork",
            on_event=broken_sink,
        )
        sentinel = str(tmp_path / "killed")
        results = executor.run(
            _kill_once_task, [(sentinel, value) for value in range(4)]
        )
        assert results == [value * 3 for value in range(4)]


def _square(value):
    return value * value
