"""Fast-engine kernels must match the reference implementations."""

import numpy as np
import pytest

from repro.core.bitmask import all_subspaces
from repro.core.skyline import extended_skyline_indices, skyline_indices
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.engine import fast_extended_skyline, fast_skycube, fast_skyline


class TestFastSkyline:
    def test_matches_reference(self, workload):
        d = workload.shape[1]
        for delta in all_subspaces(d):
            assert list(fast_skyline(workload, delta)) == skyline_indices(
                workload, delta
            )

    def test_extended_matches_reference(self, workload):
        d = workload.shape[1]
        for delta in all_subspaces(d):
            got = list(fast_extended_skyline(workload, delta))
            assert got == extended_skyline_indices(workload, delta)

    def test_flights(self, flights):
        assert list(fast_skyline(flights, 0b011)) == [1, 2, 3]
        assert list(fast_extended_skyline(flights, 0b011)) == [1, 2, 3, 4]

    def test_larger_than_block(self):
        data = generate("anticorrelated", 1500, 4, seed=8)
        assert list(fast_skyline(data)) == skyline_indices(data)

    def test_duplicates(self):
        data = np.tile([[0.25, 0.5]], (700, 1))
        assert len(fast_skyline(data)) == 700

    def test_invalid(self, flights):
        with pytest.raises(ValueError):
            fast_skyline(flights, 0)
        with pytest.raises(ValueError):
            fast_skyline(np.empty((0, 3)))


class TestFastSkycube:
    def test_matches_oracle(self, workload):
        assert fast_skycube(workload) == brute_force_skycube(workload)

    def test_partial(self, workload):
        cube = fast_skycube(workload, max_level=2)
        oracle = brute_force_skycube(workload, max_level=2)
        assert cube == oracle

    def test_medium_scale(self):
        data = generate("independent", 3000, 6, seed=4)
        cube = fast_skycube(data)
        for delta in (1, 0b101, 0b111111):
            assert list(cube.skyline(delta)) == skyline_indices(data, delta)

    def test_invalid_level(self, flights):
        with pytest.raises(ValueError):
            fast_skycube(flights, max_level=0)
