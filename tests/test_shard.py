"""End-to-end tests for the sharded scatter–gather tier.

Real worker processes, real pipes.  The acceptance bar is
**bit-identity**: every sharded answer must equal the single-process
``engine="packed-filtered"`` snapshot's answer — same ids, same order —
for every partitioner.  On top of that: shard death degrades into a
typed partial response (never a wrong answer), the background respawn
restores full answers, and one coordinator-side trace file stitches
the whole fan-out (per-shard compute spans, merge barrier, straggler
attribution) under the request's id.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.data.generator import generate
from repro.serve.service import Request
from repro.serve.snapshot import ServingSnapshot
from repro.shard import (
    NoLiveShardsError,
    ShardCoordinator,
    ShardPlan,
    ShardService,
)
from repro.shard.plan import PARTITIONER_NAMES
from repro.trace import WORKER_DEATH, JsonlTracer
from repro.trace.analyze import analyze_file


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def data():
    # Integer-valued floats with deliberate duplicate rows: ties must
    # survive the distributed merge bit-for-bit.
    rng = np.random.default_rng(42)
    base = rng.integers(0, 40, size=(110, 4)).astype(np.float64)
    return np.ascontiguousarray(np.vstack([base, base[:10]]))


@pytest.fixture(scope="module")
def reference(data):
    return ServingSnapshot.build(data, engine="packed-filtered")


def kill_shard(coordinator, shard):
    """SIGKILL one worker and wait until the OS has reaped it."""
    process = coordinator.handles[shard].process
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=5.0)
    assert not process.is_alive()


class TestBitIdentity:
    @pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
    def test_all_ops_match_single_process(
        self, data, reference, partitioner
    ):
        full = (1 << data.shape[1]) - 1

        async def scenario():
            plan = ShardPlan.build(data, 3, partitioner=partitioner)
            coordinator = ShardCoordinator(data, plan)
            await asyncio.to_thread(coordinator.start)
            try:
                for delta in (full, 0b0101, 0b0011, 0b1000):
                    got, failed = await coordinator.skyline(delta)
                    assert failed == []
                    assert got == list(reference.skyline(delta))
                for pid in (0, 7, 55, len(data) - 1):
                    got, failed = await coordinator.membership(pid, full)
                    assert failed == []
                    assert got == reference.membership(pid, full)
                q = [12.0, 30.0, 5.0, 21.5]
                for delta in (None, 0b1011, 0b0100):
                    got, failed = await coordinator.topk_dynamic(
                        q, 6, delta
                    )
                    assert failed == []
                    assert got == reference.topk_dynamic(q, 6, delta)
            finally:
                await coordinator.aclose()

        run(scenario())

    def test_duplicate_points_are_not_skyline_members(self, data, reference):
        """Exact duplicates tie (never strictly dominate), and the
        distributed membership must agree with the local engine on
        them — rows 110.. duplicate rows 0..9 by construction."""
        full = (1 << data.shape[1]) - 1

        async def scenario():
            plan = ShardPlan.build(data, 4, partitioner="random")
            coordinator = ShardCoordinator(data, plan)
            await asyncio.to_thread(coordinator.start)
            try:
                for pid in range(110, len(data)):
                    got, _ = await coordinator.membership(pid, full)
                    assert got == reference.membership(pid, full)
            finally:
                await coordinator.aclose()

        run(scenario())


class TestCoordinatorLifecycle:
    def test_start_is_idempotent_and_status_reports(self, data):
        async def scenario():
            plan = ShardPlan.build(data, 2)
            coordinator = ShardCoordinator(data, plan)
            await asyncio.to_thread(coordinator.start)
            await asyncio.to_thread(coordinator.start)  # no-op
            try:
                status = coordinator.status()
                assert status["alive"] == [True, True]
                assert status["shards"] == 2
                assert coordinator.alive_count == 2
            finally:
                await coordinator.aclose()

        run(scenario())

    def test_shape_mismatch_rejected(self, data):
        plan = ShardPlan.build(data, 2)
        with pytest.raises(ValueError, match="plan covers"):
            ShardCoordinator(data[:-1], plan)

    def test_nonpositive_timeout_rejected(self, data):
        plan = ShardPlan.build(data, 2)
        with pytest.raises(ValueError, match="timeout"):
            ShardCoordinator(data, plan, timeout=0)

    def test_worker_side_error_is_a_value_error(self, data):
        async def scenario():
            plan = ShardPlan.build(data, 2)
            coordinator = ShardCoordinator(data, plan)
            await asyncio.to_thread(coordinator.start)
            try:
                handle = coordinator.handles[0]
                with pytest.raises(ValueError, match="unknown shard op"):
                    handle.call("frobnicate", None, timeout=5.0)
                # the worker survives a bad request
                assert handle.alive
                payload, _ = handle.call("ping", None, timeout=5.0)
                assert payload == {"n": handle.n_local}
            finally:
                await coordinator.aclose()

        run(scenario())

    def test_bad_query_vector_rejected(self, data):
        async def scenario():
            plan = ShardPlan.build(data, 2)
            coordinator = ShardCoordinator(data, plan)
            await asyncio.to_thread(coordinator.start)
            try:
                with pytest.raises(ValueError, match="coordinates"):
                    await coordinator.topk_dynamic([1.0, 2.0], 3)
                with pytest.raises(KeyError):
                    await coordinator.membership(10_000, 1)
            finally:
                await coordinator.aclose()

        run(scenario())


class TestChaos:
    def test_sigkill_degrades_then_respawns(self, data, reference, tmp_path):
        """The ISSUE 8 chaos bar: SIGKILL one shard mid-flight, assert a
        typed partial (degraded) response, a clean stitched trace, and
        full recovery via the background respawn."""
        full = (1 << data.shape[1]) - 1
        trace_path = tmp_path / "chaos.jsonl"

        async def scenario():
            plan = ShardPlan.build(data, 3, partitioner="grid")
            tracer = JsonlTracer(str(trace_path))
            coordinator = ShardCoordinator(
                data, plan, tracer=tracer, auto_respawn=True
            )
            service = ShardService(coordinator, tracer=tracer)
            await service.start()
            try:
                response = await service.submit(
                    Request(op="skyline", delta=full)
                )
                assert response.ok and response.partial is None
                assert response.result == list(reference.skyline(full))

                kill_shard(coordinator, 1)
                degraded = await service.submit(
                    Request(op="skyline", delta=full)
                )
                assert degraded.ok  # degraded, not failed
                assert degraded.partial == {
                    "degraded": True,
                    "failed_shards": [1],
                    "failure_class": WORKER_DEATH,
                }
                # the degraded skyline is the exact skyline of the
                # surviving shards' points — a subset, never garbage
                assert set(degraded.result) <= set(reference.skyline(full))
                wire = degraded.to_json()
                assert wire["partial"]["failed_shards"] == [1]

                assert await coordinator.wait_ready(timeout=10.0)
                recovered = await service.submit(
                    Request(op="skyline", delta=full)
                )
                assert recovered.ok and recovered.partial is None
                assert recovered.result == list(reference.skyline(full))
            finally:
                await service.stop()
                tracer.close()

        run(scenario())

        report = analyze_file(str(trace_path))
        assert not report.unclassified  # every failure is classified
        assert report.failures == {WORKER_DEATH: 1}
        assert report.shard_failures == {1: 1}
        assert report.merges == 3
        assert set(report.shard_compute) == {0, 1, 2}
        assert report.executor_events.get("shard_respawned") == 1

    def test_all_shards_dead_is_internal_worker_death(self, data):
        async def scenario():
            plan = ShardPlan.build(data, 2)
            coordinator = ShardCoordinator(data, plan, auto_respawn=False)
            service = ShardService(coordinator)
            await service.start()
            try:
                kill_shard(coordinator, 0)
                kill_shard(coordinator, 1)
                response = await service.submit(
                    Request(op="skyline", delta=1)
                )
                assert not response.ok
                assert response.error == "Internal"
                assert response.failure_class == WORKER_DEATH
                with pytest.raises(NoLiveShardsError):
                    await coordinator.skyline(1)
            finally:
                await service.stop()

        run(scenario())

    def test_membership_degrades_on_death(self, data):
        """A degraded membership answer still carries the marker: with
        a shard missing, 'no dominator found' is only evidence from the
        survivors."""
        full = (1 << data.shape[1]) - 1

        async def scenario():
            plan = ShardPlan.build(data, 3)
            coordinator = ShardCoordinator(data, plan, auto_respawn=False)
            await asyncio.to_thread(coordinator.start)
            try:
                kill_shard(coordinator, 2)
                _, failed = await coordinator.membership(3, full)
                assert failed == [2]
            finally:
                await coordinator.aclose()

        run(scenario())


class TestTraceStitching:
    def test_one_request_id_ties_the_fanout(self, data, tmp_path):
        """ISSUE 8 acceptance: per-shard compute spans and the merge
        barrier's straggler attribution, recovered from one trace file
        for one request id."""
        trace_path = tmp_path / "fanout.jsonl"
        full = (1 << data.shape[1]) - 1

        async def scenario():
            plan = ShardPlan.build(data, 3, partitioner="angular")
            tracer = JsonlTracer(str(trace_path))
            coordinator = ShardCoordinator(data, plan, tracer=tracer)
            await asyncio.to_thread(coordinator.start)
            try:
                await coordinator.skyline(full, request_id=777)
            finally:
                await coordinator.aclose()
                tracer.close()

        run(scenario())

        events = [
            event for event in _load_events(trace_path)
            if event.request_id == 777
        ]
        compute = [e for e in events if e.stage == "compute"]
        merges = [e for e in events if e.stage == "merge"]
        assert sorted(e.extra["shard"] for e in compute) == [0, 1, 2]
        assert all(e.duration_ms is not None for e in compute)
        assert len(merges) == 1
        merge = merges[0]
        assert merge.extra["shards"] == 3
        assert merge.extra["failed_shards"] == 0
        assert merge.extra["candidates"] >= 1
        assert merge.extra["straggler_shard"] in (0, 1, 2)
        assert merge.extra["straggler_ms"] >= merge.extra["fastest_ms"]
        assert merge.extra["barrier_ms"] >= 0

    def test_analyze_reports_straggler_attribution(self, data, tmp_path):
        trace_path = tmp_path / "many.jsonl"
        full = (1 << data.shape[1]) - 1

        async def scenario():
            plan = ShardPlan.build(data, 2)
            tracer = JsonlTracer(str(trace_path))
            coordinator = ShardCoordinator(data, plan, tracer=tracer)
            await asyncio.to_thread(coordinator.start)
            try:
                for request_id in range(5):
                    await coordinator.skyline(full, request_id=request_id)
            finally:
                await coordinator.aclose()
                tracer.close()

        run(scenario())
        report = analyze_file(str(trace_path))
        assert report.merges == 5
        assert sum(report.stragglers.values()) == 5
        assert set(report.stragglers) <= {0, 1}
        from repro.trace.analyze import format_report

        text = format_report(report)
        assert "per-shard compute spans (ms):" in text
        assert "merge barriers: 5, straggler attribution:" in text


class TestServiceSurface:
    def test_ping_metrics_and_rejections(self, data):
        async def scenario():
            plan = ShardPlan.build(data, 2, partitioner="tree-leaf")
            coordinator = ShardCoordinator(data, plan)
            service = ShardService(coordinator)
            await service.start()
            try:
                ping = await service.submit(Request(op="ping"))
                assert ping.result == {
                    "d": 4, "n": len(data), "shards": 2, "alive": 2,
                    "partitioner": "tree-leaf",
                }
                metrics = await service.submit(Request(op="metrics"))
                assert metrics.result["shards"]["alive"] == [True, True]
                for op in ("insert", "delete", "skyline_diff"):
                    rejected = await service.submit(
                        Request(op=op, point=(1.0, 2.0, 3.0, 4.0),
                                point_id=0, delta=1, v_from=0, v_to=1)
                    )
                    assert not rejected.ok
                    assert rejected.error == "Unsupported"
                    assert "live updates" in rejected.message
                    assert "SHARDING.md" in rejected.message
                missing = await service.submit(
                    Request(op="membership", point_id=99_999, delta=1)
                )
                assert not missing.ok and missing.error == "NotFound"
            finally:
                await service.stop()

        run(scenario())

    def test_coalesced_batch_answers_every_rider(self, data, reference):
        full = (1 << data.shape[1]) - 1

        async def scenario():
            plan = ShardPlan.build(data, 2)
            coordinator = ShardCoordinator(data, plan)
            service = ShardService(coordinator, window=0.01, max_batch=32)
            await service.start()
            try:
                responses = await asyncio.gather(*(
                    service.submit(Request(op="skyline", delta=full))
                    for _ in range(8)
                ))
                assert all(r.ok for r in responses)
                want = list(reference.skyline(full))
                assert all(r.result == want for r in responses)
            finally:
                await service.stop()

        run(scenario())


def _load_events(path):
    from repro.trace import TraceEvent

    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                events.append(TraceEvent.from_json(line))
    return events
