"""Packed-bitset engine: bit-identity with the reference MDMC paradigm.

Covers the :mod:`repro.engine.packed` word layout and closure table,
the :class:`repro.core.dominance.PairCoder` comparison codes, the
``engine="packed"`` fast path of ``fast_skycube`` (against the loop
engine and the brute-force oracle), ``HashCube.from_masks`` validation,
and the packed composition with the process executor.
"""

import numpy as np
import pytest

from repro.core.closures import SubspaceClosures
from repro.core.dominance import PairCoder, dominance_pair_codes, rank_columns
from repro.core.hashcube import HashCube
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.engine import packed
from repro.engine.kernels import (
    SKYCUBE_ENGINES,
    fast_extended_skyline,
    fast_skycube,
)
from repro.engine.parallel import (
    ParallelExecutor,
    parallel_filtered_packed_masks,
    parallel_packed_masks,
)
from repro.instrument.counters import Counters
from repro.partitioning.static_tree import LeafLabels


def seeded_workloads():
    """Seeded A/I/C datasets, d in {2..8}, with duplicate and tied rows."""
    cases = []
    for dist in ("anticorrelated", "independent", "correlated"):
        for d in (2, 3, 5, 8):
            data = generate(dist, 120, d, seed=11 + d)
            data = np.vstack([data, data[:15]])  # exact duplicates
            data[40, 0] = data[41, 0]  # per-dimension tie
            cases.append((f"{dist[:1]}-d{d}", data))
    cases.append(
        ("dup-d4", generate("independent", 90, 4, seed=5, distinct_values=3))
    )
    return cases


@pytest.fixture(params=seeded_workloads(), ids=lambda case: case[0])
def packed_workload(request):
    return request.param[1]


# -- word layout and closure table -------------------------------------


def test_words_for_matches_subspace_count():
    assert packed.words_for(1) == 1
    assert packed.words_for(6) == 1  # 63 bits
    assert packed.words_for(7) == 2  # 127 bits
    assert packed.words_for(8) == 4
    with pytest.raises(ValueError):
        packed.words_for(0)


@pytest.mark.parametrize("d", [1, 2, 3, 5, 8, 10])
def test_closure_table_equals_subspace_closures(d):
    table = packed.closure_table(d)
    closures = SubspaceClosures(d)
    assert table.shape == (1 << d, packed.words_for(d))
    for mask in range(1 << d):
        assert packed.row_to_int(table[mask]) == closures.closure(mask), mask


def test_closure_table_cached_and_readonly():
    table = packed.closure_table(5)
    assert packed.closure_table(5) is table
    assert not table.flags.writeable
    with pytest.raises(ValueError):
        packed.closure_table(packed.PACKED_MAX_D + 1)


@pytest.mark.parametrize("d", [3, 6, 8])
def test_row_int_round_trip(d):
    rng = np.random.default_rng(d)
    mask = int(rng.integers(0, 1 << min(60, (1 << d) - 1)))
    row = packed.row_from_int(mask, d)
    assert packed.row_to_int(row) == mask
    assert packed.rows_to_ints(row[None, :]) == [mask]
    with pytest.raises(ValueError):
        packed.row_from_int(1 << ((1 << d) - 1), d)


@pytest.mark.parametrize("d", [2, 4, 8])
def test_relevant_row_matches_popcount_filter(d):
    from repro.core.bitmask import popcount

    for max_level in (None, 1, d - 1, d):
        row = packed.relevant_row(d, max_level)
        expected = 0
        for delta in range(1, 1 << d):
            if max_level is None or popcount(delta) <= max_level:
                expected |= 1 << (delta - 1)
        assert packed.row_to_int(row) == expected, max_level
        unmat = packed.row_to_int(packed.unmaterialised_row(d, max_level))
        assert unmat == ((1 << ((1 << d) - 1)) - 1) & ~expected


# -- comparison codes ---------------------------------------------------


def test_rank_columns_preserves_column_order(packed_workload):
    data = packed_workload
    ranks = rank_columns(data)
    assert ranks.dtype == np.uint16
    for k in range(data.shape[1]):
        order = np.argsort(data[:, k], kind="stable")
        col, rank = data[order, k], ranks[order, k]
        assert np.all(np.diff(rank) >= 0)
        assert np.array_equal(np.diff(col) > 0, np.diff(rank) > 0)


def test_pair_coder_matches_reference_codes(packed_workload):
    data = packed_workload
    coder = PairCoder(data)
    reference = dominance_pair_codes(data, data[10:40])
    assert np.array_equal(coder.codes(10, 40).astype(np.int64), reference)


def test_pair_coder_validation():
    with pytest.raises(ValueError):
        PairCoder(np.empty((0, 3)))
    with pytest.raises(ValueError):
        PairCoder(np.zeros((4, 17)))
    coder = PairCoder(np.zeros((4, 2)))
    with pytest.raises(ValueError):
        coder.codes(2, 2)
    with pytest.raises(ValueError):
        coder.codes(0, 5)


def test_pair_coder_dense_eq_fallback():
    # One ultra-duplicated column forces the dense == sweep for it.
    rng = np.random.default_rng(0)
    data = np.column_stack(
        [rng.integers(0, 2, 200).astype(float), rng.random(200)]
    )
    coder = PairCoder(data)
    assert not coder._sparse_eq[0] and coder._sparse_eq[1]
    reference = dominance_pair_codes(data, data[:50])
    assert np.array_equal(coder.codes(0, 50).astype(np.int64), reference)


# -- packed point masks -------------------------------------------------


def test_packed_masks_match_loop_pairs(packed_workload):
    data = packed_workload
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    d = data.shape[1]
    closures = SubspaceClosures(d)
    masks = packed.packed_point_masks(rows)
    from repro.core.dominance import dominance_masks_vs_all

    for j in range(len(rows)):
        le, _, eq = dominance_masks_vs_all(rows, rows[j])
        expected = 0
        for pair in set(zip(le.tolist(), eq.tolist())):
            if pair[0]:
                expected |= closures.dominated_update(pair[0], pair[1])
        assert packed.row_to_int(masks[j]) == expected, j


def test_block_masks_one_shot_matches_sweep():
    data = generate("independent", 50, 3, seed=2)
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    whole = packed.packed_point_masks(rows)
    assert np.array_equal(packed.block_masks(rows, 3, 11), whole[3:11])
    with pytest.raises(ValueError):
        packed.block_masks(rows, 5, 5)


def test_packed_sweep_range_equals_whole():
    data = generate("anticorrelated", 140, 4, seed=9)
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    whole = packed.packed_point_masks(rows, block=32)
    sweep = packed.PackedSweep(rows, block=16)
    stitched = np.vstack(
        [sweep.range_masks(0, 7), sweep.range_masks(7, len(rows))]
    )
    assert np.array_equal(whole, stitched)


# -- fast_skycube engines ----------------------------------------------


def test_engines_and_oracle_agree(packed_workload):
    data = packed_workload
    cube_packed = fast_skycube(data, engine="packed")
    cube_loop = fast_skycube(data, engine="loop")
    assert cube_packed.store == cube_loop.store
    assert cube_packed == brute_force_skycube(data)


@pytest.mark.parametrize("bit_order", ["numeric", "level"])
def test_engines_agree_across_bit_orders(bit_order):
    data = generate("anticorrelated", 130, 5, seed=21)
    data = np.vstack([data, data[:10]])
    a = fast_skycube(data, engine="packed", bit_order=bit_order)
    b = fast_skycube(data, engine="loop", bit_order=bit_order)
    assert a.store == b.store


@pytest.mark.parametrize("max_level", [1, 2, 3])
def test_engines_agree_on_partial_cubes(max_level):
    data = generate("independent", 110, 4, seed=31)
    a = fast_skycube(data, max_level=max_level, engine="packed")
    b = fast_skycube(data, max_level=max_level, engine="loop")
    assert a.store == b.store
    full = fast_skycube(data, engine="packed")
    for delta in range(1, 1 << 4):
        if bin(delta).count("1") <= max_level:
            assert list(a.skyline(delta)) == list(full.skyline(delta))


def test_engine_knob_validation():
    data = generate("independent", 30, 3, seed=1)
    assert SKYCUBE_ENGINES == ("packed", "packed-filtered", "loop")
    with pytest.raises(ValueError):
        fast_skycube(data, engine="simd")
    wide = generate("independent", 20, packed.PACKED_MAX_D + 1, seed=1)
    with pytest.raises(ValueError):
        fast_skycube(wide, engine="packed")
    with pytest.raises(ValueError):
        fast_skycube(wide, engine="packed-filtered")


def test_block_keyword_and_env_override(monkeypatch):
    from repro.engine import kernels

    data = generate("anticorrelated", 90, 3, seed=4)
    base = fast_skycube(data)
    assert fast_skycube(data, block=7).store == base.store
    monkeypatch.setenv(kernels.BLOCK_ENV, "13")
    assert fast_skycube(data).store == base.store
    monkeypatch.setenv(kernels.BLOCK_ENV, "not-a-number")
    with pytest.raises(ValueError):
        fast_skycube(data)
    monkeypatch.setenv(kernels.BLOCK_ENV, "0")
    with pytest.raises(ValueError):
        fast_skycube(data)


# -- filtered packed engine --------------------------------------------


def test_filtered_engine_matches_packed(packed_workload):
    data = packed_workload
    reference = fast_skycube(data, engine="packed")
    counters = Counters()
    filtered = fast_skycube(data, engine="packed-filtered", counters=counters)
    assert filtered.store == reference.store
    assert counters.pairs_pruned >= 0 and counters.label_bytes >= 0


@pytest.mark.parametrize("bit_order", ["numeric", "level"])
@pytest.mark.parametrize("max_level", [None, 1, 3])
def test_filtered_engine_bit_orders_and_partial_cubes(bit_order, max_level):
    data = generate("anticorrelated", 130, 5, seed=21)
    data = np.vstack([data, data[:10]])
    a = fast_skycube(
        data, engine="packed", bit_order=bit_order, max_level=max_level
    )
    b = fast_skycube(
        data,
        engine="packed-filtered",
        bit_order=bit_order,
        max_level=max_level,
    )
    assert a.store == b.store


def test_filtered_point_masks_match_packed(packed_workload):
    data = packed_workload
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    expected = packed.packed_point_masks(rows)
    got = packed.filtered_point_masks(rows, counters=Counters())
    assert np.array_equal(expected, got)


def test_forced_filter_stays_bit_identical(packed_workload):
    # The adaptive gates usually disable the node filter on extended-
    # skyline rows; force it on so the skip/subset-coding path itself
    # is exercised on every workload shape.
    data = packed_workload
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    labels = LeafLabels.build(rows)
    ordered = np.ascontiguousarray(rows[labels.order])
    expected = packed.packed_point_masks(ordered, block=32)
    sweep = packed.FilteredPackedSweep(ordered, labels, block=32)
    sweep.filter_active = True
    sweep.MIN_PRUNE_RATE = -1.0  # never self-disable
    assert np.array_equal(sweep.range_masks(0, sweep.n), expected)


def test_filter_bits_are_subset_of_final_masks(packed_workload):
    # Property: every bit the label filter sets must appear in the
    # exact result — filtering is evidence, never guesswork.
    data = packed_workload
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    labels = LeafLabels.build(rows)
    ordered = np.ascontiguousarray(rows[labels.order])
    final = packed.packed_point_masks(ordered)
    sweep = packed.FilteredPackedSweep(ordered, labels, block=16)
    for start in range(0, sweep.n, 16):
        end = min(sweep.n, start + 16)
        filtered = sweep.filter_rows(start, end)
        assert not np.any(filtered & ~final[start:end])


def test_filtered_sweep_validates_labels():
    data = generate("independent", 60, 3, seed=8)
    rows = np.ascontiguousarray(data[fast_extended_skyline(data)])
    labels = LeafLabels.build(rows)
    with pytest.raises(ValueError):
        packed.FilteredPackedSweep(rows[:-1], labels)
    wrong_k = generate("independent", len(rows), 4, seed=8)
    with pytest.raises(ValueError):
        packed.FilteredPackedSweep(wrong_k, labels)


def test_label_prefilter_covers_splus(monkeypatch):
    from repro.engine import kernels

    monkeypatch.setattr(kernels, "PREFILTER_MIN_ROWS", 0)
    for dist in ("correlated", "independent"):
        data = generate(dist, 400, 4, seed=3, distinct_values=4)
        mask = kernels.label_prefilter(data)
        splus = fast_extended_skyline(data)
        if mask is not None:
            assert mask[splus].all()  # never drops an S+ point
        assert np.array_equal(
            kernels.splus_ids_for_engine(data, "packed-filtered"), splus
        )


def test_label_prefilter_gates():
    from repro.engine import kernels

    small = generate("correlated", 64, 3, seed=1)
    assert kernels.label_prefilter(small) is None  # below MIN_ROWS
    wide = generate("correlated", 600, 21, seed=1)
    assert kernels.label_prefilter(wide) is None  # 3*d > 62 bits


# -- HashCube.from_masks ------------------------------------------------


def test_from_masks_equals_insert_loop(packed_workload):
    data = packed_workload
    d = data.shape[1]
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    mask_rows = packed.packed_point_masks(rows)
    bulk = HashCube.from_masks(d, splus, mask_rows)
    loop = HashCube(d)
    for pid, row in zip(splus, mask_rows):
        loop.insert(int(pid), packed.row_to_int(row))
    assert bulk == loop


def test_from_masks_validation_errors():
    d = 3
    words = packed.words_for(d)
    ids = np.arange(4, dtype=np.int64)
    rows = np.zeros((4, words), dtype=np.uint64)
    with pytest.raises(ValueError):
        HashCube.from_masks(d, ids, rows.astype(np.int64))  # wrong dtype
    with pytest.raises(ValueError):
        HashCube.from_masks(d, ids, np.zeros((4, words + 1), np.uint64))
    with pytest.raises(ValueError):
        HashCube.from_masks(d, ids[:3], rows)  # id/row count mismatch
    with pytest.raises(ValueError):
        HashCube.from_masks(d, np.array([0, 1, 2, -1]), rows)
    with pytest.raises(ValueError):
        HashCube.from_masks(d, np.array([0, 1, 2, 2]), rows)  # duplicate id
    junk = rows.copy()
    junk[0, 0] = np.uint64(1) << np.uint64((1 << d) - 1)  # beyond 2^d - 1
    with pytest.raises(ValueError):
        HashCube.from_masks(d, ids, junk)


# -- executor composition ----------------------------------------------


def test_parallel_packed_masks_match_serial(packed_workload):
    data = packed_workload
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    serial = packed.packed_point_masks(rows)
    executor = ParallelExecutor(workers=1)  # deterministic serial fallback
    parallel = parallel_packed_masks(rows, executor, block=17)
    assert np.array_equal(serial, parallel)


def test_mdmc_process_backend_uses_packed_path():
    from repro.templates import MDMC

    data = generate("anticorrelated", 150, 4, seed=13)
    data = np.vstack([data, data[:12]])
    reference = MDMC().materialise(data).skycube
    processed = MDMC(executor="process").materialise(data).skycube
    assert processed == reference
    partial_ref = MDMC().materialise(data, max_level=2).skycube
    partial = MDMC(executor="process").materialise(data, max_level=2).skycube
    assert partial.store == partial_ref.store


def test_parallel_filtered_masks_match_serial(packed_workload):
    data = packed_workload
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    serial = packed.packed_point_masks(rows)
    executor = ParallelExecutor(workers=1)  # deterministic serial fallback
    counters = Counters()
    parallel = parallel_filtered_packed_masks(
        rows, executor, block=17, counters=counters
    )
    assert np.array_equal(serial, parallel)


def test_parallel_filtered_masks_on_real_pool():
    data = generate("independent", 300, 4, seed=5, distinct_values=3)
    splus = fast_extended_skyline(data)
    rows = np.ascontiguousarray(data[splus])
    serial = packed.packed_point_masks(rows)
    counters = Counters()
    parallel = parallel_filtered_packed_masks(
        rows, ParallelExecutor(workers=2), block=64, counters=counters
    )
    assert np.array_equal(serial, parallel)
    assert counters.label_bytes > 0  # coarse directory: filter active


@pytest.mark.parametrize("engine", SKYCUBE_ENGINES)
def test_mdmc_engine_override_serial_and_process(engine):
    from repro.templates import MDMC

    data = generate("correlated", 140, 4, seed=17)
    data = np.vstack([data, data[:10]])
    reference = MDMC().materialise(data).skycube
    serial = MDMC(engine=engine).materialise(data).skycube
    assert serial.store == reference.store
    processed = MDMC(executor="process", engine=engine).materialise(data)
    assert processed.skycube.store == reference.store
    partial_ref = MDMC().materialise(data, max_level=2).skycube
    partial = MDMC(engine=engine).materialise(data, max_level=2).skycube
    assert partial.store == partial_ref.store


def test_mdmc_engine_validation():
    from repro.templates import MDMC

    with pytest.raises(ValueError):
        MDMC(engine="simd")
    wide = generate("independent", 25, packed.PACKED_MAX_D + 1, seed=2)
    with pytest.raises(ValueError):
        MDMC(executor="process", engine="packed-filtered").materialise(wide)
