"""Tests for counters and memory profiles."""

from hypothesis import given, strategies as st

from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile


class TestCounters:
    def test_starts_zero(self):
        counters = Counters()
        assert counters.instructions == 0
        assert all(v == 0 for v in counters.as_dict().values())

    def test_merge_adds(self):
        a, b = Counters(), Counters()
        a.dominance_tests = 3
        a.extra["warp_votes"] = 2
        b.dominance_tests = 4
        b.mask_tests = 5
        b.extra["warp_votes"] = 1
        a.merge(b)
        assert a.dominance_tests == 7
        assert a.mask_tests == 5
        assert a.extra["warp_votes"] == 3

    def test_copy_independent(self):
        a = Counters()
        a.mask_tests = 2
        b = a.copy()
        b.mask_tests = 99
        assert a.mask_tests == 2

    def test_reset(self):
        a = Counters()
        a.values_loaded = 10
        a.extra["x"] = 1
        a.reset()
        assert a.values_loaded == 0
        assert a.extra == {}

    def test_instructions_monotone_in_work(self):
        a, b = Counters(), Counters()
        b.dominance_tests = 100
        assert b.instructions > a.instructions

    def test_str_omits_zeros(self):
        a = Counters()
        a.sync_points = 3
        text = str(a)
        assert "sync_points=3" in text
        assert "dominance_tests" not in text

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_merge_commutative_on_totals(self, x, y):
        a, b = Counters(), Counters()
        a.dominance_tests, b.dominance_tests = x, y
        left = Counters().merge(a).merge(b)
        right = Counters().merge(b).merge(a)
        assert left.dominance_tests == right.dominance_tests


class TestMemoryProfile:
    def test_working_sets(self):
        profile = MemoryProfile(
            data_bytes=100, pointer_bytes=50, flat_bytes=25,
            shared_flat_bytes=10, shared_pointer_bytes=5, output_bytes=1,
        )
        assert profile.private_working_set() == 175
        assert profile.total_working_set() == 191

    def test_merge_shared_takes_max(self):
        a = MemoryProfile(flat_bytes=10, shared_flat_bytes=100)
        b = MemoryProfile(flat_bytes=20, shared_flat_bytes=60)
        a.merge(b)
        assert a.flat_bytes == 30
        assert a.shared_flat_bytes == 100

    def test_scaled(self):
        profile = MemoryProfile(data_bytes=100, shared_flat_bytes=40)
        half = profile.scaled(0.5)
        assert half.data_bytes == 50
        assert half.shared_flat_bytes == 40  # shared structures do not split
