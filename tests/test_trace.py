"""Tests for repro.trace: events, taxonomy, sinks, and analyze.

The load-bearing property (ISSUE 6): every shed/deadline/worker-death/
bad-request/race/bug path through the serving stack maps to **exactly
one** taxonomy class, and ``trace analyze`` finds no unclassified
events on any of them.
"""

import asyncio
import json
import threading

import pytest

from repro.data.generator import generate
from repro.serve import (
    Request,
    ServingSnapshot,
    SkycubeServer,
    SkycubeService,
    SnapshotHolder,
)
from repro.trace import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    FAILURE_CLASSES,
    INTERNAL_ERROR,
    NULL_TRACER,
    SHED,
    SNAPSHOT_SWAP_RACE,
    STAGES,
    WORKER_DEATH,
    JsonlTracer,
    TraceEvent,
    Tracer,
    classify_wire_error,
    executor_event_to_trace,
    get_executor_sink,
    install_executor_sink,
    uninstall_executor_sink,
)
from repro.trace.analyze import analyze_events, analyze_file, format_report


def run(coroutine):
    return asyncio.run(coroutine)


class ListTracer(Tracer):
    """Test sink: keeps every event in order, in memory."""

    enabled = True

    def __init__(self):
        super().__init__()
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def by_stage(self, stage):
        return [event for event in self.events if event.stage == stage]


@pytest.fixture
def data():
    return generate("independent", 80, 4, seed=11)


@pytest.fixture
def holder(data):
    return SnapshotHolder(ServingSnapshot.build(data))


async def traced_service(holder, **kwargs):
    tracer = ListTracer()
    service = SkycubeService(holder, tracer=tracer, **kwargs)
    await service.start()
    return service, tracer


# -- taxonomy ----------------------------------------------------------


class TestTaxonomy:
    def test_wire_errors_map_to_exactly_one_class(self):
        for wire, expected in [
            ("Overloaded", SHED),
            ("DeadlineExceeded", DEADLINE_EXCEEDED),
            ("BadRequest", BAD_REQUEST),
            ("NotFound", BAD_REQUEST),
            ("Internal", INTERNAL_ERROR),
            ("SomethingNovel", INTERNAL_ERROR),  # catch-all: a bug
        ]:
            got = classify_wire_error(wire)
            assert got == expected
            assert got in FAILURE_CLASSES

    def test_success_maps_to_none(self):
        assert classify_wire_error(None) is None

    def test_not_found_with_version_race_is_swap_race(self):
        assert classify_wire_error("NotFound", 3, 4) == SNAPSHOT_SWAP_RACE
        assert classify_wire_error("NotFound", 3, 3) == BAD_REQUEST
        # Missing context degrades to the client-mistake reading.
        assert classify_wire_error("NotFound", None, 4) == BAD_REQUEST


# -- events ------------------------------------------------------------


class TestTraceEvent:
    def test_json_round_trip(self):
        event = TraceEvent(
            stage="compute", outcome="failure", failure=SHED,
            request_id=7, op="skyline", delta=5, snapshot_version=2,
            batch_size=16, duration_ms=1.25, detail="x",
            ts=1234.5,  # to_json rounds ts; pin it so equality is exact
            extra={"queue_depth": 9},
        )
        back = TraceEvent.from_json(event.to_json())
        assert back == event

    def test_none_fields_omitted_on_the_wire(self):
        line = TraceEvent(stage="admit").to_json()
        payload = json.loads(line)
        assert set(payload) == {"ts", "stage", "outcome"}

    def test_unknown_keys_land_in_extra(self):
        back = TraceEvent.from_json(
            '{"stage": "compute", "kind": "worker_death", "tasks": 3}'
        )
        assert back.extra == {"kind": "worker_death", "tasks": 3}

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            TraceEvent.from_json("[1, 2]")
        with pytest.raises(ValueError):
            TraceEvent.from_json("not json at all")


# -- sinks -------------------------------------------------------------


class TestJsonlTracer:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(str(path), flush_every=1) as tracer:
            for index in range(5):
                tracer.emit(TraceEvent(stage="admit", request_id=index))
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert [TraceEvent.from_json(line).request_id for line in lines] == [
            0, 1, 2, 3, 4,
        ]

    def test_buffering_respects_flush_every(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(str(path), flush_every=100)
        try:
            tracer.emit(TraceEvent(stage="admit"))
            assert path.read_text() == ""  # still buffered
            tracer.flush()
            assert len(path.read_text().splitlines()) == 1
        finally:
            tracer.close()

    def test_emit_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(str(path), flush_every=1)
        tracer.close()
        tracer.emit(TraceEvent(stage="admit"))  # must not raise
        assert tracer.emitted == 0

    def test_request_ids_unique_across_threads(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "t.jsonl"))
        seen = []

        def grab():
            seen.extend(tracer.next_request_id() for _ in range(200))

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.close()
        assert len(set(seen)) == 800

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(TraceEvent(stage="admit"))  # no-op, no error


class TestExecutorBridge:
    def test_kind_classification(self):
        cases = {
            "worker_death": (WORKER_DEATH, "failure"),
            "bin_timeout": (WORKER_DEATH, "failure"),
            "task_error": (INTERNAL_ERROR, "failure"),
            "pool_unavailable": (None, "ok"),
            "retry_recovered": (None, "ok"),
            "serial_recovered": (None, "ok"),
        }
        for kind, (failure, outcome) in cases.items():
            event = executor_event_to_trace(
                {"kind": kind, "tasks": 2, "attempt": 0}
            )
            assert event.stage == "compute"
            assert event.failure == failure
            assert event.outcome == outcome
            assert event.extra["kind"] == kind
            assert event.extra["tasks"] == 2

    def test_unknown_kind_is_internal_error(self):
        assert executor_event_to_trace({"kind": "??"}).failure == (
            INTERNAL_ERROR
        )

    def test_global_sink_install_uninstall(self):
        tracer = ListTracer()
        install_executor_sink(tracer.executor_sink())
        try:
            sink = get_executor_sink()
            assert sink is not None
            sink({"kind": "worker_death", "tasks": 1})
            assert tracer.events[0].failure == WORKER_DEATH
        finally:
            uninstall_executor_sink()
        assert get_executor_sink() is None


# -- the service lifecycle, traced ------------------------------------


class TestServiceTracing:
    def test_success_leaves_all_four_stages(self, holder):
        async def scenario():
            service, tracer = await traced_service(holder, window=0.0)
            response = await service.submit(Request(op="skyline", delta=3))
            await service.stop()
            return response, tracer

        response, tracer = run(scenario())
        assert response.ok
        stages = [event.stage for event in tracer.events]
        # ``merge`` is sharded-tier only and ``publish``/``compact``
        # belong to the write path; one read request leaves the four
        # read-path stages, in lifecycle order.
        read_path = ("merge", "publish", "compact")
        assert stages == [s for s in STAGES if s not in read_path]
        ids = {event.request_id for event in tracer.events}
        assert len(ids) == 1  # one trace id ties the lifecycle together
        assert all(event.outcome == "ok" for event in tracer.events)
        compute = tracer.by_stage("compute")[0]
        assert compute.snapshot_version == holder.version
        assert compute.duration_ms is not None

    def test_shed_is_classified_shed(self, holder):
        async def scenario():
            service, tracer = await traced_service(
                holder, window=0.2, max_batch=512, max_pending=4
            )
            responses = await asyncio.gather(
                *(service.submit(Request(op="skyline", delta=1))
                  for _ in range(32))
            )
            await service.stop()
            return responses, tracer

        responses, tracer = run(scenario())
        shed = [r for r in responses if r.error == "Overloaded"]
        assert shed and all(r.failure_class == SHED for r in shed)
        shed_admits = [
            event for event in tracer.by_stage("admit")
            if event.outcome == "failure"
        ]
        assert len(shed_admits) == len(shed)
        assert all(event.failure == SHED for event in shed_admits)
        assert all(
            "queue_depth" in event.extra for event in shed_admits
        )
        shed_responds = [
            event for event in tracer.by_stage("respond")
            if event.outcome == "failure"
        ]
        assert all(event.failure == SHED for event in shed_responds)

    def test_deadline_is_classified_deadline(self, holder):
        async def scenario():
            service, tracer = await traced_service(holder, window=0.05)
            loop = asyncio.get_running_loop()
            response = await service.submit(
                Request(op="skyline", delta=1, deadline=loop.time() + 1e-4)
            )
            await service.stop()
            return response, tracer

        response, tracer = run(scenario())
        assert response.error == "DeadlineExceeded"
        assert response.failure_class == DEADLINE_EXCEEDED
        failures = [
            event for event in tracer.events if event.outcome == "failure"
        ]
        assert failures
        assert all(event.failure == DEADLINE_EXCEEDED for event in failures)

    def test_unknown_point_without_race_is_bad_request(self, holder):
        async def scenario():
            service, tracer = await traced_service(holder, window=0.0)
            response = await service.submit(
                Request(op="membership", point_id=10_000, delta=1)
            )
            await service.stop()
            return response, tracer

        response, tracer = run(scenario())
        assert response.error == "NotFound"
        assert response.failure_class == BAD_REQUEST
        respond = tracer.by_stage("respond")[0]
        assert respond.failure == BAD_REQUEST

    def test_snapshot_swap_race_is_classified_race(self, data, holder):
        async def scenario():
            service, tracer = await traced_service(
                holder, window=0.05, max_batch=512
            )
            # Park a membership query for a point the *current* snapshot
            # knows, then publish a smaller snapshot before the window
            # closes: by answer time the point is gone.
            waiter = asyncio.ensure_future(
                service.submit(Request(op="membership", point_id=60, delta=1))
            )
            await asyncio.sleep(0.01)
            holder.publish(
                ServingSnapshot.build(
                    data[:40], version=holder.version + 1
                )
            )
            response = await waiter
            await service.stop()
            return response, tracer

        response, tracer = run(scenario())
        assert response.error == "NotFound"
        assert response.failure_class == SNAPSHOT_SWAP_RACE
        compute = [
            event for event in tracer.by_stage("compute")
            if event.outcome == "failure"
        ]
        assert compute and compute[0].failure == SNAPSHOT_SWAP_RACE
        respond = tracer.by_stage("respond")[0]
        assert respond.failure == SNAPSHOT_SWAP_RACE

    def test_batch_executor_bug_is_internal_error(self, holder):
        async def scenario():
            service, tracer = await traced_service(holder, window=0.0)

            def boom(requests):
                raise RuntimeError("executor exploded")

            service._batcher._execute = boom
            response = await service.submit(Request(op="skyline", delta=1))
            await service.stop()
            return response, tracer

        response, tracer = run(scenario())
        assert response.error == "Internal"
        assert response.failure_class == INTERNAL_ERROR
        batch_failures = [
            event for event in tracer.by_stage("batch")
            if event.outcome == "failure"
        ]
        assert batch_failures
        assert batch_failures[0].failure == INTERNAL_ERROR
        assert "RuntimeError" in (batch_failures[0].detail or "")

    def test_coalesced_requests_share_one_computation(self, holder):
        async def scenario():
            service, tracer = await traced_service(
                holder, window=0.02, max_batch=256
            )
            await asyncio.gather(
                *(service.submit(Request(op="skyline", delta=3))
                  for _ in range(10))
            )
            await service.stop()
            return tracer

        tracer = run(scenario())
        computes = tracer.by_stage("compute")
        coalesced = [
            event for event in computes if event.detail == "coalesced"
        ]
        assert len(computes) == 10
        assert len(coalesced) >= 5  # dedup really happened

    def test_dedup_key_ignores_trace_context(self):
        a = Request(op="skyline", delta=3, trace_id=1, admit_version=0,
                    admitted_at=1.0)
        b = Request(op="skyline", delta=3, trace_id=2, admit_version=4,
                    admitted_at=2.0)
        assert a.key() == b.key()

    def test_malformed_wire_line_traced_at_admit(self, holder):
        async def scenario():
            tracer = ListTracer()
            service = SkycubeService(holder, window=0.0, tracer=tracer)
            await service.start()
            server = SkycubeServer(service, port=0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"not json\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.request_shutdown()
            await server.serve_until_shutdown()
            return response, tracer

        response, tracer = run(scenario())
        assert response["error"]["type"] == "BadRequest"
        admits = tracer.by_stage("admit")
        assert admits and admits[0].failure == BAD_REQUEST

    def test_every_failure_path_is_classified(self, holder):
        """The ISSUE 6 acceptance line: shed, deadline and bad-request
        paths all leave zero unclassified events for analyze."""

        async def scenario():
            service, tracer = await traced_service(
                holder, window=0.05, max_batch=512, max_pending=4
            )
            loop = asyncio.get_running_loop()
            jobs = [
                service.submit(Request(op="skyline", delta=1))
                for _ in range(16)
            ]
            jobs.append(service.submit(
                Request(op="skyline", delta=1, deadline=loop.time() + 1e-4)
            ))
            jobs.append(service.submit(
                Request(op="membership", point_id=9_999, delta=1)
            ))
            await asyncio.gather(*jobs)
            await service.stop()
            return tracer

        tracer = run(scenario())
        report = analyze_events(tracer.events)
        assert report.unclassified == []
        assert report.failed > 0


# -- analyze -----------------------------------------------------------


def _sample_events():
    return [
        TraceEvent(stage="admit", request_id=1, op="skyline", delta=5),
        TraceEvent(stage="batch", request_id=1, op="skyline", delta=5,
                   batch_size=4, duration_ms=2.0),
        TraceEvent(stage="compute", request_id=1, op="skyline", delta=5,
                   duration_ms=0.5, snapshot_version=0),
        TraceEvent(stage="respond", request_id=1, op="skyline", delta=5,
                   duration_ms=3.0),
        TraceEvent(stage="admit", outcome="failure", failure=SHED,
                   request_id=2, op="skyline", delta=5),
        TraceEvent(stage="compute", outcome="failure",
                   failure=WORKER_DEATH, extra={"kind": "worker_death"}),
        TraceEvent(stage="respond", outcome="failure", failure="Mystery",
                   request_id=3),
    ]


class TestAnalyze:
    def test_counts_and_classes(self):
        report = analyze_events(_sample_events())
        assert report.events == 7
        assert report.requests == 3
        assert report.failures == {SHED: 1, WORKER_DEATH: 1}
        assert len(report.unclassified) == 1
        assert report.failed == 3
        assert report.stage_counts["admit"] == 2
        assert report.batch_sizes == {4: 1}
        assert report.executor_events == {"worker_death": 1}
        assert report.subspaces[5] == (1, 5)

    def test_present_classes_drives_fail_on(self):
        report = analyze_events(_sample_events())
        assert report.present_classes([SHED]) == [SHED]
        assert report.present_classes([DEADLINE_EXCEEDED]) == []
        assert report.present_classes(["unclassified"]) == ["unclassified"]

    def test_latency_percentiles_present(self):
        report = analyze_events(_sample_events())
        assert set(report.latency) == {"batch", "compute", "respond"}
        stats = report.latency["batch"].as_dict()
        assert stats["count"] == 1

    def test_file_round_trip_counts_malformed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [event.to_json() for event in _sample_events()]
        lines.insert(2, "this line is garbage")
        path.write_text("\n".join(lines) + "\n")
        report = analyze_file(str(path))
        assert report.events == 7
        assert report.malformed_lines == 1

    def test_format_report_mentions_the_essentials(self):
        text = format_report(analyze_events(_sample_events()))
        assert "failures: 3" in text
        assert SHED in text
        assert WORKER_DEATH in text
        assert "unclassified" in text
        assert "delta=0b101" in text

    def test_as_dict_is_json_serialisable(self):
        payload = analyze_events(_sample_events()).as_dict()
        json.dumps(payload)  # must not raise
        assert payload["failures"] == {SHED: 1, WORKER_DEATH: 1}
        assert payload["unclassified"] == 1
