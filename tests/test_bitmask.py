"""Unit tests for subspace bitmask algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import bitmask as bm


class TestPopcount:
    def test_zero(self):
        assert bm.popcount(0) == 0

    def test_full(self):
        assert bm.popcount(0b1111) == 4

    def test_sparse(self):
        assert bm.popcount(0b1010001) == 3

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_bin_count(self, value):
        assert bm.popcount(value) == bin(value).count("1")


class TestFullSpace:
    def test_values(self):
        assert bm.full_space(1) == 1
        assert bm.full_space(4) == 15
        assert bm.full_space(16) == 65535

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bm.full_space(0)


class TestSubspaceRelations:
    def test_validity(self):
        assert bm.is_valid_subspace(1, 3)
        assert bm.is_valid_subspace(7, 3)
        assert not bm.is_valid_subspace(0, 3)
        assert not bm.is_valid_subspace(8, 3)

    def test_subspace_of(self):
        assert bm.is_subspace_of(0b010, 0b110)
        assert bm.is_subspace_of(0b110, 0b110)
        assert not bm.is_subspace_of(0b101, 0b110)

    def test_strict_subspace(self):
        assert bm.is_strict_subspace_of(0b010, 0b110)
        assert not bm.is_strict_subspace_of(0b110, 0b110)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_subspace_iff_and_identity(self, a, b):
        assert bm.is_subspace_of(a, b) == ((a | b) == b)


class TestDims:
    def test_roundtrip(self):
        for mask in (1, 5, 0b1101, 0b100000):
            assert bm.mask_from_dims(bm.dims_of(mask)) == mask

    def test_dims_sorted(self):
        assert bm.dims_of(0b1011) == [0, 1, 3]

    def test_mask_from_dims_rejects_negative(self):
        with pytest.raises(ValueError):
            bm.mask_from_dims([-1])

    @given(st.sets(st.integers(0, 20)))
    def test_mask_from_dims_roundtrip(self, dims):
        assert set(bm.dims_of(bm.mask_from_dims(sorted(dims)))) == dims


class TestEnumeration:
    def test_all_subspaces_count(self):
        assert len(list(bm.all_subspaces(4))) == 15

    def test_level_counts_binomial(self):
        for d in range(1, 8):
            for level in range(1, d + 1):
                assert len(bm.subspaces_at_level(d, level)) == math.comb(d, level)

    def test_level_popcounts(self):
        for delta in bm.subspaces_at_level(6, 3):
            assert bm.popcount(delta) == 3

    def test_level_sorted_ascending(self):
        masks = bm.subspaces_at_level(8, 4)
        assert masks == sorted(masks)

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            bm.subspaces_at_level(4, 0)
        with pytest.raises(ValueError):
            bm.subspaces_at_level(4, 5)

    def test_levels_top_down_order_and_partition(self):
        seen = []
        levels = []
        for level, masks in bm.levels_top_down(5):
            levels.append(level)
            seen.extend(masks)
        assert levels == [5, 4, 3, 2, 1]
        assert sorted(seen) == list(bm.all_subspaces(5))


class TestSubmasks:
    def test_counts(self):
        assert len(list(bm.submasks(0b111))) == 7
        assert len(list(bm.proper_submasks(0b111))) == 6

    def test_all_are_submasks(self):
        mask = 0b10110
        for sub in bm.submasks(mask):
            assert bm.is_subspace_of(sub, mask)

    def test_empty_mask(self):
        assert list(bm.submasks(0)) == []

    @given(st.integers(1, 1023))
    def test_submask_count_is_2k_minus_1(self, mask):
        assert len(list(bm.submasks(mask))) == 2 ** bm.popcount(mask) - 1


class TestNeighbours:
    def test_immediate_subspaces(self):
        assert sorted(bm.immediate_subspaces(0b110)) == [0b010, 0b100]
        assert bm.immediate_subspaces(0b1) == []

    def test_immediate_superspaces(self):
        assert sorted(bm.immediate_superspaces(0b010, 3)) == [0b011, 0b110]
        assert bm.immediate_superspaces(0b111, 3) == []

    @given(st.integers(1, 255))
    def test_neighbour_levels(self, delta):
        d = 8
        for child in bm.immediate_subspaces(delta):
            assert bm.popcount(child) == bm.popcount(delta) - 1
        for parent in bm.immediate_superspaces(delta, d):
            assert bm.popcount(parent) == bm.popcount(delta) + 1


class TestParseSubspace:
    def test_binary_literal(self):
        assert bm.parse_subspace("0b101", 3) == 0b101
        assert bm.parse_subspace("0B11", 4) == 0b11

    def test_plain_integer(self):
        assert bm.parse_subspace("5", 3) == 5
        assert bm.parse_subspace(" 7 ", 3) == 7  # whitespace tolerated

    def test_dimension_list(self):
        assert bm.parse_subspace("0,2", 3) == 0b101
        assert bm.parse_subspace("1", 3) == 1  # single int, not a dim list
        assert bm.parse_subspace("2,0,2", 3) == 0b101  # duplicates fold

    def test_dimension_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            bm.parse_subspace("0,3", 3)
        with pytest.raises(ValueError, match="out of range"):
            bm.parse_subspace("-1,0", 3)

    def test_mask_out_of_range(self):
        for bad in ("0", "0b0", "8", "0b1000", "-2"):
            with pytest.raises(ValueError, match="out of range"):
                bm.parse_subspace(bad, 3)

    def test_unparsable(self):
        for bad in ("", "banana", "0x5", "1;2", "0b102"):
            with pytest.raises(ValueError, match="cannot parse"):
                bm.parse_subspace(bad, 3)

    @given(st.integers(1, 255))
    def test_roundtrip_all_spellings(self, delta):
        d = 8
        assert bm.parse_subspace(bin(delta), d) == delta
        assert bm.parse_subspace(str(delta), d) == delta
        if bm.popcount(delta) > 1:  # one dim has no comma: reads as a mask
            dims = ",".join(str(i) for i in bm.dims_of(delta))
            assert bm.parse_subspace(dims, d) == delta


class TestMisc:
    def test_format_mask(self):
        assert bm.format_mask(0b101, 5) == "00101"

    def test_lattice_width(self):
        assert bm.lattice_width(4) == 6
        assert bm.lattice_width(12) == math.comb(12, 6)
