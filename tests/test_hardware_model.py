"""Tests for the analytic cost model and device configurations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.config import CPUConfig, GPUConfig, gtx_titan, paper_platform
from repro.hardware.model import (
    CPUContext,
    cpu_task_cost,
    gpu_phase_cost,
    miss_fraction,
)
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile


def typical_counters(scale: int = 1000) -> Counters:
    counters = Counters()
    counters.dominance_tests = 10 * scale
    counters.mask_tests = 30 * scale
    counters.values_loaded = 100 * scale
    counters.sequential_bytes = 800 * scale
    counters.random_bytes = 400 * scale
    counters.pointer_hops = 5 * scale
    return counters


class TestMissFraction:
    def test_resident(self):
        assert miss_fraction(1000, 10_000) < 0.05

    def test_oversized(self):
        assert miss_fraction(20_000, 10_000) == pytest.approx(0.5)
        assert miss_fraction(100_000, 10_000) == pytest.approx(0.9)

    def test_zero_capacity(self):
        assert miss_fraction(1000, 0) == 1.0

    @given(st.floats(1, 1e9), st.floats(1, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, ws, cap):
        assert 0.0 <= miss_fraction(ws, cap) <= 1.0

    @given(st.floats(1, 1e9))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_working_set(self, cap):
        fractions = [miss_fraction(ws, cap) for ws in (cap / 2, cap, 2 * cap, 8 * cap)]
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


class TestCPUTaskCost:
    def test_more_threads_more_misses(self):
        """Shrinking per-thread L3 quota raises L3 misses (the CPI creep)."""
        config = CPUConfig().scaled(250)
        profile = MemoryProfile(data_bytes=100_000, pointer_bytes=80_000)
        counters = typical_counters()
        lone = cpu_task_cost(counters, profile, config, CPUContext(threads=1))
        crowd = cpu_task_cost(counters, profile, config, CPUContext(threads=10))
        assert crowd.l3_misses >= lone.l3_misses
        assert crowd.cycles >= lone.cycles

    def test_shared_pointer_numa_penalty(self):
        """Cross-socket shared pointer structures inflate L3 misses."""
        config = CPUConfig().scaled(250)
        profile = MemoryProfile(pointer_bytes=60_000, shared_pointer_bytes=500_000)
        counters = typical_counters()
        one = cpu_task_cost(
            counters, profile, config,
            CPUContext(threads=10, sockets_used=1, share_pointer_across_tasks=True),
        )
        two = cpu_task_cost(
            counters, profile, config,
            CPUContext(threads=10, sockets_used=2, share_pointer_across_tasks=True),
        )
        assert two.l3_misses > 1.5 * one.l3_misses
        assert two.l3_stall_cycles > one.l3_stall_cycles

    def test_private_structures_benefit_from_second_socket(self):
        """Without sharing, two sockets double the available L3."""
        config = CPUConfig().scaled(250)
        profile = MemoryProfile(data_bytes=400_000, flat_bytes=100_000)
        counters = typical_counters()
        one = cpu_task_cost(counters, profile, config, CPUContext(10, 1))
        two = cpu_task_cost(counters, profile, config, CPUContext(10, 2))
        assert two.l3_misses <= one.l3_misses

    def test_sequential_streams_stall_least(self):
        config = CPUConfig().scaled(250)
        seq = Counters()
        seq.sequential_bytes = 10_000_000
        rand = Counters()
        rand.random_bytes = 10_000_000
        profile = MemoryProfile(data_bytes=1_000_000, flat_bytes=1_000_000)
        context = CPUContext(threads=10)
        seq_cost = cpu_task_cost(seq, profile, config, context)
        rand_cost = cpu_task_cost(rand, profile, config, context)
        assert seq_cost.l3_stall_cycles < rand_cost.l3_stall_cycles

    def test_instructions_preserved(self):
        config = CPUConfig()
        counters = typical_counters()
        cost = cpu_task_cost(counters, MemoryProfile(), config, CPUContext())
        assert cost.instructions == counters.instructions
        assert cost.cycles >= cost.instructions * config.base_cpi

    def test_smt_halves_l2(self):
        config = CPUConfig().scaled(250)
        profile = MemoryProfile(flat_bytes=config.l2_bytes - 256)
        counters = Counters()
        counters.sequential_bytes = 1_000_000
        fits = cpu_task_cost(counters, profile, config, CPUContext(threads=10))
        smt = cpu_task_cost(counters, profile, config, CPUContext(threads=20))
        assert smt.l2_misses > fits.l2_misses


class TestGPUPhaseCost:
    def test_occupancy_starvation(self):
        """Few parallel tasks leave the device underutilised (SDSC on
        small cuboids)."""
        config = GPUConfig().scaled(250)
        counters = typical_counters()
        starved = gpu_phase_cost(counters, config, parallel_tasks=4)
        saturated = gpu_phase_cost(counters, config, parallel_tasks=100_000)
        assert starved.occupancy < saturated.occupancy
        assert starved.cycles > saturated.cycles

    def test_state_limits_residency(self):
        """Big per-point state (high d) throttles MDMC's concurrency."""
        config = GPUConfig()
        counters = typical_counters()
        light = gpu_phase_cost(
            counters, config, parallel_tasks=10_000, state_bytes_per_task=64
        )
        heavy = gpu_phase_cost(
            counters, config, parallel_tasks=10_000,
            state_bytes_per_task=16_384,
        )
        assert heavy.occupancy <= light.occupancy

    def test_divergence_costs_cycles(self):
        config = GPUConfig()
        smooth = typical_counters()
        divergent = typical_counters()
        divergent.branch_divergences = 100_000
        a = gpu_phase_cost(smooth, config, parallel_tasks=1000)
        b = gpu_phase_cost(divergent, config, parallel_tasks=1000)
        assert b.compute_cycles > a.compute_cycles

    def test_coalescing_beats_scatter(self):
        config = GPUConfig()
        coalesced, scattered = Counters(), Counters()
        coalesced.sequential_bytes = 10_000_000
        scattered.random_bytes = 10_000_000
        a = gpu_phase_cost(coalesced, config, parallel_tasks=1000)
        b = gpu_phase_cost(scattered, config, parallel_tasks=1000)
        assert b.memory_cycles > 4 * a.memory_cycles

    def test_titan_slower_on_compute_bound_kernels(self):
        # Kepler's poor sustained issue rate loses on compute-bound
        # kernels (it can still win memory-bound ones: more bandwidth).
        counters = Counters()
        counters.dominance_tests = 10_000_000
        counters.bitmask_ops = 50_000_000
        maxwell = gpu_phase_cost(counters, GPUConfig(), parallel_tasks=10_000)
        kepler = gpu_phase_cost(counters, gtx_titan(), parallel_tasks=10_000)
        assert kepler.seconds > maxwell.seconds


class TestConfigs:
    def test_paper_platform(self):
        platform = paper_platform()
        assert platform.cpu.physical_cores == 20
        assert len(platform.gpus) == 3
        assert len(platform.device_names()) == 5

    def test_scaled_preserves_cores(self):
        scaled = CPUConfig().scaled(250)
        assert scaled.physical_cores == 20
        assert scaled.l3_bytes_per_socket < CPUConfig().l3_bytes_per_socket

    def test_scaled_floors(self):
        tiny = CPUConfig().scaled(1e9)
        assert tiny.l2_bytes >= 2048
        assert tiny.stlb_coverage_bytes >= 4096

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CPUConfig().scaled(0)
        with pytest.raises(ValueError):
            GPUConfig().scaled(-1)

    def test_gpu_derived_properties(self):
        gpu = GPUConfig()
        assert gpu.total_cores == 2048
        assert gpu.max_resident_threads == 32768
        assert gpu.bytes_per_cycle == pytest.approx(224e9 / 1.126e9)
