"""Small unit tests for helpers not covered elsewhere."""

from repro.hardware.simulate import (
    device_parallel_efficiency,
    mdmc_threads_per_point,
)


class TestMDMCBlockSizing:
    def test_grows_with_dimensionality(self):
        """Section 6.2: more shared-memory state per point → more
        threads cooperate on each point."""
        sizes = [mdmc_threads_per_point(d) for d in (4, 8, 12, 16)]
        assert sizes == sorted(sizes)

    def test_warp_floor_and_block_ceiling(self):
        assert mdmc_threads_per_point(4) == 32     # never below a warp
        assert mdmc_threads_per_point(16) == 1024  # max CUDA block

    def test_mid_range(self):
        assert mdmc_threads_per_point(12) == (2**12) // 64


class TestCooperationEfficiency:
    def test_degrades_with_threads(self):
        values = [device_parallel_efficiency(t) for t in (1, 10, 20, 40)]
        assert values == sorted(values, reverse=True)

    def test_bounded(self):
        assert 0.0 < device_parallel_efficiency(1000) <= 1.0
        assert device_parallel_efficiency(1) <= 1.0


class TestSkycubeFacadeMisc:
    def test_to_dict_round_shape(self, flights):
        from repro.core.verify import brute_force_skycube

        cube = brute_force_skycube(flights)
        mapping = cube.to_dict()
        assert len(mapping) == 7
        assert mapping[0b100] == (0,)

    def test_memory_bytes_positive(self, flights):
        from repro.core.verify import brute_force_skycube

        assert brute_force_skycube(flights).memory_bytes() > 0

    def test_repr_mentions_store(self, flights):
        from repro.core.verify import brute_force_skycube

        assert "Lattice" in repr(brute_force_skycube(flights))


class TestResultsDir:
    def test_env_override(self, tmp_path, monkeypatch):
        from repro.experiments.report import results_dir

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "deep"))
        path = results_dir()
        assert path.endswith("deep")
        import os

        assert os.path.isdir(path)
