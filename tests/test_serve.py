"""Tests for the repro.serve subsystem.

Covers, per ISSUE 3: snapshot immutability + atomic swap, the
micro-batcher's coalescing, the service's admission control / load
shedding / deadline propagation, the NDJSON server + blocking client
round-trip, graceful drain, and — the critical one — consistency of
every response with exactly one published snapshot while a
SkycubeMaintainer applies live inserts and deletes underneath.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.core.bitmask import full_space
from repro.data.generator import generate
from repro.engine import fast_skyline
from repro.serve import (
    LiveUpdater,
    MicroBatcher,
    Request,
    ServeClient,
    ServeError,
    ServeMetrics,
    ServingSnapshot,
    SkycubeServer,
    SkycubeService,
    SnapshotHolder,
)
from repro.serve.metrics import LatencyHistogram
from repro.serve.service import request_from_json


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture
def data():
    return generate("independent", 80, 4, seed=11)


@pytest.fixture
def snapshot(data):
    return ServingSnapshot.build(data)


@pytest.fixture
def holder(snapshot):
    return SnapshotHolder(snapshot)


async def started_service(holder, **kwargs):
    service = SkycubeService(holder, **kwargs)
    await service.start()
    return service


# -- snapshot ---------------------------------------------------------


class TestServingSnapshot:
    def test_matches_fast_kernels(self, data, snapshot):
        for delta in (1, 3, 7, full_space(4)):
            expected = tuple(int(i) for i in fast_skyline(data, delta))
            assert snapshot.skyline(delta) == expected

    def test_membership_agrees_with_skyline(self, data, snapshot):
        for delta in (1, 5, full_space(4)):
            members = set(snapshot.skyline(delta))
            for pid in range(len(data)):
                assert snapshot.membership(pid, delta) == (pid in members)

    def test_unknown_point_raises(self, snapshot):
        with pytest.raises(KeyError):
            snapshot.membership(10_000, 1)

    def test_invalid_subspace_raises(self, snapshot):
        with pytest.raises(KeyError):
            snapshot.skyline(0)
        with pytest.raises(KeyError):
            snapshot.skyline(1 << 4)

    def test_partial_cube_adhoc_fallback(self, data):
        partial = ServingSnapshot.build(data, max_level=2)
        full = ServingSnapshot.build(data)
        for delta in (7, full_space(4)):  # above max_level: kernel path
            assert not partial.materialised(delta)
            assert partial.skyline(delta) == full.skyline(delta)
        for pid in partial.skyline(7):
            assert partial.membership(pid, 7)

    def test_data_is_immutable(self, snapshot):
        with pytest.raises(ValueError):
            snapshot.data[0, 0] = -1.0

    def test_topk_dynamic_self_is_closest(self, data, snapshot):
        top = snapshot.topk_dynamic(data[5], k=1)
        assert top == [5]

    def test_from_maintainer_matches_build(self, data):
        from repro.core.maintain import SkycubeMaintainer

        built = ServingSnapshot.build(data)
        frozen = ServingSnapshot.from_maintainer(SkycubeMaintainer(data), 0)
        for delta in range(1, full_space(4) + 1):
            assert frozen.skyline(delta) == built.skyline(delta)


class TestSnapshotHolder:
    def test_publish_swaps_atomically(self, data, holder):
        old = holder.current
        new = ServingSnapshot.build(data[:40], version=old.version + 1)
        holder.publish(new)
        assert holder.current is new

    def test_stale_version_rejected(self, data, holder):
        stale = ServingSnapshot.build(data, version=holder.version)
        with pytest.raises(ValueError):
            holder.publish(stale)

    def test_subscribers_see_every_publish(self, data, holder):
        seen = []
        holder.subscribe(lambda snapshot: seen.append(snapshot.version))
        for version in (1, 2, 3):
            holder.publish(ServingSnapshot.build(data, version=version))
        assert seen == [1, 2, 3]


# -- batcher ----------------------------------------------------------


class TestMicroBatcher:
    def test_coalesces_within_window(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda batch: [value * 2 for value in batch],
                window=0.02, max_batch=64,
            )
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(10))
            )
            await batcher.stop()
            return results, batcher.flushed_sizes

        results, sizes = run(scenario())
        assert results == [i * 2 for i in range(10)]
        assert sizes == [10]  # one flush: all ten coalesced

    def test_max_batch_caps_flush_size(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda batch: list(batch), window=0.02, max_batch=4
            )
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            await batcher.stop()
            return batcher.flushed_sizes

        sizes = run(scenario())
        assert all(size <= 4 for size in sizes)
        assert sum(sizes) == 10

    def test_executor_error_resolves_all_waiters(self):
        async def scenario():
            def boom(batch):
                raise RuntimeError("executor exploded")

            batcher = MicroBatcher(boom, window=0.005, max_batch=8)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(3)),
                return_exceptions=True,
            )
            await batcher.stop()
            return results

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_stop_flushes_stragglers(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda batch: list(batch), window=5.0, max_batch=64
            )
            await batcher.start()
            waiter = asyncio.ensure_future(batcher.submit(42))
            await asyncio.sleep(0.01)
            await batcher.stop()  # must not strand the queued request
            return await waiter

        assert run(scenario()) == 42

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, window=-1)
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, max_batch=0)


# -- service ----------------------------------------------------------


class TestService:
    def test_batch_deduplicates_identical_queries(self, holder):
        async def scenario():
            service = await started_service(
                holder, window=0.02, max_batch=256
            )
            responses = await asyncio.gather(
                *(service.submit(Request(op="skyline", delta=3))
                  for _ in range(50))
            )
            await service.stop()
            return responses, service.metrics

        responses, metrics = run(scenario())
        expected = list(holder.current.skyline(3))
        assert all(r.ok and r.result == expected for r in responses)
        # 50 concurrent identical queries should land in very few
        # batches, not 50 singletons.
        assert metrics.batches <= 3
        assert metrics.max_batch_size >= 25

    def test_load_shedding_is_typed_and_bounded(self, holder):
        async def scenario():
            service = await started_service(
                holder, window=0.2, max_batch=512, max_pending=8
            )
            responses = await asyncio.gather(
                *(service.submit(Request(op="skyline", delta=1))
                  for _ in range(64))
            )
            await service.stop()
            return responses, service.metrics

        responses, metrics = run(scenario())
        ok = [r for r in responses if r.ok]
        shed = [r for r in responses if r.error == "Overloaded"]
        assert len(ok) + len(shed) == 64
        assert len(shed) >= 1
        # Every shed response carries its taxonomy class for the trace.
        assert all(r.failure_class == "Shed" for r in shed)
        assert metrics.shed == len(shed)
        # The bounded queue never exceeded its configured bound.
        assert metrics.peak_queue_depth <= 8

    def test_deadline_propagation(self, holder):
        async def scenario():
            service = await started_service(holder, window=0.05)
            loop = asyncio.get_running_loop()
            expired = service.submit(
                Request(op="skyline", delta=1,
                        deadline=loop.time() + 0.001)
            )
            generous = service.submit(
                Request(op="skyline", delta=1,
                        deadline=loop.time() + 30.0)
            )
            results = await asyncio.gather(expired, generous)
            await service.stop()
            return results

        expired, generous = run(scenario())
        assert expired.error == "DeadlineExceeded"
        assert expired.failure_class == "DeadlineExceeded"
        assert generous.ok
        assert generous.failure_class is None

    def test_metrics_and_ping_ops(self, holder):
        async def scenario():
            service = await started_service(holder, window=0.0)
            await service.submit(Request(op="skyline", delta=1))
            ping = await service.submit(Request(op="ping"))
            metrics = await service.submit(Request(op="metrics"))
            await service.stop()
            return ping, metrics

        ping, metrics = run(scenario())
        assert ping.result == {"d": 4, "n": 80}
        assert metrics.result["requests"]["skyline"] == 1
        assert "p99_ms" in metrics.result["latency"]["skyline"]

    def test_updates_disabled_without_updater(self, holder):
        async def scenario():
            service = await started_service(holder, window=0.0)
            response = await service.submit(
                Request(op="insert", point=(0.0, 0.0, 0.0, 0.0))
            )
            await service.stop()
            return response

        assert run(scenario()).error == "BadRequest"

    def test_counters_integration(self, holder):
        async def scenario():
            metrics = ServeMetrics()
            service = await started_service(
                holder, window=0.0, metrics=metrics
            )
            await service.submit(Request(op="skyline", delta=1))
            await service.stop()
            return metrics

        metrics = run(scenario())
        assert metrics.counters.extra["serve.requests"] == 1
        assert metrics.counters.extra["serve.requests.skyline"] == 1
        assert "serve.requests" in metrics.counters.as_dict()


class TestRequestDecoding:
    def test_delta_forms(self):
        for raw in ("0b101", "5", 5, "0,2"):
            request = request_from_json(
                {"op": "skyline", "delta": raw}, d=4, now=0.0
            )
            assert request.delta == 5

    def test_bad_requests_raise(self):
        bad = [
            {"op": "nope"},
            {"op": "skyline"},  # missing delta
            {"op": "skyline", "delta": "0b0"},
            {"op": "skyline", "delta": 1 << 9},
            {"op": "membership", "delta": 1},  # missing point_id
            {"op": "membership", "delta": 1, "point_id": "x"},
            {"op": "topk_dynamic"},  # missing q
            {"op": "topk_dynamic", "q": [1.0]},  # wrong arity
            {"op": "topk_dynamic", "q": [1.0] * 4, "k": 0},
            {"op": "skyline", "delta": 1, "timeout_ms": -5},
            {"op": "insert"},  # missing point
            "not a dict",
        ]
        for obj in bad:
            with pytest.raises(ValueError):
                request_from_json(obj, d=4, now=0.0)

    def test_hyphenated_op_accepted(self):
        request = request_from_json(
            {"op": "topk-dynamic", "q": [0.0] * 4}, d=4, now=0.0
        )
        assert request.op == "topk_dynamic"

    def test_timeout_becomes_absolute_deadline(self):
        request = request_from_json(
            {"op": "skyline", "delta": 1, "timeout_ms": 250}, d=4, now=100.0
        )
        assert request.deadline == pytest.approx(100.25)


# -- metrics ----------------------------------------------------------


class TestLatencyHistogram:
    def test_percentiles_are_monotone_bounds(self):
        histogram = LatencyHistogram()
        for ms in (1, 1, 1, 1, 1, 1, 1, 1, 1, 500):
            histogram.record(ms / 1000.0)
        assert histogram.total == 10
        assert histogram.percentile(0.5) <= histogram.percentile(0.99)
        assert histogram.percentile(0.99) >= 0.4  # the straggler shows

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.99) == 0.0
        assert histogram.mean == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(0.0)


# -- server + client round trip ---------------------------------------


class TestServerRoundTrip:
    def test_client_queries_over_tcp(self, data, holder):
        async def scenario():
            service = await started_service(holder, window=0.002)
            server = SkycubeServer(service, port=0)
            await server.start()
            host, port = server.address

            def client_work():
                with ServeClient(host, port) as client:
                    info = client.ping()
                    skyline = client.skyline("0b011")
                    member = client.membership(skyline[0], "0b011")
                    topk = client.topk_dynamic(list(data[0]), k=3)
                    metrics = client.metrics()
                    with pytest.raises(ServeError) as err:
                        client.membership(99_999, 1)
                    return info, skyline, member, topk, metrics, err.value

            result = await asyncio.to_thread(client_work)
            server.request_shutdown()
            await server.serve_until_shutdown()
            return result

        info, skyline, member, topk, metrics, not_found = run(scenario())
        assert info == {"d": 4, "n": 80}
        assert skyline == list(holder.current.skyline(3))
        assert member is True
        assert topk[0] == 0
        assert metrics["requests"]["skyline"] == 1
        assert not_found.error_type == "NotFound"

    def test_malformed_lines_get_typed_bad_request(self, holder):
        async def scenario():
            service = await started_service(holder, window=0.0)
            server = SkycubeServer(service, port=0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            writer.write(json.dumps({"id": 9, "op": "warp"}).encode() + b"\n")
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.request_shutdown()
            await server.serve_until_shutdown()
            return first, second

        responses = run(scenario())
        # Responses on one connection may reorder; match by echoed id.
        by_id = {response["id"]: response for response in responses}
        assert set(by_id) == {None, 9}
        for response in responses:
            assert response["ok"] is False
            assert response["error"]["type"] == "BadRequest"

    def test_graceful_drain_finishes_inflight(self, holder):
        async def scenario():
            service = await started_service(
                holder, window=0.05, max_batch=512
            )
            server = SkycubeServer(service, port=0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps({"id": 1, "op": "skyline", "delta": 3}).encode()
                + b"\n"
            )
            await writer.drain()
            await asyncio.sleep(0.01)  # request parked in the window
            server.request_shutdown()
            await server.serve_until_shutdown()
            # The in-flight response was written before the close.
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

        response = run(scenario())
        assert response["ok"] is True
        assert response["id"] == 1


# -- live updates under serving (the torn-read test) -------------------


class TestLiveUpdateConsistency:
    def test_responses_match_exactly_one_snapshot(self):
        """Interleave queries with maintainer inserts/deletes.

        Every published snapshot is retained; each response must equal
        the answer of the snapshot whose version it reports — i.e. a
        response reflects exactly the pre- or post-update state, never
        a torn mix.
        """
        data = generate("anticorrelated", 50, 3, seed=5)
        rng = np.random.default_rng(7)
        deltas = list(range(1, full_space(3) + 1))

        async def scenario():
            updater, holder = LiveUpdater.bootstrap(data)
            snapshots = {holder.current.version: holder.current}
            holder.subscribe(
                lambda snapshot: snapshots.setdefault(
                    snapshot.version, snapshot
                )
            )
            service = SkycubeService(
                holder, window=0.002, max_batch=64, max_pending=512,
                updater=updater,
            )
            await service.start()
            server = SkycubeServer(service, port=0)
            await server.start()
            host, port = server.address

            stop = threading.Event()
            checked = {"queries": 0}
            failures = []

            def retained(version):
                # publish() swaps the reference *before* firing the
                # subscriber, so a response can briefly cite a version
                # the dict has not recorded yet — wait it out.
                import time as _time

                for _ in range(1000):
                    snapshot = snapshots.get(version)
                    if snapshot is not None:
                        return snapshot
                    _time.sleep(0.001)
                raise AssertionError(f"version {version} never published")

            def querier(seed):
                generator = np.random.default_rng(seed)
                with ServeClient(host, port) as client:
                    while not stop.is_set():
                        delta = int(generator.choice(deltas))
                        response = client.request("skyline", delta=delta)
                        snapshot = retained(response["snapshot_version"])
                        got = list(response["result"])
                        want = list(snapshot.skyline(delta))
                        if got != want:
                            failures.append(
                                (snapshot.version, delta, got, want)
                            )
                        # Membership must agree with whichever snapshot
                        # answered it (the point may be deleted by then:
                        # a typed NotFound is the one acceptable miss).
                        if want:
                            pid = int(generator.choice(want))
                            try:
                                member = client.request(
                                    "membership", point_id=pid, delta=delta
                                )
                            except ServeError as error:
                                if error.error_type != "NotFound":
                                    failures.append(
                                        ("member-error", delta, pid,
                                         error.error_type)
                                    )
                            else:
                                at = retained(member["snapshot_version"])
                                if member["result"] != at.membership(
                                    pid, delta
                                ):
                                    failures.append(
                                        (at.version, delta, pid,
                                         member["result"])
                                    )
                        checked["queries"] += 1

            def mutator():
                import time as _time

                with ServeClient(host, port) as client:
                    inserted = []
                    for step in range(12):
                        if inserted and step % 3 == 2:
                            client.delete(inserted.pop(0))
                        else:
                            point = rng.random(3).tolist()
                            inserted.append(client.insert(point))
                        _time.sleep(0.003)  # let queries interleave

            query_threads = [
                threading.Thread(target=querier, args=(seed,))
                for seed in (101, 202)
            ]
            for thread in query_threads:
                thread.start()
            try:
                await asyncio.to_thread(mutator)
                await asyncio.sleep(0.05)
            finally:
                stop.set()
                for thread in query_threads:
                    await asyncio.to_thread(thread.join)
            server.request_shutdown()
            await server.serve_until_shutdown()
            return snapshots, checked["queries"], failures

        snapshots, queries, failures = run(scenario())
        assert failures == [], failures[:5]
        assert len(snapshots) == 13  # initial + 12 updates, all published
        assert queries >= 10  # the queriers really ran during updates


class TestSkylineDiffOp:
    def test_diff_over_wire_matches_endpoint_snapshots(self):
        data = generate("anticorrelated", 40, 3, seed=13)

        async def scenario():
            updater, holder = LiveUpdater.bootstrap(data)
            snapshots = {0: holder.current}
            holder.subscribe(
                lambda snapshot: snapshots.setdefault(
                    snapshot.version, snapshot
                )
            )
            service = SkycubeService(holder, window=0.0, updater=updater)
            await service.start()
            server = SkycubeServer(service, port=0)
            await server.start()
            host, port = server.address

            def client_work():
                with ServeClient(host, port) as client:
                    pid = client.insert([0.0, 0.0, 0.0])  # v1: dominator
                    delete_version = client.delete(pid)  # v2: back out
                    raw = client.request(
                        "skyline_diff", delta=7,
                        **{"from": 0, "to": 1},
                    )
                    round_trip = client.skyline_diff(7, 0, 2)
                    with pytest.raises(ServeError) as err:
                        client.skyline_diff(7, 2, 1)
                    return pid, delete_version, raw, round_trip, err.value

            result = await asyncio.to_thread(client_work)
            server.request_shutdown()
            await server.serve_until_shutdown()
            return snapshots, result

        snapshots, (pid, delete_version, raw, round_trip, bad) = run(
            scenario()
        )
        assert delete_version == 2
        assert raw["snapshot_version"] == 2
        assert raw["result"]["from"] == 0 and raw["result"]["to"] == 1
        # v0 -> v1: the all-zero dominator entered, everyone else left.
        before = set(snapshots[0].skyline(7))
        after = set(snapshots[1].skyline(7))
        assert raw["result"]["entered"] == sorted(after - before) == [pid]
        assert raw["result"]["left"] == sorted(before - after)
        # v0 -> v2 composes back to no net movement.
        assert round_trip == {"entered": [], "left": []}
        assert bad.error_type == "BadRequest"
        assert "from < to" in bad.message

    def test_diff_without_updater_is_typed_bad_request(self, holder):
        async def scenario():
            service = await started_service(holder, window=0.0)
            response = await service.submit(
                Request(op="skyline_diff", delta=1, v_from=0, v_to=1)
            )
            await service.stop()
            return response

        response = run(scenario())
        assert response.error == "BadRequest"
        assert "changelog" in response.message

    def test_wire_decoding(self):
        request = request_from_json(
            {"op": "skyline_diff", "delta": "0b11", "from": 2, "to": 5},
            d=4, now=0.0,
        )
        assert (request.delta, request.v_from, request.v_to) == (3, 2, 5)
        # The version window is part of the coalescing key.
        other = request_from_json(
            {"op": "skyline_diff", "delta": "0b11", "from": 2, "to": 6},
            d=4, now=0.0,
        )
        assert request.key() != other.key()
        bad = [
            {"op": "skyline_diff"},  # missing everything
            {"op": "skyline_diff", "delta": 3},  # missing the window
            {"op": "skyline_diff", "delta": 3, "from": 0},  # half a window
            {"op": "skyline_diff", "delta": 3, "from": "v0", "to": 1},
            {"op": "skyline_diff", "delta": 3, "from": -1, "to": 1},
            {"op": "skyline_diff", "delta": 3, "from": True, "to": 2},
        ]
        for obj in bad:
            with pytest.raises(ValueError):
                request_from_json(obj, d=4, now=0.0)
