"""Tests for synthetic generators, real stand-ins and dataset I/O."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generator import anticorrelated, correlated, generate, independent
from repro.data.io import load_dataset, save_dataset
from repro.data.realistic import REAL_DATASETS, dataset_summary, load_real


class TestGenerator:
    def test_shapes_and_ranges(self):
        for dist in ("independent", "correlated", "anticorrelated"):
            data = generate(dist, 200, 5, seed=1)
            assert data.shape == (200, 5)
            assert np.all(data >= 0.0) and np.all(data <= 1.0)
            assert not np.any(np.isnan(data))

    def test_deterministic(self):
        a = generate("independent", 100, 4, seed=3)
        b = generate("independent", 100, 4, seed=3)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = generate("independent", 100, 4, seed=3)
        b = generate("independent", 100, 4, seed=4)
        assert not np.array_equal(a, b)

    def test_single_letter_aliases(self):
        assert np.array_equal(
            generate("A", 50, 3, seed=1), generate("anticorrelated", 50, 3, seed=1)
        )
        assert np.array_equal(
            generate("i", 50, 3, seed=1), generate("independent", 50, 3, seed=1)
        )

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate("zipfian", 10, 2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate("independent", 0, 3)
        with pytest.raises(ValueError):
            generate("independent", 10, 0)

    def test_correlation_signs(self):
        """The distributions must actually correlate as named."""
        corr = correlated(3000, 2, seed=5)
        anti = anticorrelated(3000, 2, seed=5)
        indep = independent(3000, 2, seed=5)
        assert np.corrcoef(corr[:, 0], corr[:, 1])[0, 1] > 0.5
        assert np.corrcoef(anti[:, 0], anti[:, 1])[0, 1] < -0.2
        assert abs(np.corrcoef(indep[:, 0], indep[:, 1])[0, 1]) < 0.1

    def test_skyline_size_ordering(self):
        """Anticorrelated skylines dwarf correlated ones (the premise
        of every workload figure)."""
        from repro.core.skyline import skyline_indices

        sizes = {}
        for dist in ("anticorrelated", "independent", "correlated"):
            data = generate(dist, 400, 5, seed=2)
            sizes[dist] = len(skyline_indices(data))
        assert sizes["anticorrelated"] > sizes["independent"] > sizes["correlated"]

    def test_distinct_values_quantisation(self):
        data = generate("independent", 500, 3, seed=1, distinct_values=4)
        for column in data.T:
            assert len(np.unique(column)) <= 4

    def test_distinct_values_bounds(self):
        with pytest.raises(ValueError):
            generate("independent", 10, 2, distinct_values=1)

    @given(st.integers(1, 200), st.integers(1, 8), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_any_size_valid(self, n, d, seed):
        data = generate("anticorrelated", n, d, seed=seed)
        assert data.shape == (n, d)
        assert np.all((data >= 0) & (data <= 1))


class TestRealStandIns:
    def test_registry(self):
        assert set(REAL_DATASETS) == {"NBA", "HH", "CT", "WE"}

    def test_dimensions_match_table2(self):
        for name, d in (("NBA", 8), ("HH", 6), ("CT", 10), ("WE", 15)):
            data = load_real(name, scale=0.005)
            assert data.shape[1] == d

    def test_scaled_sizes(self):
        data = load_real("NBA", scale=0.1)
        assert abs(data.shape[0] - 1726) <= 1

    def test_minimum_size_floor(self):
        assert load_real("NBA", scale=1e-9).shape[0] == 64

    def test_deterministic(self):
        assert np.array_equal(
            load_real("CT", scale=0.001, seed=2), load_real("CT", scale=0.001, seed=2)
        )

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_real("IMDB")

    def test_extended_skyline_structure(self):
        """The structural property each stand-in exists to reproduce."""
        summaries = {
            name: dataset_summary(name, scale=scale)
            for name, scale in (
                ("NBA", 0.02), ("HH", 0.005), ("CT", 0.001), ("WE", 0.001)
            )
        }
        assert summaries["NBA"]["extended_fraction"] < 0.3
        assert summaries["HH"]["extended_fraction"] < 0.2
        assert summaries["CT"]["extended_fraction"] > 0.5
        assert 0.03 < summaries["WE"]["extended_fraction"] < 0.7

    def test_ct_low_cardinality(self):
        """CT's duplicate-heavy attributes (max 192 distinct values)."""
        data = load_real("CT", scale=0.002)
        for column in data.T:
            assert len(np.unique(column)) <= 192

    def test_values_in_unit_range(self):
        for name in REAL_DATASETS:
            data = load_real(name, scale=0.003)
            assert np.all((data >= 0) & (data <= 1))
            assert not np.any(np.isnan(data))


class TestIO:
    def test_text_roundtrip(self, tmp_path):
        data = generate("independent", 30, 4, seed=1)
        path = tmp_path / "points.txt"
        save_dataset(data, path)
        loaded = load_dataset(path)
        assert np.allclose(loaded, data)

    def test_npy_roundtrip(self, tmp_path):
        data = generate("correlated", 30, 4, seed=1)
        path = tmp_path / "points.npy"
        save_dataset(data, path)
        assert np.array_equal(load_dataset(path), data)

    def test_single_point_text(self, tmp_path):
        data = np.array([[0.5, 0.25]])
        path = tmp_path / "one.txt"
        save_dataset(data, path)
        assert load_dataset(path).shape == (1, 2)

    def test_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            save_dataset(np.array([1.0, 2.0]), tmp_path / "bad.txt")

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.npy"
        np.save(path, np.empty((0, 3)))
        with pytest.raises(ValueError):
            load_dataset(path)
