"""Tests for the level-ordered HashCube (Appendix A.2 future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmask import all_subspaces
from repro.core.hashcube import HashCube
from repro.core.verify import brute_force_skycube
from repro.data.generator import generate
from repro.templates import MDMC


class TestLevelOrder:
    def test_queries_identical_to_numeric(self, workload):
        lattice = brute_force_skycube(workload).as_lattice()
        numeric = HashCube.from_lattice(lattice, word_width=8)
        level = HashCube.from_lattice(lattice, word_width=8, bit_order="level")
        for delta in all_subspaces(workload.shape[1]):
            assert numeric.skyline(delta) == level.skyline(delta)

    def test_membership_mask_roundtrip(self, workload):
        from repro.core.verify import brute_force_membership_masks

        masks = brute_force_membership_masks(workload)
        cube = HashCube(workload.shape[1], word_width=8, bit_order="level")
        for pid, mask in masks.items():
            cube.insert(pid, mask)
        for pid, mask in masks.items():
            assert cube.membership_mask(pid) == mask

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            HashCube(3, bit_order="chaotic")

    @given(
        st.lists(st.integers(0, 2**7 - 1), min_size=1, max_size=10),
        st.sampled_from([2, 4, 7, 8]),
    )
    @settings(deadline=None)
    def test_any_masks_roundtrip(self, masks, width):
        cube = HashCube(3, word_width=width, bit_order="level")
        for pid, mask in enumerate(masks):
            cube.insert(pid, mask)
        for pid, mask in enumerate(masks):
            assert cube.membership_mask(pid) == mask

    def test_partial_skycube_compression_gain(self):
        """The point of the reorganisation: a partial skycube's all-set
        upper-level bits cluster into whole (omitted) words."""
        data = generate("independent", 200, 6, seed=17)
        run = MDMC("cpu", word_width=8).materialise(data, max_level=3)
        numeric_store = run.skycube.store
        # Rebuild the same masks into a level-ordered cube.
        level_cube = HashCube(6, word_width=8, bit_order="level")
        for pid in numeric_store.point_ids():
            level_cube.insert(pid, numeric_store.membership_mask(pid))
        for delta in run.skycube.subspaces():
            assert level_cube.skyline(delta) == run.skycube.skyline(delta)
        assert level_cube.total_ids_stored() < numeric_store.total_ids_stored(), (
            f"level order should omit the all-set upper-level words: "
            f"{level_cube.total_ids_stored()} vs "
            f"{numeric_store.total_ids_stored()}"
        )

    def test_full_skycube_no_worse_storage_profile(self):
        data = generate("independent", 150, 5, seed=3)
        lattice = brute_force_skycube(data).as_lattice()
        numeric = HashCube.from_lattice(lattice, word_width=8)
        level = HashCube.from_lattice(lattice, word_width=8, bit_order="level")
        # Same ids, same omission opportunities overall — storage stays
        # within a small factor either way on full cubes.
        assert level.total_ids_stored() <= 2 * numeric.total_ids_stored()


class TestMDMCIntegration:
    def test_mdmc_with_level_ordered_output(self):
        """MDMC can target a level-ordered HashCube directly."""
        data = generate("anticorrelated", 120, 4, seed=9)
        oracle = brute_force_skycube(data)
        run = MDMC("cpu", word_width=4, bit_order="level").materialise(data)
        assert run.skycube == oracle
