PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint skylint skylint-baseline skylint-sarif skylint-timing \
	typecheck test coverage chaos bench-smoke \
	bench-filtered serve-smoke trace-smoke shard-smoke live-smoke \
	jit-smoke

# Single entry point: ruff (when installed) + the repo-native skylint
# pass.  Mirrors the CI lint gates.
lint: skylint
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		$(PYTHON) -m ruff check . || exit 1; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi

# Incremental by default: unchanged files (and unchanged dependency
# closures, for the call-graph rules) replay cached findings.  Stale
# allowlist entries fail the run so suppressions never fossilise.
skylint:
	$(PYTHON) -m repro.analysis src/repro \
		--cache-dir .skylint_cache --fail-on-stale-allowlist

# Adopt-the-linter workflow: record today's findings, then gate only
# on new ones (see docs/ANALYSIS.md, "Baselines").
skylint-baseline:
	$(PYTHON) -m repro.analysis src/repro \
		--write-baseline skylint-baseline.json

# SARIF 2.1.0 for GitHub code scanning (uploaded by the CI job).
skylint-sarif:
	$(PYTHON) -m repro.analysis src/repro \
		--cache-dir .skylint_cache --format sarif > skylint.sarif

# Cold-vs-warm timing gate; writes results/skylint_timing.txt and
# requires the warm full run < 5 s and >= 5x faster than cold.
skylint-timing:
	$(PYTHON) benchmarks/bench_skylint_timing.py

typecheck:
	$(PYTHON) -m mypy -p repro.core -p repro.templates -p repro.engine \
		-p repro.analysis -p repro.serve -p repro.trace -p repro.config \
		-p repro.shard -m repro.skyline.accelerated

# Accelerated-backend smoke (mirrors the CI jit-smoke job; needs the
# accel extra: pip install -e .[test,accel]).  Strict numba selection —
# an unavailable backend FAILS rather than falling back — plus the
# backend-parity oracle suite and the packed bench with the jit row
# pinned to numba (bit-identity is asserted before any timing; the 2x
# speedup floor applies only at full size, not at --quick).
jit-smoke:
	$(PYTHON) -m repro backends
	$(PYTHON) -m pytest tests/test_kernel_backends.py -q
	$(PYTHON) -m pytest benchmarks/bench_kernels_packed.py \
		-q --quick --backend numba --benchmark-disable

test:
	$(PYTHON) -m pytest -x -q

# Coverage gate over the serving stack (mirrors the CI coverage job):
# serve/trace/config/shard must stay >=85% line-covered by tests/.
coverage:
	$(PYTHON) -m pytest tests -q \
		--cov=repro.serve --cov=repro.trace --cov=repro.config \
		--cov=repro.shard \
		--cov-report=term-missing --cov-fail-under=85

# Worker-kill chaos tests (skipped by plain `make test`): SIGKILL a
# pool worker mid-batch, require retry/serial recovery, a WorkerDeath
# trace event, and bit-identical results.
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -q --executor process

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_headline.py \
		benchmarks/bench_parallel_scaling.py \
		benchmarks/bench_kernels_packed.py \
		benchmarks/bench_filtered_packed.py \
		-q --quick --executor process --benchmark-disable

# Full-size filtered-vs-packed acceptance run (writes
# results/filtered_packed.txt; several minutes).
bench-filtered:
	$(PYTHON) -m pytest benchmarks/bench_filtered_packed.py \
		-q --benchmark-disable

# End-to-end serving smoke: real server process, real TCP, 500 mixed
# queries, live updates, clean SIGTERM drain (see benchmarks/serve_smoke.py).
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py

# Same smoke with the jsonl tracer on, then gate the trace on the
# failure taxonomy (mirrors the CI trace-smoke job).
trace-smoke:
	$(PYTHON) benchmarks/serve_smoke.py --trace trace-smoke.jsonl
	$(PYTHON) -m repro trace analyze trace-smoke.jsonl \
		--fail-on InternalError,unclassified

# Live write-path smoke: serve --live as a real subprocess, one
# mutator + two reader threads over TCP, delta publishes crossing
# compaction boundaries, skyline_diff cancellation, SIGTERM drain,
# then the failure-taxonomy gate over the trace (mirrors the CI
# live-smoke job; see benchmarks/live_smoke.py and docs/LIVE_UPDATES.md).
live-smoke:
	$(PYTHON) benchmarks/live_smoke.py --trace live-smoke.jsonl
	$(PYTHON) -m repro trace analyze live-smoke.jsonl \
		--fail-on InternalError,unclassified

# Sharded-tier smoke: serve --shards 2 as a real subprocess over TCP,
# bit-identical answers, SIGTERM drain, trace analyze over the
# stitched fan-out (mirrors the CI shard-smoke job).
shard-smoke:
	$(PYTHON) benchmarks/shard_smoke.py
