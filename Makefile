PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint skylint typecheck test bench-smoke bench-filtered serve-smoke

# Single entry point: ruff (when installed) + the repo-native skylint
# pass.  Mirrors the CI lint gates.
lint: skylint
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		$(PYTHON) -m ruff check . || exit 1; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi

skylint:
	$(PYTHON) -m repro.analysis src/repro

typecheck:
	$(PYTHON) -m mypy -p repro.core -p repro.templates -p repro.engine -p repro.analysis

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_headline.py \
		benchmarks/bench_parallel_scaling.py \
		benchmarks/bench_kernels_packed.py \
		benchmarks/bench_filtered_packed.py \
		-q --quick --executor process --benchmark-disable

# Full-size filtered-vs-packed acceptance run (writes
# results/filtered_packed.txt; several minutes).
bench-filtered:
	$(PYTHON) -m pytest benchmarks/bench_filtered_packed.py \
		-q --benchmark-disable

# End-to-end serving smoke: real server process, real TCP, 500 mixed
# queries, live updates, clean SIGTERM drain (see benchmarks/serve_smoke.py).
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py
