#!/usr/bin/env python3
"""NBA all-rounders: skycube analytics on the basketball stand-in.

The NBA dataset is the classic skyline benchmark (Appendix A.1): the
skyline surfaces players who excel on *some* trade-off of statistics —
including the well-rounded ones a per-stat ranking misses.  This
example materialises the skycube of the stand-in dataset, then mines
it: in how many subspaces does each player appear, and who are the
most "robust" all-stars?  It also cross-checks two independent
algorithms against each other.

Run:  python examples/nba_allstars.py
"""

from collections import Counter as TallyCounter

import numpy as np

from repro.core.bitmask import popcount
from repro.data.realistic import load_real
from repro.skycube import QSkycube
from repro.templates import MDMC

STATS = [
    "points", "rebounds", "assists", "minutes", "field goals",
    "blocks", "steals", "3pt%",
]


def main() -> None:
    players = load_real("NBA", scale=0.02, seed=42)
    n, d = players.shape
    print(f"Player seasons: {n}, statistics: {d} {STATS}")

    # Materialise with the point-based template...
    run = MDMC("cpu").materialise(players)
    cube = run.skycube
    # ...and verify against the sequential state of the art.
    reference = QSkycube().materialise(players).skycube
    assert cube == reference, "algorithms disagree!"
    print("MDMC result verified against QSkycube: identical skycube")

    # Robustness mining: count subspace-skyline memberships per player.
    memberships: TallyCounter = TallyCounter()
    for delta in cube.subspaces():
        for player in cube.skyline(delta):
            memberships[player] += 1
    total = 2**d - 1

    print(f"\nMost robust all-stars (skyline memberships of {total} "
          "subspaces):")
    for player, count in memberships.most_common(5):
        row = players[player]
        top_stats = np.argsort(row)[:3]  # smaller is better (inverted)
        strengths = ", ".join(STATS[i] for i in top_stats)
        print(f"  player {player:4d}: {count:3d} subspaces "
              f"({100 * count / total:4.1f}%)  strengths: {strengths}")

    # A "specialist" appears only in subspaces containing their stat;
    # count how many skyline players the full-space skyline misses if
    # users only ever look at pairs of statistics.
    pair_players = set()
    for delta in cube.subspaces():
        if popcount(delta) == 2:
            pair_players.update(cube.skyline(delta))
    full_players = set(cube.skyline((1 << d) - 1))
    print(f"\nFull-space skyline: {len(full_players)} players")
    print(f"Union of all 2-stat skylines: {len(pair_players)} players")
    print(f"  -> {len(full_players - pair_players)} full-space skyline "
          "players never show up in any 2-criteria view")

    lattice = cube.as_lattice()
    hashcube = cube.as_hashcube()
    print(f"\nHashCube stores {hashcube.total_ids_stored()} ids vs "
          f"{lattice.total_ids_stored()} in the lattice "
          f"({hashcube.compression_ratio_vs(lattice):.1f}x compression)")


if __name__ == "__main__":
    main()
