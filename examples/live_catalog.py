#!/usr/bin/env python3
"""Live catalog: online skycube maintenance + skycube analytics.

A product catalog (price, shipping days, return rate, defect rate)
receives inserts and removals while analysts keep asking subspace
skyline questions.  The :class:`SkycubeMaintainer` keeps every
subspace skyline exact across updates; the analytics module then mines
the materialised cube (robustness ranking, minimal subspaces), and a
shopper's "ideal product" question is answered with a dynamic skyline.

Run:  python examples/live_catalog.py
"""

import numpy as np

from repro import SkycubeMaintainer, minimal_subspaces, most_robust_points
from repro.core.bitmask import dims_of
from repro.query import dynamic_skyline

ATTRIBUTES = ["price", "shipping", "returns", "defects"]


def describe(delta: int) -> str:
    return "{" + ", ".join(ATTRIBUTES[i] for i in dims_of(delta)) + "}"


def main() -> None:
    rng = np.random.default_rng(11)
    initial = rng.random((300, 4))
    maintainer = SkycubeMaintainer(initial)
    print(f"Catalog bootstrapped with {len(maintainer)} products")
    print(f"Skyline on {describe(0b0011)}: "
          f"{len(maintainer.skyline(0b0011))} products\n")

    # --- a day of updates --------------------------------------------
    print("Processing 50 new listings and 30 delistings...")
    inserted = [maintainer.insert(rng.random(4)) for _ in range(50)]
    live_before = len(maintainer)
    for victim in rng.choice(300, 30, replace=False):
        maintainer.delete(int(victim))
    print(f"  catalog: {live_before} -> {len(maintainer)} products")
    print(f"  update work: {maintainer.counters.dominance_tests} "
          "dominance tests total\n")

    # A "category killer" appears: cheap, fast, reliable.
    killer = maintainer.insert([0.01, 0.01, 0.01, 0.01])
    sky = maintainer.skyline(0b1111)
    print(f"Category killer listed as #{killer}: full skyline collapses "
          f"to {len(sky)} product(s): {sky}")
    maintainer.delete(killer)
    print(f"...and recovers to {len(maintainer.skyline(0b1111))} after "
          "delisting\n")

    # --- analytics on the materialised cube ---------------------------
    cube = maintainer.skycube()
    print("Most robust products (subspace-skyline memberships of 15):")
    for product, count in most_robust_points(cube, k=3):
        print(f"  product {product:4d}: {count:2d} subspaces")

    champion = most_robust_points(cube, k=1)[0][0]
    minimal = minimal_subspaces(cube, point_id=champion)[champion]
    print(f"\nWhy product {champion} matters — its minimal subspaces:")
    for delta in minimal:
        print(f"  undominated already in {describe(delta)}")

    # --- a shopper with an ideal product in mind ----------------------
    rows = np.array(list(maintainer.points().values()))
    ideal = np.array([0.2, 0.3, 0.1, 0.1])
    closest = dynamic_skyline(rows, ideal)
    print(f"\nShopper's ideal {ideal.tolist()}: {len(closest)} products "
          "are undominated in per-attribute distance to it")


if __name__ == "__main__":
    main()
