#!/usr/bin/env python3
"""Quickstart: the paper's flight example (Table 1 / Figure 1), end to end.

Builds the skycube of five flights, queries subspace skylines for
different traveller profiles, and shows both materialised
representations (lattice and HashCube) side by side.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.bitmask import all_subspaces, dims_of, format_mask
from repro.core.hashcube import HashCube
from repro.engine import fast_skyline
from repro.templates import MDMC

# Table 1, with smaller-is-better semantics.  Dimension order matches
# the paper's bitmask examples: bit 0 = arrival, bit 1 = duration,
# bit 2 = price.
DIMENSIONS = ["arrival", "duration", "price"]
FLIGHTS = np.array(
    [
        # arrival (h), duration (h), price ($)
        [12.20, 17.0, 120.0],  # f0
        [9.00, 12.0, 148.0],  # f1
        [8.20, 13.0, 169.0],  # f2
        [21.25, 3.0, 186.0],  # f3
        [21.25, 5.0, 196.0],  # f4
    ]
)


def describe(delta: int) -> str:
    names = [DIMENSIONS[i] for i in dims_of(delta)]
    return "{" + ", ".join(names) + "}"


def main() -> None:
    print("Flights (arrival, duration, price):")
    for i, row in enumerate(FLIGHTS):
        print(f"  f{i}: arrives {row[0]:5.2f}, {row[1]:4.1f} h, ${row[2]:.0f}")

    # --- a single skyline query --------------------------------------
    full = 0b111
    skyline = fast_skyline(FLIGHTS, full)
    print(f"\nSkyline over {describe(full)}: "
          f"{', '.join(f'f{i}' for i in skyline)}")
    print("  (f4 is dominated by f3: pricier, longer, no earlier)")

    # --- the whole skycube, via the MDMC template ---------------------
    run = MDMC("cpu").materialise(FLIGHTS)
    cube = run.skycube
    print("\nThe full skycube (one skyline per non-empty subspace):")
    for delta in all_subspaces(3):
        ids = ", ".join(f"f{i}" for i in cube.skyline(delta))
        print(f"  δ={format_mask(delta, 3)} {describe(delta):>28}: {ids}")

    # The business traveller of the paper's introduction: only
    # duration and arrival matter (δ = 3).
    business = cube.skyline(0b011)
    print(f"\nBusiness traveller {describe(0b011)}: "
          f"{', '.join(f'f{i}' for i in business)}  "
          "(f0 drops out: slower AND later than f1/f2)")

    # --- representations ----------------------------------------------
    lattice = cube.as_lattice()
    hashcube: HashCube = cube.as_hashcube(word_width=4)
    print("\nRepresentation sizes:")
    print(f"  lattice : {lattice.total_ids_stored()} stored ids "
          f"({lattice.memory_bytes()} bytes)")
    print(f"  hashcube: {hashcube.total_ids_stored()} stored ids "
          f"({hashcube.memory_bytes()} bytes), "
          f"{hashcube.compression_ratio_vs(lattice):.1f}x fewer ids")
    print("\nWork done:", run.counters)


if __name__ == "__main__":
    main()
