#!/usr/bin/env python3
"""Hotel finder: interactive-style subspace skyline exploration.

The motivating use case of skycubes (Section 1): different users care
about different attribute subsets, and the materialised skycube answers
each profile's skyline instantly.  This example generates a synthetic
hotel catalogue (price, distance to centre, noise level, review score,
breakfast price, year since renovation), materialises a *partial*
skycube — user profiles rarely weigh more than four criteria at once —
and answers a handful of traveller profiles from it.

Run:  python examples/hotel_finder.py
"""

import numpy as np

from repro.core.bitmask import mask_from_dims, popcount
from repro.engine import fast_skycube

ATTRIBUTES = [
    "price",
    "distance",
    "noise",
    "bad reviews",
    "breakfast",
    "age",
]

PROFILES = {
    "budget backpacker": ["price", "noise"],
    "family trip": ["price", "distance", "bad reviews"],
    "business stay": ["distance", "noise", "age"],
    "foodie weekend": ["price", "breakfast", "bad reviews"],
    "anniversary": ["bad reviews", "noise", "age", "breakfast"],
}


def make_hotels(n: int = 4000, seed: int = 7) -> np.ndarray:
    """A catalogue with realistic structure: central hotels cost more,
    well-reviewed hotels are newer, breakfast tracks price."""
    rng = np.random.default_rng(seed)
    centrality = rng.random(n)
    quality = rng.beta(3.0, 2.0, n)
    price = 0.5 * (1 - centrality) + 0.4 * quality + rng.normal(0, 0.1, n)
    distance = centrality + rng.normal(0, 0.05, n)
    noise = 0.6 * (1 - centrality) + rng.normal(0, 0.15, n)
    bad_reviews = 1 - quality + rng.normal(0, 0.1, n)
    breakfast = 0.7 * price + rng.normal(0, 0.1, n)
    age = 1 - quality + rng.normal(0, 0.2, n)
    columns = np.column_stack(
        [price, distance, noise, bad_reviews, breakfast, age]
    )
    # Min-max normalise per criterion (no clipping: every value stays
    # distinct, so singleton-criterion skylines are truly selective).
    lo, hi = columns.min(axis=0), columns.max(axis=0)
    return (columns - lo) / (hi - lo)


def main() -> None:
    hotels = make_hotels()
    n, d = hotels.shape
    print(f"Catalogue: {n} hotels x {d} criteria {ATTRIBUTES}")

    # Materialise only lattice levels <= 4 (Appendix A.2: profiles
    # with more criteria are rare, and high-dimensional skylines are
    # unselective anyway).
    max_level = 4
    cube = fast_skycube(hotels, max_level=max_level)
    materialised = sum(1 for _ in cube.subspaces())
    print(f"Partial skycube: levels <= {max_level}, "
          f"{materialised} of {2**d - 1} subspaces materialised\n")

    for profile, criteria in PROFILES.items():
        delta = mask_from_dims([ATTRIBUTES.index(c) for c in criteria])
        assert popcount(delta) <= max_level
        ids = cube.skyline(delta)
        best = min(ids, key=lambda i: hotels[i].sum())
        print(f"{profile:>18} ({' + '.join(criteria)}):")
        print(f"{'':>18}  {len(ids)} undominated hotels of {n}; "
              f"e.g. #{best} -> "
              + ", ".join(
                  f"{a}={hotels[best][ATTRIBUTES.index(a)]:.2f}"
                  for a in criteria
              ))

    # Selectivity falls as profiles widen — the reason subspace
    # skylines (and hence skycubes) matter.
    print("\nSkyline size by number of criteria (selectivity loss):")
    for level in range(1, max_level + 1):
        sizes = [
            len(cube.skyline(delta))
            for delta in cube.subspaces()
            if popcount(delta) == level
        ]
        print(f"  |δ|={level}: avg {np.mean(sizes):7.1f} hotels "
              f"(max {max(sizes)})")


if __name__ == "__main__":
    main()
