#!/usr/bin/env python3
"""Tour of the templates on the simulated heterogeneous platform.

Materialises the same workload with all three templates (and the
PQSkycube baseline), replays each trace on the simulated dual-socket
Xeon, a simulated GTX 980, and the full 2-socket + 3-GPU ecosystem,
and prints the execution times, hardware counters and per-device work
shares — a miniature of the paper's Section 7.

Run:  python examples/heterogeneous_tour.py
"""

from repro.data.generator import generate
from repro.experiments.workloads import (
    SCALE,
    scaled_cpu,
    scaled_gpu,
    scaled_platform,
)
from repro.hardware import (
    simulate_cpu,
    simulate_gpu,
    simulate_heterogeneous,
)
from repro.skycube import PQSkycube
from repro.templates import MDMC, SDSC, STSC


def fmt(seconds: float) -> str:
    return f"{seconds * 1000:9.2f} ms"


def main() -> None:
    n, d = 1000, 8
    data = generate("independent", n, d, seed=3)
    print(f"Workload: (I), n={n}, d={d}  "
          f"(machine and workload scaled 1/{SCALE} of the paper's)\n")

    cpu, gpu, platform = scaled_cpu(), scaled_gpu(), scaled_platform()

    print("Materialising (every run computes the real, exact skycube):")
    runs = {}
    for label, builder in [
        ("PQSkycube (baseline)", PQSkycube()),
        ("STSC", STSC()),
        ("SDSC-cpu", SDSC("cpu")),
        ("SDSC-gpu", SDSC("gpu")),
        ("MDMC-cpu", MDMC("cpu")),
        ("MDMC-gpu", MDMC("gpu")),
    ]:
        runs[label] = builder.materialise(data)
        print(f"  {label:22s} tasks={runs[label].total_tasks():5d}  "
              f"DTs={runs[label].counters.dominance_tests}")

    reference = runs["STSC"].skycube
    assert all(run.skycube == reference for run in runs.values())
    print("\nAll six runs produce the identical skycube.\n")

    print("Simulated CPU times (40 threads, 2 sockets; PQ at its best "
          "20 HT config):")
    for label in ("PQSkycube (baseline)", "STSC", "SDSC-cpu", "MDMC-cpu"):
        threads, sockets = (20, 1) if label.startswith("PQ") else (40, 2)
        sim = simulate_cpu(runs[label], cpu, threads=threads, sockets=sockets)
        print(f"  {label:22s} {fmt(sim.seconds)}   CPI={sim.cpi:5.2f}  "
              f"L3 misses={sim.hardware.l3_misses:9.2e}")

    print("\nSimulated GPU times (one GTX 980):")
    for label in ("SDSC-gpu", "MDMC-gpu"):
        sim = simulate_gpu(runs[label], gpu)
        print(f"  {label:22s} {fmt(sim.seconds)}   "
              f"kernels={sim.launches:4d}  "
              f"PCIe={sim.pcie_seconds * 1000:6.2f} ms")

    print("\nCross-device (2 CPU sockets + 2x GTX 980 + GTX Titan):")
    for label in ("SDSC-gpu", "MDMC-gpu"):
        sim = simulate_heterogeneous(runs[label], platform)
        print(f"  {label:22s} {fmt(sim.seconds)}   work shares:")
        for device, share in sim.device_shares.items():
            print(f"      {device:28s} {100 * share:5.1f} %")


if __name__ == "__main__":
    main()
