"""File discovery, rule orchestration and reporting for skylint.

:func:`analyse_paths` is the library entry point (the test suite and
``python -m repro.analysis`` both use it): collect python files, parse
each once, run every applicable rule, then partition the findings into
reported / suppressed / allowlisted.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.analysis.base import (
    Allowlist,
    ModuleContext,
    Rule,
    Violation,
    all_rules,
    module_name,
)

__all__ = ["AnalysisReport", "analyse_paths", "iter_python_files"]

#: Directories never descended into.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    collected.append(candidate)
        elif path.suffix == ".py":
            collected.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return collected


@dataclass
class AnalysisReport:
    """Outcome of one analysis run over a set of files."""

    violations: List[Violation] = field(default_factory=list)
    allowlisted: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[Violation] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.parse_errors else 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "violations": [v.to_json() for v in self.violations],
                "allowlisted": [v.to_json() for v in self.allowlisted],
                "parse_errors": [v.to_json() for v in self.parse_errors],
            },
            indent=2,
        )

    def render(self, stream: Optional[TextIO] = None) -> None:
        out = stream if stream is not None else sys.stdout
        for violation in self.parse_errors + self.violations:
            print(violation.format(), file=out)
        summary = (
            f"skylint: {len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s)"
        )
        if self.allowlisted:
            summary += f", {len(self.allowlisted)} allowlisted"
        if self.parse_errors:
            summary += f", {len(self.parse_errors)} unparsable file(s)"
        print(summary, file=out)


def analyse_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    allowlist: Optional[Allowlist] = None,
) -> AnalysisReport:
    """Run the (filtered) rule set over every python file in ``paths``."""
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        active = [rule for rule in active if rule.code in wanted]
    if ignore is not None:
        unwanted = set(ignore)
        active = [rule for rule in active if rule.code not in unwanted]

    report = AnalysisReport()
    for path in iter_python_files([Path(p) for p in paths]):
        report.files_checked += 1
        try:
            context = ModuleContext.parse(path)
        except (SyntaxError, UnicodeDecodeError) as error:
            report.parse_errors.append(
                Violation(
                    path=str(path),
                    line=getattr(error, "lineno", 1) or 1,
                    col=1,
                    code="SKY000",
                    message=f"cannot parse file: {error}",
                )
            )
            continue
        module = module_name(path)
        for rule in active:
            if not rule.applies_to(module):
                continue
            for violation in rule.check(context):
                if allowlist is not None and allowlist.allows(
                    violation, module
                ):
                    report.allowlisted.append(violation)
                else:
                    report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    report.allowlisted.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return report
