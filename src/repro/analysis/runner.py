"""File discovery, rule orchestration, caching and reporting.

:func:`analyse_paths` is the library entry point (the test suite and
``python -m repro.analysis`` both use it).  The v2 pipeline:

1. collect python files and hash their contents;
2. split the active rules into per-module rules and project
   (call-graph) rules;
3. consult the incremental cache — an unchanged file replays its
   per-module findings, and replays its project findings too when the
   hash of its transitive project imports is also unchanged (the warm
   path parses *nothing*: dependency closures are computed from
   imports stored in the cache);
4. parse what must be parsed (optionally across processes), run the
   per-module rules on changed files and the project rules over a
   package-wide :class:`~repro.analysis.callgraph.ProjectContext`
   when any project finding could have changed;
5. partition raw findings through the allowlist and the baseline,
   tracking stale entries of both.

Findings are cached raw (pre-allowlist, pre-baseline), so tuning the
suppression files never invalidates the cache.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, TextIO, Tuple

from repro.analysis.base import (
    Allowlist,
    ModuleContext,
    Rule,
    Violation,
    all_rules,
    known_codes,
    module_name,
    unknown_code_error,
)
from repro.analysis.baseline import Baseline
from repro.analysis.cache import (
    LintCache,
    deps_hash,
    file_sha256,
    rules_signature,
)

__all__ = ["AnalysisReport", "analyse_paths", "iter_python_files"]

#: Directories never descended into.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    collected.append(candidate)
        elif path.suffix == ".py":
            collected.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return collected


@dataclass
class AnalysisReport:
    """Outcome of one analysis run over a set of files."""

    violations: List[Violation] = field(default_factory=list)
    allowlisted: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[Violation] = field(default_factory=list)
    #: ``pattern: CODE`` allowlist entries that suppressed nothing.
    stale_allowlist: List[str] = field(default_factory=list)
    #: Baseline fingerprints whose finding no longer exists.
    stale_baseline: List[str] = field(default_factory=list)
    #: ``{"files": n, "module_hits": n, "project_hits": n}`` when a
    #: cache directory was used.
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def stale_entries(self) -> List[str]:
        return self.stale_allowlist + self.stale_baseline

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.parse_errors else 0

    def to_json(self) -> str:
        payload = {
            "files_checked": self.files_checked,
            "violations": [v.to_json() for v in self.violations],
            "allowlisted": [v.to_json() for v in self.allowlisted],
            "baselined": [v.to_json() for v in self.baselined],
            "parse_errors": [v.to_json() for v in self.parse_errors],
            "stale_allowlist": list(self.stale_allowlist),
            "stale_baseline": list(self.stale_baseline),
        }
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats
        return json.dumps(payload, indent=2)

    def render(self, stream: Optional[TextIO] = None) -> None:
        out = stream if stream is not None else sys.stdout
        for violation in self.parse_errors + self.violations:
            print(violation.format(), file=out)
        for entry in self.stale_allowlist:
            print(
                f"skylint: warning: stale allowlist entry {entry!r} "
                "(suppresses nothing; remove it)",
                file=out,
            )
        for entry in self.stale_baseline:
            print(
                f"skylint: warning: stale baseline entry {entry!r} "
                "(finding no longer exists; re-run --write-baseline)",
                file=out,
            )
        summary = (
            f"skylint: {len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s)"
        )
        if self.allowlisted:
            summary += f", {len(self.allowlisted)} allowlisted"
        if self.baselined:
            summary += f", {len(self.baselined)} baselined"
        if self.parse_errors:
            summary += f", {len(self.parse_errors)} unparsable file(s)"
        if self.cache_stats is not None:
            summary += (
                f" [cache: {self.cache_stats['module_hits']}/"
                f"{self.cache_stats['files']} warm]"
            )
        print(summary, file=out)


def _active_rules(
    rules: Optional[Sequence[Rule]],
    select: Optional[Iterable[str]],
    ignore: Optional[Iterable[str]],
) -> List[Rule]:
    active = list(rules) if rules is not None else all_rules()
    known = known_codes()
    if select is not None:
        wanted = set(select)
        for code in sorted(wanted):
            if code not in known:
                raise unknown_code_error(code, known)
        active = [rule for rule in active if rule.code in wanted]
    if ignore is not None:
        unwanted = set(ignore)
        for code in sorted(unwanted):
            if code not in known:
                raise unknown_code_error(code, known)
        active = [rule for rule in active if rule.code not in unwanted]
    return active


def _parse_one(path: Path) -> Tuple[Optional[ModuleContext], Optional[Violation]]:
    try:
        return ModuleContext.parse(path), None
    except (SyntaxError, UnicodeDecodeError) as error:
        return None, Violation(
            path=str(path),
            line=getattr(error, "lineno", 1) or 1,
            col=1,
            code="SKY000",
            message=f"cannot parse file: {error}",
        )


def _module_check_worker(
    path_str: str, codes: List[str]
) -> Tuple[str, Optional[dict], List[dict], List[str]]:
    """Subprocess body: parse one file, run the per-module rules.

    Returns ``(path, parse_error, violations, imports)`` as plain
    JSON-able values (Violation dataclasses round-trip via to_json).
    """
    from repro.analysis.base import RULE_REGISTRY
    from repro.analysis.callgraph import module_imports

    path = Path(path_str)
    context, error = _parse_one(path)
    if context is None:
        assert error is not None
        return path_str, error.to_json(), [], []
    rules = [RULE_REGISTRY[code]() for code in codes]
    found: List[dict] = []
    for rule in rules:
        if not rule.applies_to(context.module):
            continue
        found.extend(v.to_json() for v in rule.check(context))
    imports = sorted(module_imports(context.tree, context.module))
    return path_str, None, found, imports


def _violation_from_json(record: dict) -> Violation:
    return Violation(
        path=str(record["path"]),
        line=int(record["line"]),
        col=int(record["col"]),
        code=str(record["code"]),
        message=str(record["message"]),
        severity=str(record.get("severity", "error")),
    )


def analyse_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    allowlist: Optional[Allowlist] = None,
    baseline: Optional[Baseline] = None,
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run the (filtered) rule set over every python file in ``paths``.

    Raises :class:`ValueError` for unknown ``select``/``ignore`` codes
    (with a did-you-mean suggestion) — a typo'd filter must fail loud,
    not silently lint nothing.
    """
    from repro.analysis.callgraph import ProjectContext, module_imports

    active = _active_rules(rules, select, ignore)
    module_rules = [r for r in active if not r.requires_project]
    project_rules = [r for r in active if r.requires_project]

    files = iter_python_files([Path(p) for p in paths])
    keys = [str(path) for path in files]
    report = AnalysisReport(files_checked=len(files))

    cache: Optional[LintCache] = None
    if cache_dir is not None:
        cache = LintCache(Path(cache_dir))
        cache.load(rules_signature([r.code for r in active]))

    hashes: Dict[str, Optional[str]] = {
        key: file_sha256(path) for key, path in zip(keys, files)
    }
    #: dotted module -> file hash, for dependency hashing (first file
    #: claiming a module name wins, matching ProjectContext).
    module_hash: Dict[str, str] = {}
    module_of: Dict[str, str] = {}
    for key, path in zip(keys, files):
        module = module_name(path)
        module_of[key] = module
        digest = hashes[key]
        if digest is not None:
            module_hash.setdefault(module, digest)

    # -- cache probe (parse-free) --------------------------------------

    module_hits: Set[str] = set()
    project_hits: Set[str] = set()
    import_table: Dict[str, List[str]] = {}
    if cache is not None:
        for key in keys:
            if cache.module_hit(key, hashes[key]):
                module_hits.add(key)
                cached = cache.cached_imports(key)
                if cached is not None:
                    import_table[key] = cached

        def closure_hash(key: str) -> Optional[str]:
            start = import_table.get(key)
            if start is None:
                return None
            seen: Set[str] = set()
            stack = [m for m in start if m in module_hash]
            dep_hashes: Dict[str, str] = {}
            while stack:
                dep = stack.pop()
                if dep in seen or dep == module_of[key]:
                    continue
                seen.add(dep)
                dep_hashes[dep] = module_hash[dep]
                # Follow the dep's own cached imports when available.
                for dep_key, dep_module in module_of.items():
                    if dep_module == dep:
                        for nxt in import_table.get(dep_key, ()):  # noqa: B007
                            if nxt in module_hash and nxt not in seen:
                                stack.append(nxt)
                        break
            return deps_hash(dep_hashes)

        if project_rules:
            for key in module_hits:
                entry = cache.entry(key)
                if entry is None:
                    continue
                expected = closure_hash(key)
                if expected is not None and entry.get("deps_hash") == expected:
                    project_hits.add(key)
        else:
            project_hits = set(module_hits)
        cache.hits = len(module_hits)
        cache.project_hits = len(project_hits)
        cache.misses = len(keys) - len(module_hits)

    all_project_warm = len(project_hits) == len(keys)
    all_module_warm = len(module_hits) == len(keys)

    # -- decide what needs parsing -------------------------------------

    need_module_run = [
        (key, path)
        for key, path in zip(keys, files)
        if key not in module_hits
    ]
    need_project_run = bool(project_rules) and not all_project_warm

    raw_by_file: Dict[str, List[Violation]] = {key: [] for key in keys}
    project_by_file: Dict[str, List[Violation]] = {key: [] for key in keys}
    fresh_imports: Dict[str, List[str]] = {}
    contexts: Dict[str, ModuleContext] = {}
    parse_failed: Set[str] = set()

    codes = [r.code for r in module_rules]

    def record_parse_error(key: str, violation: Violation) -> None:
        parse_failed.add(key)
        report.parse_errors.append(violation)

    if need_module_run and jobs > 1 and not need_project_run:
        # Pure module-rule work parallelises cleanly: each worker
        # parses its file and returns JSON-able findings.
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(
                    pool.map(
                        _module_check_worker,
                        [key for key, _ in need_module_run],
                        [codes] * len(need_module_run),
                    )
                )
            for key, error, found, imports in results:
                if error is not None:
                    record_parse_error(key, _violation_from_json(error))
                    continue
                raw_by_file[key].extend(
                    _violation_from_json(v) for v in found
                )
                fresh_imports[key] = imports
            need_module_run = []
        except (OSError, ImportError):  # pragma: no cover - env-specific
            pass  # fall through to the serial path

    # Serial path (also used whenever the project rules run: they need
    # every context in this process anyway).
    to_parse: List[Tuple[str, Path]] = []
    if need_project_run:
        to_parse = list(zip(keys, files))
    else:
        to_parse = need_module_run
    for key, path in to_parse:
        context, error = _parse_one(path)
        if context is None:
            assert error is not None
            record_parse_error(key, error)
            continue
        contexts[key] = context

    for key, path in need_module_run:
        context = contexts.get(key)
        if context is None:
            continue  # parse error already recorded
        for rule in module_rules:
            if not rule.applies_to(context.module):
                continue
            raw_by_file[key].extend(rule.check(context))

    # Cached per-module findings for warm files.
    if cache is not None:
        for key in module_hits:
            raw_by_file[key].extend(
                cache.cached_violations(key, "module_violations")
            )

    # -- project rules --------------------------------------------------

    if need_project_run:
        ordered = [contexts[key] for key in keys if key in contexts]
        project = ProjectContext(ordered)
        for rule in project_rules:
            for violation in rule.check_project(project):
                bucket = project_by_file.get(violation.path)
                if bucket is None:
                    bucket = project_by_file.setdefault(violation.path, [])
                bucket.append(violation)
    elif cache is not None and project_rules:
        for key in keys:
            project_by_file[key].extend(
                cache.cached_violations(key, "project_violations")
            )

    # -- write the cache back ------------------------------------------

    if cache is not None:
        # Imports for every parsed file; cached imports elsewhere.
        for key, context in contexts.items():
            fresh_imports[key] = sorted(
                module_imports(context.tree, context.module)
            )
        current_imports: Dict[str, List[str]] = {}
        for key in keys:
            if key in fresh_imports:
                current_imports[key] = fresh_imports[key]
            else:
                current_imports[key] = import_table.get(key, [])
        key_of_module: Dict[str, str] = {}
        for key in keys:
            key_of_module.setdefault(module_of[key], key)

        def current_closure_hash(key: str) -> str:
            seen: Set[str] = set()
            stack = [
                m
                for m in current_imports.get(key, ())
                if m in module_hash
            ]
            dep_hashes: Dict[str, str] = {}
            while stack:
                dep = stack.pop()
                if dep in seen or dep == module_of[key]:
                    continue
                seen.add(dep)
                dep_hashes[dep] = module_hash[dep]
                dep_key = key_of_module.get(dep)
                if dep_key is not None:
                    stack.extend(
                        nxt
                        for nxt in current_imports.get(dep_key, ())
                        if nxt in module_hash and nxt not in seen
                    )
            return deps_hash(dep_hashes)

        for key in keys:
            if key in parse_failed or hashes[key] is None:
                continue
            cache.store(
                key,
                hashes[key],  # type: ignore[arg-type]
                module_of[key],
                current_imports.get(key, []),
                raw_by_file.get(key, []),
                project_by_file.get(key, []),
                current_closure_hash(key),
            )
        cache.save()
        report.cache_stats = {
            "files": len(keys),
            "module_hits": len(module_hits),
            "project_hits": len(project_hits),
            "warm": bool(all_module_warm and (not project_rules or all_project_warm)),
        }

    # -- partition: allowlist, then baseline ---------------------------

    combined: List[Violation] = []
    for key in keys:
        combined.extend(raw_by_file.get(key, []))
        combined.extend(project_by_file.get(key, []))
    # Project findings may land on paths outside the keyed set (never
    # in practice: ProjectContext only contains analysed files).
    for path_key, extra in project_by_file.items():
        if path_key not in raw_by_file and path_key not in keys:
            combined.extend(extra)

    used_entries: Set[int] = set()
    surviving: List[Violation] = []
    for violation in combined:
        module = module_name(Path(violation.path))
        matched = (
            allowlist.match(violation, module)
            if allowlist is not None
            else None
        )
        if matched is not None:
            used_entries.add(matched)
            report.allowlisted.append(violation)
        else:
            surviving.append(violation)
    if allowlist is not None:
        for index, (pattern, code) in enumerate(allowlist.entries):
            if index not in used_entries:
                report.stale_allowlist.append(f"{pattern}: {code}")

    if baseline is not None:
        surviving, baselined, stale = baseline.partition(surviving)
        report.baselined = baselined
        report.stale_baseline = stale

    report.violations = surviving
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    report.allowlisted.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    report.baselined.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return report
