"""Shared-memory hygiene rules (SKY101–SKY103).

The process backend (:mod:`repro.engine.parallel`) mirrors the paper's
threads sharing one read-only point array with POSIX shared memory.
That design has three failure modes no unit test reliably catches: a
``SharedMemory`` segment that outlives the run (leaked ``/dev/shm``
pages until reboot), a process pool left running on an error path, and
a task callable that cannot be pickled (or silently drags the parent's
state into every worker).  These rules make the safe idioms — context
managers, ``finally`` blocks, module-level worker functions — the only
ones that lint clean.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import (
    ModuleContext,
    ProjectRule,
    Rule,
    Violation,
    register_rule,
)

__all__ = [
    "SharedMemoryUnlinkRule",
    "PoolLifecycleRule",
    "WorkerPicklabilityRule",
    "SharedMemoryLeakPathRule",
    "SharedMemoryDoubleReleaseRule",
]

#: Pool constructors whose instances must be shut down on every path.
POOL_CONSTRUCTORS = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"}
)

#: Methods that ship a callable to workers (first argument).
DISPATCH_METHODS = frozenset(
    {"submit", "run", "map", "imap", "imap_unordered", "apply",
     "apply_async", "map_async", "starmap", "starmap_async"}
)


def _call_name(node: ast.Call) -> Optional[str]:
    """Rightmost name of the called expression, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _attribute_calls(node: ast.AST) -> Set[str]:
    """Attribute names of every method call under ``node``."""
    calls: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(
            child.func, ast.Attribute
        ):
            calls.add(child.func.attr)
    return calls


def _finally_calls(scope: ast.AST) -> Set[str]:
    """Method names called inside any ``finally`` block of ``scope``."""
    calls: Set[str] = set()
    for child in ast.walk(scope):
        if isinstance(child, ast.Try):
            for statement in child.finalbody:
                calls |= _attribute_calls(statement)
    return calls


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if (
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name == name
        ):
            return statement  # type: ignore[return-value]
    return None


@register_rule
class SharedMemoryUnlinkRule(Rule):
    """SKY101 — every created segment is unlinked on all paths.

    ``SharedMemory(create=True)`` allocates kernel-persistent pages; an
    exception between creation and ``unlink()`` leaks them for the
    machine's uptime.  Creation is therefore only allowed (a) as a
    ``with`` context expression, (b) inside a class that guarantees
    cleanup (a ``close``/``__exit__`` pair whose ``close`` unlinks), or
    (c) in a function whose ``finally`` block unlinks.
    """

    code = "SKY101"
    name = "shared-memory-unlink-guaranteed"
    summary = (
        "SharedMemory(create=True) needs a with-block, an owning class "
        "with close()+__exit__, or a finally that unlinks"
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) != "SharedMemory":
                continue
            creates = any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not creates:
                continue
            if self._guaranteed(context, node):
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                "SharedMemory(create=True) without a guaranteed unlink: "
                "wrap it in a context manager, own it from a class with "
                "close() calling unlink() plus __exit__, or unlink in a "
                "finally block — otherwise an error path leaks the "
                "segment until reboot",
            )

    def _guaranteed(self, context: ModuleContext, node: ast.Call) -> bool:
        if context.is_with_context(node):
            return True
        owner = context.enclosing_class(node)
        if owner is not None:
            close = _method(owner, "close")
            exits = _method(owner, "__exit__")
            if (
                close is not None
                and exits is not None
                and "unlink" in _attribute_calls(close)
            ):
                return True
        function = context.enclosing_function(node)
        if function is not None and "unlink" in _finally_calls(function):
            return True
        return False


@register_rule
class PoolLifecycleRule(Rule):
    """SKY102 — every pool is shut down on every path.

    A ``ProcessPoolExecutor``/``Pool`` abandoned on an exception path
    keeps worker processes (and their copy-on-write memory) alive until
    interpreter exit.  Construction is allowed as a ``with`` context or
    in a function whose ``finally`` block calls ``shutdown``/
    ``terminate`` (or the ``close``+``join`` pair).
    """

    code = "SKY102"
    name = "pool-shutdown-guaranteed"
    summary = (
        "process/thread pools need a with-block or a finally that "
        "shuts them down"
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in POOL_CONSTRUCTORS:
                continue
            if context.is_with_context(node):
                continue
            function = context.enclosing_function(node)
            if function is not None:
                cleanup = _finally_calls(function)
                if "shutdown" in cleanup or "terminate" in cleanup:
                    continue
                if "close" in cleanup and "join" in cleanup:
                    continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                "pool created without guaranteed shutdown: use a with-"
                "block, or call shutdown()/terminate() (or close()+"
                "join()) in a finally block so error paths cannot "
                "strand worker processes",
            )


@register_rule
class WorkerPicklabilityRule(Rule):
    """SKY103 — work shipped to pools is picklable by reference.

    A lambda or nested function handed to ``submit``/``map``/
    ``ParallelExecutor.run`` either fails to pickle outright (spawn) or
    silently closes over the parent's state (fork) — the exact
    divergence between "works on my laptop" and a corrupted parallel
    run.  Task callables must be module-level functions.
    """

    code = "SKY103"
    name = "worker-callable-module-level"
    summary = (
        "callables passed to pool dispatch methods must be "
        "module-level functions, not lambdas or nested defs"
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in DISPATCH_METHODS:
                continue
            if not node.args:
                continue
            candidate = node.args[0]
            problem = self._problem(context, node, candidate)
            if problem is None:
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                f"{problem} passed to .{func.attr}(); workers need a "
                "module-level function (picklable by reference, no "
                "closure over parent state)",
            )

    def _problem(
        self, context: ModuleContext, call: ast.Call, candidate: ast.expr
    ) -> Optional[str]:
        if isinstance(candidate, ast.Lambda):
            return "lambda"
        if isinstance(candidate, ast.Name):
            function = context.enclosing_function(call)
            if function is not None and candidate.id in _nested_defs(
                function
            ):
                return f"nested function {candidate.id!r}"
        return None


def _nested_defs(function: ast.AST) -> Set[str]:
    """Names of functions defined *inside* ``function``."""
    names: Set[str] = set()
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
            continue  # a def inside a def is enough; no need to recurse
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return names


# -- flow-aware lifecycle rules (SKY104 / SKY105) ----------------------
#
# SKY101 asks a syntactic question ("is there a finally that
# unlinks?"); these two walk the CFG instead, so an early return
# between creation and cleanup, or a loop that re-enters the release
# path, is caught even when the release itself lives in a helper
# function the call graph resolves.


def _lifecycle_specs():
    """The tracked resource contracts (imported lazily: flow pulls in
    nothing beyond ast, but keeping rule modules import-light keeps
    ``--list-rules`` instant)."""
    from repro.analysis.flow import ResourceSpec

    shm = ResourceSpec(
        kind="SharedMemory",
        finalizers={"close": "closed", "unlink": "unlinked"},
        required=frozenset({"unlinked"}),
        once=frozenset({"unlink"}),
    )
    dataset = ResourceSpec(
        kind="SharedDataset",
        finalizers={"close": "closed"},
        required=frozenset({"closed"}),
        once=frozenset(),
    )
    return shm, dataset


def _creates_segment(call: ast.Call) -> bool:
    """``SharedMemory(create=True, ...)`` — an owning allocation."""
    if _call_name(call) != "SharedMemory":
        return False
    return any(
        keyword.arg == "create"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in call.keywords
    )


def _creates_dataset(call: ast.Call) -> bool:
    """``SharedDataset(...)`` construction (``attach`` is borrowing)."""
    return _call_name(call) == "SharedDataset" and not (
        isinstance(call.func, ast.Attribute) and call.func.attr == "attach"
    )


def _tracked_creations(
    function: ast.AST,
) -> Iterator[Tuple[ast.Assign, str, str]]:
    """``(assign, var, kind)`` for owning creations bound to a local.

    Only plain ``var = Ctor(...)`` bindings in the function's own body
    are tracked: ``with`` creations are released by ``__exit__``,
    ``self.attr = ...`` hands ownership to the object (SKY101's class
    check governs that), and creations inside nested defs belong to
    the nested function.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if _creates_segment(value):
            yield node, target.id, "SharedMemory"
        elif _creates_dataset(value):
            yield node, target.id, "SharedDataset"


def _summary_lookup(graph, fid: str):
    """A :data:`repro.analysis.flow.SummaryLookup` over the call graph.

    Resolves ``helper(seg)`` to the set of methods the callee
    (transitively) applies to that argument; returns ``None`` —
    "escaped, stop tracking" — when the call has no resolved edge or
    the callee stores the argument beyond the call.
    """
    by_call: Dict[int, List[str]] = {}
    for site in graph.callees(fid):
        if site.call is not None:
            by_call.setdefault(id(site.call), []).append(site.callee)

    def lookup(call: ast.Call, position: int) -> Optional[Set[str]]:
        callees = by_call.get(id(call))
        if not callees:
            return None
        methods: Set[str] = set()
        for callee in callees:
            summary = graph.summaries.get(callee)
            info = graph.functions.get(callee)
            if summary is None or info is None:
                return None
            offset = 1 if info.class_name else 0
            there = position + offset
            if there in summary.escaped:
                return None
            methods |= summary.param_methods.get(there, set())
        return methods

    return lookup


def _flow_findings(project) -> Iterator[Tuple[str, object, "object", str]]:
    """``(what, context, finding_node, detail)`` across the project."""
    from repro.analysis.flow import track_resource

    shm_spec, dataset_spec = _lifecycle_specs()
    graph = project.callgraph
    for fid, info in graph.functions.items():
        context = project.modules.get(info.module)
        if context is None:
            continue
        summarize = None
        for assign, var, kind in _tracked_creations(info.node):
            if summarize is None:
                summarize = _summary_lookup(graph, fid)
            spec = shm_spec if kind == "SharedMemory" else dataset_spec
            for finding in track_resource(
                info.node, assign, var, spec, summarize
            ):
                yield finding.what, context, finding.node, (
                    f"{kind} segment {var!r}: {finding.detail}"
                )


@register_rule
class SharedMemoryLeakPathRule(ProjectRule):
    """SKY104 — no execution path may leak an owned segment.

    Complements SKY101: that rule demands a *guarantee shape* (with /
    owning class / finally); this one walks the CFG and flags an
    actual normal path that reaches the function exit with the segment
    still linked — an early ``return`` before the cleanup, a branch
    that skips it, a helper that closes but forgets to unlink.
    Release through helpers counts when the call graph proves the
    helper (transitively) finalises its argument.  Escaped segments
    (returned, stored on ``self``, handed to an unresolvable callee)
    are someone else's contract and are not reported.
    """

    code = "SKY104"
    name = "shared-memory-leak-path"
    summary = (
        "an owned SharedMemory/SharedDataset must be released on every "
        "normal execution path (flow-checked across helper calls)"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        for what, context, node, detail in _flow_findings(project):
            if what != "leak":
                continue
            line = getattr(node, "lineno", 1)
            if context.is_suppressed(line, self.code):
                continue
            yield context.violation(node, self.code, detail)


@register_rule
class SharedMemoryDoubleReleaseRule(ProjectRule):
    """SKY105 — no path may unlink the same segment twice.

    ``unlink()`` removes the name from the kernel namespace; a second
    call raises ``FileNotFoundError`` in production (and on some
    platforms can unlink a *recycled* name created by another run).
    Typical shapes: a release call inside a loop, or cleanup in both
    an ``except`` handler and the ``finally``.
    """

    code = "SKY105"
    name = "shared-memory-double-release"
    summary = (
        "no execution path may call unlink() twice on one segment "
        "(flow-checked, including releases via helpers)"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        for what, context, node, detail in _flow_findings(project):
            if what != "double":
                continue
            line = getattr(node, "lineno", 1)
            if context.is_suppressed(line, self.code):
                continue
            yield context.violation(node, self.code, detail)
