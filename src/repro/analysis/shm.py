"""Shared-memory hygiene rules (SKY101–SKY103).

The process backend (:mod:`repro.engine.parallel`) mirrors the paper's
threads sharing one read-only point array with POSIX shared memory.
That design has three failure modes no unit test reliably catches: a
``SharedMemory`` segment that outlives the run (leaked ``/dev/shm``
pages until reboot), a process pool left running on an error path, and
a task callable that cannot be pickled (or silently drags the parent's
state into every worker).  These rules make the safe idioms — context
managers, ``finally`` blocks, module-level worker functions — the only
ones that lint clean.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.base import ModuleContext, Rule, Violation, register_rule

__all__ = [
    "SharedMemoryUnlinkRule",
    "PoolLifecycleRule",
    "WorkerPicklabilityRule",
]

#: Pool constructors whose instances must be shut down on every path.
POOL_CONSTRUCTORS = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"}
)

#: Methods that ship a callable to workers (first argument).
DISPATCH_METHODS = frozenset(
    {"submit", "run", "map", "imap", "imap_unordered", "apply",
     "apply_async", "map_async", "starmap", "starmap_async"}
)


def _call_name(node: ast.Call) -> Optional[str]:
    """Rightmost name of the called expression, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _attribute_calls(node: ast.AST) -> Set[str]:
    """Attribute names of every method call under ``node``."""
    calls: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(
            child.func, ast.Attribute
        ):
            calls.add(child.func.attr)
    return calls


def _finally_calls(scope: ast.AST) -> Set[str]:
    """Method names called inside any ``finally`` block of ``scope``."""
    calls: Set[str] = set()
    for child in ast.walk(scope):
        if isinstance(child, ast.Try):
            for statement in child.finalbody:
                calls |= _attribute_calls(statement)
    return calls


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if (
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name == name
        ):
            return statement  # type: ignore[return-value]
    return None


@register_rule
class SharedMemoryUnlinkRule(Rule):
    """SKY101 — every created segment is unlinked on all paths.

    ``SharedMemory(create=True)`` allocates kernel-persistent pages; an
    exception between creation and ``unlink()`` leaks them for the
    machine's uptime.  Creation is therefore only allowed (a) as a
    ``with`` context expression, (b) inside a class that guarantees
    cleanup (a ``close``/``__exit__`` pair whose ``close`` unlinks), or
    (c) in a function whose ``finally`` block unlinks.
    """

    code = "SKY101"
    name = "shared-memory-unlink-guaranteed"
    summary = (
        "SharedMemory(create=True) needs a with-block, an owning class "
        "with close()+__exit__, or a finally that unlinks"
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) != "SharedMemory":
                continue
            creates = any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not creates:
                continue
            if self._guaranteed(context, node):
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                "SharedMemory(create=True) without a guaranteed unlink: "
                "wrap it in a context manager, own it from a class with "
                "close() calling unlink() plus __exit__, or unlink in a "
                "finally block — otherwise an error path leaks the "
                "segment until reboot",
            )

    def _guaranteed(self, context: ModuleContext, node: ast.Call) -> bool:
        if context.is_with_context(node):
            return True
        owner = context.enclosing_class(node)
        if owner is not None:
            close = _method(owner, "close")
            exits = _method(owner, "__exit__")
            if (
                close is not None
                and exits is not None
                and "unlink" in _attribute_calls(close)
            ):
                return True
        function = context.enclosing_function(node)
        if function is not None and "unlink" in _finally_calls(function):
            return True
        return False


@register_rule
class PoolLifecycleRule(Rule):
    """SKY102 — every pool is shut down on every path.

    A ``ProcessPoolExecutor``/``Pool`` abandoned on an exception path
    keeps worker processes (and their copy-on-write memory) alive until
    interpreter exit.  Construction is allowed as a ``with`` context or
    in a function whose ``finally`` block calls ``shutdown``/
    ``terminate`` (or the ``close``+``join`` pair).
    """

    code = "SKY102"
    name = "pool-shutdown-guaranteed"
    summary = (
        "process/thread pools need a with-block or a finally that "
        "shuts them down"
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in POOL_CONSTRUCTORS:
                continue
            if context.is_with_context(node):
                continue
            function = context.enclosing_function(node)
            if function is not None:
                cleanup = _finally_calls(function)
                if "shutdown" in cleanup or "terminate" in cleanup:
                    continue
                if "close" in cleanup and "join" in cleanup:
                    continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                "pool created without guaranteed shutdown: use a with-"
                "block, or call shutdown()/terminate() (or close()+"
                "join()) in a finally block so error paths cannot "
                "strand worker processes",
            )


@register_rule
class WorkerPicklabilityRule(Rule):
    """SKY103 — work shipped to pools is picklable by reference.

    A lambda or nested function handed to ``submit``/``map``/
    ``ParallelExecutor.run`` either fails to pickle outright (spawn) or
    silently closes over the parent's state (fork) — the exact
    divergence between "works on my laptop" and a corrupted parallel
    run.  Task callables must be module-level functions.
    """

    code = "SKY103"
    name = "worker-callable-module-level"
    summary = (
        "callables passed to pool dispatch methods must be "
        "module-level functions, not lambdas or nested defs"
    )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in DISPATCH_METHODS:
                continue
            if not node.args:
                continue
            candidate = node.args[0]
            problem = self._problem(context, node, candidate)
            if problem is None:
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                f"{problem} passed to .{func.attr}(); workers need a "
                "module-level function (picklable by reference, no "
                "closure over parent state)",
            )

    def _problem(
        self, context: ModuleContext, call: ast.Call, candidate: ast.expr
    ) -> Optional[str]:
        if isinstance(candidate, ast.Lambda):
            return "lambda"
        if isinstance(candidate, ast.Name):
            function = context.enclosing_function(call)
            if function is not None and candidate.id in _nested_defs(
                function
            ):
                return f"nested function {candidate.id!r}"
        return None


def _nested_defs(function: ast.AST) -> Set[str]:
    """Names of functions defined *inside* ``function``."""
    names: Set[str] = set()
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
            continue  # a def inside a def is enough; no need to recurse
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return names
