"""Determinism rule (SKY201).

The executor contract (ROADMAP, PR 1) is that parallel and serial runs
are *bit-identical*: the process backend is only trusted because its
results equal the instrumented serial reference.  One unseeded RNG call
anywhere in an algorithm, template or experiment silently voids that
guarantee — two runs of the "same" computation diverge and the
benchmark-vs-reference comparison becomes noise.  All randomness must
therefore flow from :mod:`repro.data` or from an explicitly seeded
``numpy.random.Generator`` passed in by the caller.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.base import ModuleContext, Rule, Violation, register_rule

__all__ = ["DeterminismRule"]

#: numpy.random names that are fine to use anywhere *when seeded*.
SEEDED_CONSTRUCTORS = frozenset({"default_rng", "Generator", "RandomState"})

#: numpy.random names importable anywhere (types, not entropy sources).
SAFE_RANDOM_IMPORTS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator"}
)


def _attribute_chain(node: ast.expr) -> List[str]:
    """``np.random.rand`` → ``["np", "random", "rand"]`` (or [])."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return parts[::-1]
    return []


@register_rule
class DeterminismRule(Rule):
    """SKY201 — no bare RNG calls outside ``repro.data``.

    Flags module-level entropy: ``np.random.<anything>(...)`` except a
    *seeded* ``default_rng``/``Generator``/``RandomState``, any use of
    the stdlib :mod:`random` module (seeded ``random.Random(seed)``
    excepted), and ``from random import ...``/``from numpy.random
    import ...`` of entropy functions.
    """

    code = "SKY201"
    name = "no-unseeded-rng"
    summary = (
        "randomness must come from repro.data or an explicitly seeded "
        "Generator; bare np.random.*/random.* calls break bit-identical "
        "parallel-vs-serial runs"
    )

    def applies_to(self, module: str) -> bool:
        return not (
            module == "repro.data" or module.startswith("repro.data.")
        )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        numpy_aliases = {"numpy"}
        stdlib_random_aliases = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "numpy":
                        numpy_aliases.add(local)
                    elif alias.name == "random":
                        stdlib_random_aliases.add(local)
        numpy_aliases.add("np")

        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(context, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    context, node, numpy_aliases, stdlib_random_aliases
                )

    def _check_import_from(
        self, context: ModuleContext, node: ast.ImportFrom
    ) -> Iterator[Violation]:
        if node.module == "random":
            message = (
                "import of stdlib entropy functions; take a seeded "
                "numpy Generator parameter instead"
            )
        elif node.module in ("numpy.random", "np.random"):
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name not in SAFE_RANDOM_IMPORTS
            )
            if not bad:
                return
            message = (
                f"import of unseeded entropy source(s) {', '.join(bad)} "
                "from numpy.random; take a seeded Generator parameter "
                "instead"
            )
        else:
            return
        if context.is_suppressed(node.lineno, self.code):
            return
        yield context.violation(node, self.code, message)

    def _check_call(
        self,
        context: ModuleContext,
        node: ast.Call,
        numpy_aliases: set,
        stdlib_random_aliases: set,
    ) -> Iterator[Violation]:
        chain = _attribute_chain(node.func)
        message: Optional[str] = None
        if (
            len(chain) == 3
            and chain[0] in numpy_aliases
            and chain[1] == "random"
        ):
            fn = chain[2]
            if fn in SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    message = (
                        f"np.random.{fn}() without a seed; parallel and "
                        "serial runs will diverge — pass an explicit "
                        "seed or accept a Generator parameter"
                    )
            else:
                message = (
                    f"bare np.random.{fn}(...) draws from global state; "
                    "use a seeded np.random.default_rng(seed) / an "
                    "injected Generator so runs stay reproducible"
                )
        elif len(chain) == 2 and chain[0] in stdlib_random_aliases:
            fn = chain[1]
            if fn == "Random":
                if not node.args and not node.keywords:
                    message = (
                        "random.Random() without a seed; pass an "
                        "explicit seed so runs stay reproducible"
                    )
            else:
                message = (
                    f"stdlib random.{fn}(...) draws from global state; "
                    "use a seeded numpy Generator instead"
                )
        if message is None:
            return
        if context.is_suppressed(node.lineno, self.code):
            return
        yield context.violation(node, self.code, message)
