"""skylint — repo-native static analysis for the skycube templates.

The paper's methodology (one architecture-oblivious control flow,
per-architecture hooks) and PR 1's shared-memory executor both rest on
contracts that Python will not enforce at runtime: hooks matching
their architecture, shared segments always unlinked, RNG always
seeded, dominance defined exactly once.  This package enforces them
statically; ``python -m repro.analysis`` is the CLI and
``docs/ANALYSIS.md`` documents every rule.

Importing the rule modules here is what populates the registry.
"""

from repro.analysis import (  # noqa: F401
    blocking,
    determinism,
    dominance,
    hooks,
    loops,
    shm,
)
from repro.analysis.base import (
    Allowlist,
    ModuleContext,
    Rule,
    RULE_REGISTRY,
    Violation,
    all_rules,
    module_name,
    register_rule,
)
from repro.analysis.cli import main
from repro.analysis.runner import AnalysisReport, analyse_paths, iter_python_files

__all__ = [
    "Allowlist",
    "AnalysisReport",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "Violation",
    "all_rules",
    "analyse_paths",
    "iter_python_files",
    "main",
    "module_name",
    "register_rule",
]
