"""skylint — repo-native, flow-aware static analysis.

The paper's methodology (one architecture-oblivious control flow,
per-architecture hooks) and the process/async serving tier both rest
on contracts that Python will not enforce at runtime: hooks matching
their architecture, shared segments always unlinked on every path,
coroutines never reaching a blocking call through any chain of frames,
published snapshots never written, uint64 shifts provably in range.
This package enforces them statically — per-module AST rules plus
project-wide rules over a package call graph
(:mod:`repro.analysis.callgraph`) and a per-function CFG walker
(:mod:`repro.analysis.flow`) — with an incremental cache, SARIF
output and baseline management.  ``python -m repro.analysis`` is the
CLI and ``docs/ANALYSIS.md`` documents every rule.

Importing the rule modules here is what populates the registry.
"""

from repro.analysis import (  # noqa: F401
    accel,
    blocking,
    determinism,
    dominance,
    domains,
    hooks,
    immutability,
    loops,
    shm,
)
from repro.analysis.base import (
    Allowlist,
    ModuleContext,
    ProjectRule,
    Rule,
    RULE_REGISTRY,
    Violation,
    all_rules,
    known_codes,
    module_name,
    register_rule,
)
from repro.analysis.baseline import Baseline
from repro.analysis.cache import LintCache
from repro.analysis.callgraph import CallGraph, ProjectContext
from repro.analysis.cli import main
from repro.analysis.flow import FlowGraph, ResourceSpec, track_resource
from repro.analysis.runner import AnalysisReport, analyse_paths, iter_python_files
from repro.analysis.sarif import sarif_document

__all__ = [
    "Allowlist",
    "AnalysisReport",
    "Baseline",
    "CallGraph",
    "FlowGraph",
    "LintCache",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "ResourceSpec",
    "Rule",
    "RULE_REGISTRY",
    "Violation",
    "all_rules",
    "analyse_paths",
    "iter_python_files",
    "known_codes",
    "main",
    "module_name",
    "register_rule",
    "sarif_document",
    "track_resource",
]
