"""Package-wide call graph for the flow-aware skylint rules.

The per-module rules (SKY001–SKY501) see one AST at a time; the
contracts added for the sharded serving tier — a coroutine must not
block *transitively*, a shared segment must be released even when the
cleanup lives in a helper, a published snapshot must not be mutated two
calls away — need to know who calls whom across the whole package.
This module provides that:

* :class:`ProjectContext` — every parsed module of one analysis run,
  plus the project import graph (which also keys the incremental
  cache's dependency hashes).
* :class:`CallGraph` — function-level nodes (``module:qualname``),
  edges resolved through import tables, local class instantiation and
  a conservative method-dispatch approximation (``self.m()`` binds to
  the enclosing class hierarchy *and* project subclass overrides;
  ``obj.m()`` on an unknown receiver binds only when exactly one
  project class defines ``m``), with a memoised transitive closure.
* :class:`FunctionSummary` — per-function effect summaries (methods
  invoked on each parameter, parameters mutated or escaped), closed
  transitively so rules can ask "does ``helper(seg)`` release the
  segment?" without re-walking helper bodies.

Resolution is deliberately *under*-approximating for unknown
receivers: a missing edge can hide a true positive, but a spurious
edge manufactures false positives in every rule built on top — and a
linter that cries wolf gets turned off.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import ModuleContext, module_name

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "FunctionSummary",
    "CallGraph",
    "ProjectContext",
]

#: Methods whose argument does not acquire the receiver's identity —
#: calls like ``x.copy()`` produce an independent object.
_FRESH_METHODS = frozenset({"copy", "tolist", "astype", "item", "items"})


def _dotted_chain(node: ast.expr) -> List[str]:
    """``a.b.c`` → ``["a", "b", "c"]`` (empty for non-name chains)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return parts[::-1]
    return []


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with its source location."""

    caller: str
    callee: str
    path: str
    line: int
    col: int
    #: The call expression itself (excluded from equality/hash).
    call: ast.Call = field(compare=False, repr=False, default=None)  # type: ignore[assignment]


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    fid: str  # "module:qualname"
    module: str
    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    class_name: Optional[str]
    path: str
    lineno: int
    params: Tuple[str, ...]


@dataclass
class ClassInfo:
    """One class: its methods and base-class names (unresolved)."""

    name: str
    module: str
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fid
    bases: List[str] = field(default_factory=list)


@dataclass
class FunctionSummary:
    """Transitive per-parameter effects of one function.

    ``param_methods[i]`` holds every method name the function (or
    anything it calls with that parameter) may invoke on argument
    ``i``; ``mutated`` marks parameters written through (subscript
    store, in-place op, mutating array method); ``escaped`` marks
    parameters stored beyond the call (attribute/container/global
    store, returned) so lifecycle rules stop tracking them.
    """

    param_methods: Dict[int, Set[str]] = field(default_factory=dict)
    mutated: Set[int] = field(default_factory=set)
    escaped: Set[int] = field(default_factory=set)


#: Method names that mutate their receiver in place (numpy arrays and
#: the containers the serving tier publishes).
MUTATING_METHODS = frozenset(
    {
        "fill", "sort", "partition", "put", "itemset", "resize",
        "byteswap", "setflags",
        "append", "extend", "insert", "insert_batch", "update",
        "setdefault", "pop", "popitem", "clear", "remove", "add",
        "discard",
    }
)

#: Method names far too generic for the unique-definition dispatch
#: heuristic: a ``writer.write(...)`` on an asyncio StreamWriter must
#: not bind to the one project class that happens to define ``write``.
AMBIGUOUS_METHODS = frozenset(
    {
        "write", "read", "open", "close", "flush", "send", "recv",
        "get", "set", "run", "start", "stop", "join", "wait",
        "acquire", "release", "submit", "map", "shutdown", "format",
        "render", "parse", "load", "save", "build", "check", "copy",
        "drain", "connect", "accept", "items", "keys", "values",
    }
)


class ProjectContext:
    """Every module of one analysis run, parsed once and indexed."""

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.contexts: List[ModuleContext] = list(contexts)
        self.modules: Dict[str, ModuleContext] = {}
        for context in self.contexts:
            # First definition wins: fixtures may shadow module names.
            self.modules.setdefault(context.module, context)
        self._callgraph: Optional[CallGraph] = None
        self._imports: Optional[Dict[str, Set[str]]] = None
        self._closure: Dict[str, Set[str]] = {}

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "ProjectContext":
        contexts = []
        for path in paths:
            try:
                contexts.append(ModuleContext.parse(path))
            except (SyntaxError, UnicodeDecodeError):
                continue  # reported separately by the runner
        return cls(contexts)

    @property
    def callgraph(self) -> "CallGraph":
        if self._callgraph is None:
            self._callgraph = CallGraph(self)
        return self._callgraph

    # -- import graph (cache dependency keys) --------------------------

    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """``module -> project modules it imports`` (direct only)."""
        if self._imports is None:
            graph: Dict[str, Set[str]] = {}
            for context in self.contexts:
                graph[context.module] = {
                    dep
                    for dep in module_imports(context.tree, context.module)
                    if dep in self.modules and dep != context.module
                }
            self._imports = graph
        return self._imports

    def dependency_closure(self, module: str) -> Set[str]:
        """Transitive project imports of ``module`` (excluding itself)."""
        cached = self._closure.get(module)
        if cached is not None:
            return cached
        graph = self.import_graph
        seen: Set[str] = set()
        stack = list(graph.get(module, ()))
        while stack:
            dep = stack.pop()
            if dep in seen or dep == module:
                continue
            seen.add(dep)
            stack.extend(graph.get(dep, ()))
        self._closure[module] = seen
        return seen


def module_imports(tree: ast.Module, module: str) -> Set[str]:
    """Dotted modules imported by ``tree`` (absolute, plus relative
    imports resolved against ``module``'s package)."""
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.split(".")
                # level 1 = current package, 2 = parent, ...
                keep = len(base_parts) - node.level
                base = ".".join(base_parts[:keep]) if keep > 0 else ""
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if base:
                found.add(base)
                # `from pkg import sub` may bind a submodule.
                for alias in node.names:
                    found.add(f"{base}.{alias.name}")
    return found


class _ModuleBindings:
    """Name-resolution tables for one module: imports, defs, classes."""

    def __init__(self, context: ModuleContext) -> None:
        self.module = context.module
        #: local alias -> dotted module path ("np" -> "numpy").
        self.import_roots: Dict[str, str] = {}
        #: local name -> (source module, original name).
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_roots[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.import_roots[root] = root
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (node.module, alias.name)
            elif isinstance(node, ast.ImportFrom) and node.level:
                base_parts = self.module.split(".")
                keep = len(base_parts) - node.level
                base = ".".join(base_parts[:keep]) if keep > 0 else ""
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
                if not base:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (base, alias.name)


class CallGraph:
    """Function-level call graph over a :class:`ProjectContext`."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}  # "module:Class" -> info
        self._class_by_name: Dict[str, List[str]] = {}  # bare -> keys
        self._methods_by_name: Dict[str, List[str]] = {}  # name -> fids
        self._bindings: Dict[str, _ModuleBindings] = {}
        self.edges: Dict[str, List[CallSite]] = {}
        self._reachable: Dict[str, Set[str]] = {}
        self._summaries: Optional[Dict[str, FunctionSummary]] = None
        self._index()
        self._link()

    # -- pass 1: index every function and class ------------------------

    def _index(self) -> None:
        for context in self.project.contexts:
            if self.project.modules.get(context.module) is not context:
                continue  # shadowed duplicate module name
            self._bindings[context.module] = _ModuleBindings(context)
            self._index_body(
                context, context.tree.body, qualname="", class_name=None
            )

    def _index_body(
        self,
        context: ModuleContext,
        body: Sequence[ast.stmt],
        qualname: str,
        class_name: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{qualname}.{node.name}" if qualname else node.name
                fid = f"{context.module}:{inner}"
                params = tuple(
                    arg.arg
                    for arg in (
                        node.args.posonlyargs
                        + node.args.args
                        + node.args.kwonlyargs
                    )
                )
                info = FunctionInfo(
                    fid=fid,
                    module=context.module,
                    qualname=inner,
                    name=node.name,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    class_name=class_name,
                    path=str(context.path),
                    lineno=node.lineno,
                    params=params,
                )
                self.functions[fid] = info
                if class_name is not None and "." not in qualname:
                    key = f"{context.module}:{class_name}"
                    self.classes[key].methods[node.name] = fid
                    self._methods_by_name.setdefault(node.name, []).append(
                        fid
                    )
                # Nested defs keep the lexical chain but leave the
                # class scope: `self` no longer binds the class.
                self._index_body(context, node.body, inner, None)
            elif isinstance(node, ast.ClassDef):
                inner = f"{qualname}.{node.name}" if qualname else node.name
                key = f"{context.module}:{node.name}"
                self.classes[key] = ClassInfo(
                    name=node.name,
                    module=context.module,
                    bases=[
                        ".".join(_dotted_chain(base)) or ""
                        for base in node.bases
                    ],
                )
                self._class_by_name.setdefault(node.name, []).append(key)
                self._index_body(
                    context, node.body, inner, class_name=node.name
                )

    # -- pass 2: resolve call edges -------------------------------------

    def _link(self) -> None:
        for info in self.functions.values():
            sites: List[CallSite] = []
            local_types = self._local_types(info)
            for call in _own_calls(info.node):
                for callee in self._resolve(info, call, local_types):
                    sites.append(
                        CallSite(
                            caller=info.fid,
                            callee=callee,
                            path=info.path,
                            line=call.lineno,
                            col=call.col_offset + 1,
                            call=call,
                        )
                    )
            self.edges[info.fid] = sites

    def _local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """``var -> class key`` for ``var = ClassName(...)`` bindings."""
        types: Dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            chain = _dotted_chain(value.func)
            if not chain:
                continue
            key = self._resolve_class(info.module, chain)
            if key is not None:
                types[target.id] = key
        return types

    def _resolve_class(
        self, module: str, chain: List[str]
    ) -> Optional[str]:
        """Resolve a dotted name chain to a project class key, if any."""
        bindings = self._bindings.get(module)
        if bindings is None:
            return None
        head = chain[0]
        if len(chain) == 1:
            key = f"{module}:{head}"
            if key in self.classes:
                return key
            imported = bindings.from_imports.get(head)
            if imported is not None:
                src_module, original = imported
                key = f"{src_module}:{original}"
                if key in self.classes:
                    return key
                # `from pkg import Name` re-exported via __init__.
                return self._reexported_class(src_module, original)
        elif len(chain) >= 2:
            target = self._resolve_module_prefix(module, chain)
            if target is not None:
                mod, rest = target
                if len(rest) == 1:
                    key = f"{mod}:{rest[0]}"
                    if key in self.classes:
                        return key
                    return self._reexported_class(mod, rest[0])
        return None

    def _reexported_class(
        self, module: str, name: str
    ) -> Optional[str]:
        """Follow one level of ``from x import Name`` re-export."""
        bindings = self._bindings.get(module)
        if bindings is None:
            return None
        imported = bindings.from_imports.get(name)
        if imported is None:
            return None
        src_module, original = imported
        key = f"{src_module}:{original}"
        return key if key in self.classes else None

    def _resolve_module_prefix(
        self, module: str, chain: List[str]
    ) -> Optional[Tuple[str, List[str]]]:
        """Split ``chain`` into (project module, remainder) if possible."""
        bindings = self._bindings.get(module)
        if bindings is None:
            return None
        head = chain[0]
        # `from repro.engine import parallel` binds a submodule name.
        imported = bindings.from_imports.get(head)
        if imported is not None:
            src_module, original = imported
            candidate = f"{src_module}.{original}"
            if candidate in self.project.modules:
                return candidate, chain[1:]
        root = bindings.import_roots.get(head)
        if root is not None:
            # Longest dotted prefix that names a project module.
            parts = [root] + chain[1:]
            for cut in range(len(parts), 0, -1):
                candidate = ".".join(parts[:cut])
                if candidate in self.project.modules:
                    return candidate, chain[cut:]
        return None

    def _resolve(
        self,
        info: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, str],
    ) -> List[str]:
        chain = _dotted_chain(call.func)
        if not chain:
            return []
        module = info.module
        bindings = self._bindings[module]
        if len(chain) == 1:
            name = chain[0]
            # Nested function defined in this (or an enclosing) scope.
            scope = info.qualname
            while scope:
                fid = f"{module}:{scope}.{name}"
                if fid in self.functions:
                    return [fid]
                scope = scope.rsplit(".", 1)[0] if "." in scope else ""
            fid = f"{module}:{name}"
            if fid in self.functions:
                return [fid]
            class_key = self._resolve_class(module, chain)
            if class_key is not None:
                return self._constructor(class_key)
            imported = bindings.from_imports.get(name)
            if imported is not None:
                src_module, original = imported
                fid = f"{src_module}:{original}"
                if fid in self.functions:
                    return [fid]
            return []
        # Attribute chains.
        head = chain[0]
        method = chain[-1]
        if head in ("self", "cls") and len(chain) == 2:
            owner = info.class_name
            if owner is not None:
                return self._dispatch(module, owner, method)
            return []
        if head in local_types and len(chain) == 2:
            key = local_types[head]
            cls = self.classes[key]
            return self._dispatch(cls.module, cls.name, method)
        class_key = self._resolve_class(module, chain[:-1])
        if class_key is not None:
            # ClassName.method(...) or module.ClassName(...) paths.
            cls = self.classes[class_key]
            found = cls.methods.get(method)
            if found is not None:
                return [found]
            return []
        target = self._resolve_module_prefix(module, chain)
        if target is not None:
            mod, rest = target
            if len(rest) == 1:
                fid = f"{mod}:{rest[0]}"
                if fid in self.functions:
                    return [fid]
                key = f"{mod}:{rest[0]}"
                if key in self.classes:
                    return self._constructor(key)
            return []
        # Unknown receiver: bind only when the method name is defined
        # exactly once in the whole project (unambiguous dispatch) and
        # is distinctive enough that a stdlib object could not plausibly
        # answer it too.
        candidates = self._methods_by_name.get(method, [])
        if (
            len(candidates) == 1
            and method not in MUTATING_METHODS
            and method not in AMBIGUOUS_METHODS
        ):
            return [candidates[0]]
        return []

    def _constructor(self, class_key: str) -> List[str]:
        init = self.classes[class_key].methods.get("__init__")
        return [init] if init is not None else []

    def _dispatch(
        self, module: str, class_name: str, method: str
    ) -> List[str]:
        """Conservative dispatch: the class, its project ancestors and
        any project subclass override."""
        results: List[str] = []
        seen: Set[str] = set()
        # Up the hierarchy: first definition found wins (MRO-ish).
        stack = [f"{module}:{class_name}"]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            cls = self.classes.get(key)
            if cls is None:
                continue
            found = cls.methods.get(method)
            if found is not None:
                results.append(found)
            else:
                for base in cls.bases:
                    base_key = self._resolve_class(
                        cls.module, base.split(".")
                    )
                    if base_key is not None:
                        stack.append(base_key)
        # Down the hierarchy: subclass overrides may run instead.
        for key, cls in self.classes.items():
            if key in seen:
                continue
            if class_name in {base.split(".")[-1] for base in cls.bases}:
                found = cls.methods.get(method)
                if found is not None:
                    results.append(found)
        return results

    # -- queries --------------------------------------------------------

    def callees(self, fid: str) -> List[CallSite]:
        return self.edges.get(fid, [])

    def reachable(
        self, fid: str, async_ok: bool = True
    ) -> Set[str]:
        """Every function transitively callable from ``fid`` (memoised).

        ``async_ok=False`` stops traversal at coroutine callees: the
        loop-blocking analysis follows only synchronous control flow
        (an awaited coroutine yields the loop back; its own body is
        analysed as its own entry point).
        """
        key = fid if async_ok else f"{fid}|sync"
        cached = self._reachable.get(key)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [fid]
        while stack:
            current = stack.pop()
            for site in self.edges.get(current, ()):  # resolved edges
                callee = site.callee
                if callee in seen:
                    continue
                info = self.functions.get(callee)
                if info is None:
                    continue
                if not async_ok and info.is_async:
                    continue
                seen.add(callee)
                stack.append(callee)
        self._reachable[key] = seen
        return seen

    def find_path(
        self, start: str, targets: Set[str], async_ok: bool = True
    ) -> Optional[List[CallSite]]:
        """Shortest call path from ``start`` into ``targets`` (BFS)."""
        if not targets:
            return None
        parents: Dict[str, CallSite] = {}
        queue: List[str] = [start]
        seen = {start}
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            for site in self.edges.get(current, ()):
                callee = site.callee
                if callee in seen:
                    continue
                info = self.functions.get(callee)
                if info is None:
                    continue
                if not async_ok and info.is_async:
                    continue
                seen.add(callee)
                parents[callee] = site
                if callee in targets:
                    path: List[CallSite] = []
                    node = callee
                    while node != start:
                        site = parents[node]
                        path.append(site)
                        node = site.caller
                    return path[::-1]
                queue.append(callee)
        return None

    # -- per-parameter effect summaries ---------------------------------

    @property
    def summaries(self) -> Dict[str, FunctionSummary]:
        """Transitive :class:`FunctionSummary` per function (fixpoint)."""
        if self._summaries is None:
            self._summaries = self._build_summaries()
        return self._summaries

    def _build_summaries(self) -> Dict[str, FunctionSummary]:
        direct: Dict[str, FunctionSummary] = {
            fid: _direct_summary(info) for fid, info in self.functions.items()
        }
        # Propagate through argument passing until stable.  Each pass
        # folds callee effects onto caller parameters forwarded as
        # positional arguments.
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for fid, info in self.functions.items():
                summary = direct[fid]
                param_index = {name: i for i, name in enumerate(info.params)}
                for site in self.edges.get(fid, ()):
                    if site.call is None:
                        continue
                    callee_summary = direct.get(site.callee)
                    callee_info = self.functions.get(site.callee)
                    if callee_summary is None or callee_info is None:
                        continue
                    offset = 1 if callee_info.class_name else 0
                    for arg_pos, arg in enumerate(site.call.args):
                        if not isinstance(arg, ast.Name):
                            continue
                        here = param_index.get(arg.id)
                        if here is None:
                            continue
                        there = arg_pos + offset
                        methods = callee_summary.param_methods.get(
                            there, set()
                        )
                        bucket = summary.param_methods.setdefault(
                            here, set()
                        )
                        if not methods <= bucket:
                            bucket |= methods
                            changed = True
                        if (
                            there in callee_summary.mutated
                            and here not in summary.mutated
                        ):
                            summary.mutated.add(here)
                            changed = True
                        if (
                            there in callee_summary.escaped
                            and here not in summary.escaped
                        ):
                            summary.escaped.add(here)
                            changed = True
        return direct


def _own_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes lexically inside ``node``, excluding nested defs."""

    def visit(current: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from visit(child)

    yield from visit(node)


def _direct_summary(info: FunctionInfo) -> FunctionSummary:
    """Effects visible in the function body itself (no callees)."""
    summary = FunctionSummary()
    index = {name: i for i, name in enumerate(info.params)}

    def param_of(expr: ast.expr) -> Optional[int]:
        if isinstance(expr, ast.Name):
            return index.get(expr.id)
        return None

    for node in _walk_own(info.node):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            which = param_of(node.func.value)
            if which is not None:
                method = node.func.attr
                summary.param_methods.setdefault(which, set()).add(method)
                if method in MUTATING_METHODS and not (
                    method == "setflags" and _sets_readonly(node)
                ):
                    summary.mutated.add(which)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = target.value
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    which = param_of(base)
                    if which is not None:
                        summary.mutated.add(which)
                elif isinstance(target, ast.Attribute):
                    root = target.value
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    which = param_of(root)
                    if which is not None:
                        # `param.x = ...` mutates; `self.x = param`
                        # escapes (handled below via value side).
                        summary.mutated.add(which)
            value = node.value if isinstance(node, ast.Assign) else None
            if value is not None:
                for target in node.targets:  # type: ignore[union-attr]
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        which = param_of(value)
                        if which is not None:
                            summary.escaped.add(which)
        elif isinstance(node, ast.Return) and node.value is not None:
            which = param_of(node.value)
            if which is not None:
                summary.escaped.add(which)
    return summary


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """ast.walk limited to the function's own body (no nested defs)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _sets_readonly(call: ast.Call) -> bool:
    """True for ``setflags(write=False)`` — the immutability idiom."""
    for keyword in call.keywords:
        if keyword.arg == "write" and isinstance(
            keyword.value, ast.Constant
        ):
            return keyword.value.value is False
    return False
