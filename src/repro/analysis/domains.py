"""Bit-width and bounds domain checks (SKY602).

The packed engine's correctness rests on two numeric contracts that
crash (or silently wrap) only at runtime, on the right input:

* **uint64 shift width.**  ``np.uint64(x) << s`` with ``s >= 64`` is
  undefined — numpy wraps the shift count on most platforms, so bit
  ``2**64`` quietly becomes bit ``1`` and a skyline gains phantom
  members.  Every shift in :mod:`repro.engine.packed` is therefore
  carefully pre-masked (``divmod(shift, WORD_BITS)``, ``bits & 63``)
  — an invariant nothing enforced until now.
* **Exponential table sizes.**  Presence and down-closure tables grow
  as ``2**d`` / ``4**d``; built without the ``d <= PACKED_MAX_D``
  guard they allocate terabytes for an innocent-looking ``d = 40``.

This rule runs a small interval (constant-range) analysis over each
function — module-level integer constants, ``divmod``/``%``/``& c``
arithmetic, ``range()`` loop bounds, and branch narrowing from guards
like ``if bit_shift:`` or ``if not 1 <= d <= PACKED_MAX_D: raise`` —
and flags (a) any uint64-typed shift whose count is not provably
``< 64`` and (b) any numpy allocation whose size is exponential in an
unguarded variable.  Private helpers (``_popcounts``) with project
callers are exempt from (b): the bound is their public entry's
contract, visible in the call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.base import ProjectRule, Violation, register_rule

__all__ = ["DomainBoundsRule", "IntRange"]

#: numpy allocation entry points whose size argument we bound-check.
_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full"})

#: An exponential-size expression larger than this is suspicious
#: unless guarded (2**28 bools = 256 MiB; every legitimate constant
#: table in the repo stays below it).
_SIZE_BITS_LIMIT = 28


@dataclass(frozen=True)
class IntRange:
    """A conservative ``[lo, hi]`` integer interval (None = unbounded)."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    @staticmethod
    def const(value: int) -> "IntRange":
        return IntRange(value, value)

    def join(self, other: "IntRange") -> "IntRange":
        lo = None if self.lo is None or other.lo is None else min(
            self.lo, other.lo
        )
        hi = None if self.hi is None or other.hi is None else max(
            self.hi, other.hi
        )
        return IntRange(lo, hi)


UNKNOWN = IntRange()


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _chain(node: ast.expr) -> List[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return parts[::-1]
    return []


class _Evaluator:
    """Range evaluation over one function, with a sequential env."""

    def __init__(self, consts: Dict[str, int]) -> None:
        self.consts = consts
        self.env: Dict[str, IntRange] = {}

    def copy(self) -> "_Evaluator":
        clone = _Evaluator(self.consts)
        clone.env = dict(self.env)
        return clone

    # -- expression ranges ---------------------------------------------

    def range_of(self, expr: ast.expr) -> IntRange:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, int
            ):
                return UNKNOWN
            return IntRange.const(expr.value)
        if isinstance(expr, ast.Name):
            found = self.env.get(expr.id)
            if found is not None:
                return found
            const = self.consts.get(expr.id)
            if const is not None:
                return IntRange.const(const)
            return UNKNOWN
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            inner = self.range_of(expr.operand)
            return IntRange(
                None if inner.hi is None else -inner.hi,
                None if inner.lo is None else -inner.lo,
            )
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.IfExp):
            narrowed = self.copy()
            narrowed.narrow(expr.test)
            then = narrowed.range_of(expr.body)
            other = self.range_of(expr.orelse)
            return then.join(other)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        return UNKNOWN

    def _binop(self, expr: ast.BinOp) -> IntRange:
        left = self.range_of(expr.left)
        right = self.range_of(expr.right)
        op = expr.op
        if isinstance(op, ast.Add):
            return IntRange(_add(left.lo, right.lo), _add(left.hi, right.hi))
        if isinstance(op, ast.Sub):
            return IntRange(
                _add(left.lo, None if right.hi is None else -right.hi),
                _add(left.hi, None if right.lo is None else -right.lo),
            )
        if isinstance(op, ast.Mult):
            if (
                left.lo is not None and left.lo >= 0
                and right.lo is not None and right.lo >= 0
            ):
                hi = (
                    None
                    if left.hi is None or right.hi is None
                    else left.hi * right.hi
                )
                return IntRange(left.lo * right.lo, hi)
            return UNKNOWN
        if isinstance(op, ast.FloorDiv):
            if (
                right.lo is not None and right.lo > 0
                and left.lo is not None and left.lo >= 0
            ):
                hi = None if left.hi is None else left.hi // right.lo
                return IntRange(0, hi)
            return UNKNOWN
        if isinstance(op, ast.Mod):
            # Python %: with a positive divisor the result is [0, n-1].
            if right.lo is not None and right.lo > 0 and right.hi is not None:
                return IntRange(0, right.hi - 1)
            return UNKNOWN
        if isinstance(op, ast.BitAnd):
            # Masking idiom: `x & 63` lands in [0, 63].
            for side in (left, right):
                if (
                    side.lo is not None
                    and side.lo >= 0
                    and side.hi is not None
                ):
                    return IntRange(0, side.hi)
            return UNKNOWN
        if isinstance(op, ast.LShift):
            if (
                left.lo is not None and left.lo >= 0
                and right.lo is not None and right.lo >= 0
            ):
                hi = (
                    None
                    if left.hi is None or right.hi is None
                    else left.hi << min(right.hi, 1024)
                )
                return IntRange(left.lo << min(right.lo, 1024), hi)
            return UNKNOWN
        if isinstance(op, ast.RShift):
            if left.lo is not None and left.lo >= 0:
                return IntRange(0, left.hi)
            return UNKNOWN
        if isinstance(op, ast.Pow):
            if (
                left.lo is not None and left.lo >= 0
                and right.lo is not None and right.lo >= 0
            ):
                hi = (
                    None
                    if left.hi is None or right.hi is None
                    else left.hi ** min(right.hi, 256)
                )
                return IntRange(left.lo ** min(right.lo, 256), hi)
            return UNKNOWN
        return UNKNOWN

    def _call(self, expr: ast.Call) -> IntRange:
        # `.astype(...)` keeps the numeric range of its receiver, even
        # when the receiver is an arbitrary expression like (x & 63).
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "astype"
        ):
            return self.range_of(expr.func.value)
        chain = _chain(expr.func)
        tail = chain[-1] if chain else None
        # Casts keep the numeric range.
        if tail in ("uint64", "int64", "intp", "int"):
            if expr.args:
                return self.range_of(expr.args[0])
            return UNKNOWN
        if tail == "min" and len(chain) == 1 and expr.args:
            result = self.range_of(expr.args[0])
            for arg in expr.args[1:]:
                other = self.range_of(arg)
                hi = (
                    None
                    if result.hi is None and other.hi is None
                    else min(
                        x for x in (result.hi, other.hi) if x is not None
                    )
                )
                result = IntRange(result.lo, hi)
            return result
        if tail == "max" and len(chain) == 1 and expr.args:
            result = self.range_of(expr.args[0])
            for arg in expr.args[1:]:
                other = self.range_of(arg)
                lo = (
                    None
                    if result.lo is None and other.lo is None
                    else max(
                        x for x in (result.lo, other.lo) if x is not None
                    )
                )
                result = IntRange(lo, result.hi)
            return result
        if tail == "popcount" and expr.args:
            return IntRange(0, None)
        if tail == "len":
            return IntRange(0, None)
        return UNKNOWN

    # -- statement effects ---------------------------------------------

    def assign(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
            if isinstance(target, ast.Name):
                self.env[target.id] = self.range_of(value)
            elif isinstance(target, ast.Tuple) and isinstance(
                value, ast.Call
            ):
                chain = _chain(value.func)
                if (
                    chain == ["divmod"]
                    and len(value.args) == 2
                    and len(target.elts) == 2
                    and all(
                        isinstance(e, ast.Name) for e in target.elts
                    )
                ):
                    dividend = self.range_of(value.args[0])
                    divisor = self.range_of(value.args[1])
                    quot = UNKNOWN
                    rem = UNKNOWN
                    if (
                        divisor.lo is not None
                        and divisor.lo > 0
                        and divisor.hi is not None
                    ):
                        rem = IntRange(0, divisor.hi - 1)
                        if dividend.lo is not None and dividend.lo >= 0:
                            quot = IntRange(
                                0,
                                None
                                if dividend.hi is None
                                else dividend.hi // divisor.lo,
                            )
                    self.env[target.elts[0].id] = quot  # type: ignore[attr-defined]
                    self.env[target.elts[1].id] = rem  # type: ignore[attr-defined]
                else:
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            self.env[element.id] = UNKNOWN
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if stmt.value is not None:
                self.env[stmt.target.id] = self.range_of(stmt.value)
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            self.env[stmt.target.id] = UNKNOWN

    # -- branch narrowing ----------------------------------------------

    def narrow(self, test: ast.expr, negate: bool = False) -> None:
        """Refine the env under ``test`` (or ``not test``)."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self.narrow(test.operand, not negate)
            return
        if isinstance(test, ast.Name) and not negate:
            # Truthiness: a non-negative counter is at least 1.
            current = self.env.get(test.id, UNKNOWN)
            if current.lo is not None and current.lo >= 0:
                self.env[test.id] = IntRange(
                    max(current.lo, 1), current.hi
                )
            return
        if isinstance(test, ast.Compare) and not negate:
            self._narrow_compare(test)

    def _narrow_compare(self, test: ast.Compare) -> None:
        operands = [test.left] + list(test.comparators)
        for i, op in enumerate(test.ops):
            left, right = operands[i], operands[i + 1]
            if isinstance(right, ast.Name):
                bound = self.range_of(left)
                self._apply_bound(right.id, op, bound, is_left=False)
            if isinstance(left, ast.Name):
                bound = self.range_of(right)
                self._apply_bound(left.id, op, bound, is_left=True)

    def _apply_bound(
        self, name: str, op: ast.cmpop, bound: IntRange, is_left: bool
    ) -> None:
        current = self.env.get(name, UNKNOWN)
        lo, hi = current.lo, current.hi
        if is_left:
            # name <op> bound
            if isinstance(op, ast.Lt) and bound.hi is not None:
                hi = bound.hi - 1 if hi is None else min(hi, bound.hi - 1)
            elif isinstance(op, (ast.LtE, ast.Eq)) and bound.hi is not None:
                hi = bound.hi if hi is None else min(hi, bound.hi)
            elif isinstance(op, ast.Gt) and bound.lo is not None:
                lo = bound.lo + 1 if lo is None else max(lo, bound.lo + 1)
            elif isinstance(op, (ast.GtE, ast.Eq)) and bound.lo is not None:
                lo = bound.lo if lo is None else max(lo, bound.lo)
        else:
            # bound <op> name
            if isinstance(op, ast.Lt) and bound.lo is not None:
                lo = bound.lo + 1 if lo is None else max(lo, bound.lo + 1)
            elif isinstance(op, (ast.LtE, ast.Eq)) and bound.lo is not None:
                lo = bound.lo if lo is None else max(lo, bound.lo)
            elif isinstance(op, ast.Gt) and bound.hi is not None:
                hi = bound.hi - 1 if hi is None else min(hi, bound.hi - 1)
            elif isinstance(op, (ast.GtE, ast.Eq)) and bound.hi is not None:
                hi = bound.hi if hi is None else min(hi, bound.hi)
        self.env[name] = IntRange(lo, hi)


def module_constants(tree: ast.Module) -> Dict[str, int]:
    """Top-level integer constants (``WORD_BITS = 64``, ``X = 1 << 26``)."""
    consts: Dict[str, int] = {}
    evaluator = _Evaluator(consts)
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            found = evaluator.range_of(stmt.value)
            if found.lo is not None and found.lo == found.hi:
                consts[target.id] = found.lo
            else:
                consts.pop(target.id, None)
    return consts


@register_rule
class DomainBoundsRule(ProjectRule):
    """SKY602 — provable bit-width and table-size bounds.

    (a) ``np.uint64``-typed shifts need a count provably ``< 64``;
    (b) numpy allocations exponential in a variable need that variable
    guarded (any comparison naming it counts — ``if not 1 <= d <=
    PACKED_MAX_D: raise`` or an enclosing ``(b << shift) <=
    _PRESENCE_LIMIT`` gate), unless the function is a private helper
    with project callers (the public entry owns the bound).
    """

    code = "SKY602"
    name = "bit-width-and-bounds"
    summary = (
        "uint64 shift counts must be provably < 64 and exponential "
        "(2**d / 4**d) table allocations must be guarded by a "
        "dimension bound"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        from repro.analysis.callgraph import ProjectContext

        assert isinstance(project, ProjectContext)
        graph = project.callgraph
        has_callers: Set[str] = {
            site.callee
            for sites in graph.edges.values()
            for site in sites
        }
        consts_by_module: Dict[str, Dict[str, int]] = {}
        for module, context in project.modules.items():
            consts_by_module[module] = module_constants(context.tree)
        # Resolve integer constants imported from project modules.
        for module, context in project.modules.items():
            consts = consts_by_module[module]
            for node in ast.walk(context.tree):
                if not isinstance(node, ast.ImportFrom) or node.level:
                    continue
                source = consts_by_module.get(node.module or "")
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name in source:
                        consts.setdefault(
                            alias.asname or alias.name, source[alias.name]
                        )

        for fid, info in graph.functions.items():
            context = project.modules.get(info.module)
            if context is None:
                continue
            consts = consts_by_module.get(info.module, {})
            walker = _FunctionWalker(self, context, consts)
            walker.private_guarded = (
                info.name.startswith("_") and fid in has_callers
            )
            yield from walker.run(info.node)


class _FunctionWalker:
    """Drives the evaluator through one function body in order."""

    def __init__(self, rule: DomainBoundsRule, context, consts) -> None:
        self.rule = rule
        self.context = context
        self.evaluator = _Evaluator(consts)
        self.private_guarded = False
        self.compare_names: Set[str] = set()
        self.findings: List[Violation] = []

    def run(self, function: ast.AST) -> Iterator[Violation]:
        # Any comparison naming a variable counts as a guard for the
        # allocation check (generous on purpose: a linter that cannot
        # see every guard shape must not cry wolf).
        for node in ast.walk(function):
            if isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        self.compare_names.add(sub.id)
        self._block(getattr(function, "body", []))
        yield from self.findings

    # -- statement traversal -------------------------------------------

    def _block(self, body) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are their own entries
        if isinstance(stmt, ast.If):
            self._inspect(stmt.test)
            raises = all(
                isinstance(s, (ast.Raise, ast.Return, ast.Continue))
                for s in stmt.body
            )
            branch = self.evaluator.copy()
            branch.narrow(stmt.test)
            saved = self.evaluator
            self.evaluator = branch
            self._block(stmt.body)
            self.evaluator = saved
            self._block(stmt.orelse)
            if raises and not stmt.orelse:
                # `if not <bound>: raise` — the fall-through is bound.
                self.evaluator.narrow(
                    ast.UnaryOp(op=ast.Not(), operand=stmt.test)
                )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._inspect(stmt.iter)
            self._bind_loop_target(stmt)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._inspect(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._inspect(item.context_expr)
            self._block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        # Simple statement: inspect expressions, then apply effects.
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._inspect(expr)
        self.evaluator.assign(stmt)

    def _bind_loop_target(self, stmt) -> None:
        target, it = stmt.target, stmt.iter
        inner = it
        if (
            isinstance(inner, ast.Call)
            and _chain(inner.func) == ["reversed"]
            and inner.args
        ):
            inner = inner.args[0]
        if (
            isinstance(target, ast.Name)
            and isinstance(inner, ast.Call)
            and _chain(inner.func) == ["range"]
            and inner.args
        ):
            if len(inner.args) == 1:
                stop = self.evaluator.range_of(inner.args[0])
                self.evaluator.env[target.id] = IntRange(
                    0, None if stop.hi is None else stop.hi - 1
                )
            else:
                start = self.evaluator.range_of(inner.args[0])
                stop = self.evaluator.range_of(inner.args[1])
                self.evaluator.env[target.id] = IntRange(
                    start.lo, None if stop.hi is None else stop.hi - 1
                )
            return
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.evaluator.env[node.id] = UNKNOWN

    # -- expression inspection -----------------------------------------

    def _inspect(
        self, expr: ast.expr, enclosed: Optional[Set[int]] = None
    ) -> None:
        if enclosed is None:
            # Shifts lexically inside a np.uint64(...) cast are uint64
            # shifts even when neither operand says so.
            enclosed = set()
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    chain = _chain(node.func)
                    if chain and chain[-1] == "uint64":
                        for sub in ast.walk(node):
                            if isinstance(sub, ast.BinOp) and isinstance(
                                sub.op, (ast.LShift, ast.RShift)
                            ):
                                enclosed.add(id(sub))
        if isinstance(expr, ast.IfExp):
            # Conditional guards (`x if top < 64 else y`) narrow the
            # body exactly like an if-statement.
            self._inspect(expr.test, enclosed)
            saved = self.evaluator
            branch = saved.copy()
            branch.narrow(expr.test)
            self.evaluator = branch
            self._inspect(expr.body, enclosed)
            self.evaluator = saved
            self._inspect(expr.orelse, enclosed)
            return
        if isinstance(expr, ast.Lambda):
            return  # runs elsewhere, with its own arguments
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.LShift, ast.RShift)
        ):
            if id(expr) in enclosed or self._is_uint64_context(expr):
                self._check_shift(expr)
        elif isinstance(expr, ast.Call):
            self._maybe_check_allocation(expr)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._inspect(child, enclosed)

    def _is_uint64_context(self, shift: ast.BinOp) -> bool:
        """uint64 is provably involved in this shift's operands."""
        for operand in (shift.left, shift.right):
            for node in ast.walk(operand):
                if isinstance(node, ast.Call):
                    chain = _chain(node.func)
                    if chain and chain[-1] == "uint64":
                        return True
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "astype"
                        and any(
                            _chain(a)[-1:] == ["uint64"]
                            for a in node.args
                        )
                    ):
                        return True
        return False

    def _check_shift(self, shift: ast.BinOp) -> None:
        amount = self.evaluator.range_of(shift.right)
        if amount.hi is not None and amount.hi < 64:
            return
        if self.context.is_suppressed(shift.lineno, self.rule.code):
            return
        shown = (
            "unbounded" if amount.hi is None else f"up to {amount.hi}"
        )
        self.findings.append(
            self.context.violation(
                shift,
                self.rule.code,
                f"uint64 shift count can reach >= 64 ({shown}): numpy "
                "wraps the count modulo the word width, silently "
                "corrupting the bitset — mask it (`& 63` / "
                "`divmod(x, WORD_BITS)`) or guard the range first",
            )
        )

    def _maybe_check_allocation(self, call: ast.Call) -> None:
        chain = _chain(call.func)
        if not chain or chain[-1] not in _ALLOCATORS or not call.args:
            return
        shape = call.args[0]
        for node in ast.walk(shape):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.LShift):
                exponent = node.right
            elif isinstance(node.op, ast.Pow) and (
                isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, int)
                and node.left.value >= 2
            ):
                exponent = node.right
            else:
                continue
            bits = self.evaluator.range_of(exponent)
            if bits.hi is not None and bits.hi <= _SIZE_BITS_LIMIT:
                continue
            drivers = {
                sub.id
                for sub in ast.walk(exponent)
                if isinstance(sub, ast.Name)
                and sub.id not in self.evaluator.consts
            }
            if not drivers:
                continue  # explicit constant: the author meant it
            if drivers & self.compare_names:
                continue  # some comparison names the driver: guarded
            if self.private_guarded:
                continue  # private helper; callers own the bound
            if self.context.is_suppressed(call.lineno, self.rule.code):
                continue
            names = ", ".join(sorted(drivers))
            self.findings.append(
                self.context.violation(
                    call,
                    self.rule.code,
                    "exponential table allocation with no bound on "
                    f"{names!r}: size grows as 2**{names} — guard the "
                    "dimension (e.g. `if not 1 <= d <= PACKED_MAX_D: "
                    "raise`) before allocating",
                )
            )
            return  # one finding per allocation is enough