"""Content-hash incremental cache for skylint (mypy-style).

One JSON file per cache directory maps every analysed file to:

* ``hash`` — sha256 of the file's bytes,
* ``imports`` — the *project* modules it imports directly (stored so
  the warm path can compute dependency closures without parsing
  anything),
* ``module_violations`` — raw findings of the per-module rules,
* ``project_violations`` — raw findings of the project (call-graph)
  rules attributed to this file,
* ``deps_hash`` — sha256 over the sorted ``(module, file-hash)`` pairs
  of the file's transitive project imports.

Findings are cached *raw* — before allowlist and baseline filtering —
so editing the allowlist or baseline never invalidates the cache.
A cache entry is valid for the per-module rules when the file hash and
the rules signature match, and for the project rules when the
dependency hash also matches: a change in any transitively-imported
file re-runs the flow-aware rules, exactly like mypy's fine-grained
dependency tracking (coarsened to file granularity).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import Violation

__all__ = ["LintCache", "file_sha256", "rules_signature"]

#: Bump when the entry layout or rule semantics change incompatibly.
CACHE_SCHEMA = 1

_CACHE_FILENAME = "skylint-cache.json"


def file_sha256(path: Path) -> Optional[str]:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return None


def rules_signature(codes: Sequence[str]) -> str:
    """One hash over the active rule set (plus the cache schema)."""
    payload = f"schema={CACHE_SCHEMA};codes={','.join(sorted(codes))}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def deps_hash(dep_hashes: Dict[str, str]) -> str:
    """Hash of the sorted ``module=filehash`` dependency lines."""
    lines = sorted(f"{mod}={h}" for mod, h in dep_hashes.items())
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def _violation_from(record: Dict[str, object]) -> Violation:
    return Violation(
        path=str(record["path"]),
        line=int(record["line"]),  # type: ignore[arg-type]
        col=int(record["col"]),  # type: ignore[arg-type]
        code=str(record["code"]),
        message=str(record["message"]),
        severity=str(record.get("severity", "error")),
    )


class LintCache:
    """Load/store of one cache directory's ``skylint-cache.json``."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / _CACHE_FILENAME
        self.signature: str = ""
        self.entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.project_hits = 0
        self.misses = 0

    def load(self, signature: str) -> None:
        """Read the cache; a signature mismatch empties it wholesale."""
        self.signature = signature
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.entries = {}
            return
        if raw.get("signature") != signature:
            self.entries = {}
            return
        entries = raw.get("files")
        self.entries = entries if isinstance(entries, dict) else {}

    def save(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"signature": self.signature, "files": self.entries}
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)

    # -- queries -------------------------------------------------------

    def entry(self, key: str) -> Optional[Dict[str, object]]:
        return self.entries.get(key)

    def module_hit(self, key: str, file_hash: Optional[str]) -> bool:
        entry = self.entries.get(key)
        return (
            entry is not None
            and file_hash is not None
            and entry.get("hash") == file_hash
        )

    def cached_imports(self, key: str) -> Optional[List[str]]:
        entry = self.entries.get(key)
        if entry is None:
            return None
        imports = entry.get("imports")
        if isinstance(imports, list):
            return [str(i) for i in imports]
        return None

    def cached_violations(self, key: str, which: str) -> List[Violation]:
        entry = self.entries.get(key)
        if entry is None:
            return []
        records = entry.get(which)
        if not isinstance(records, list):
            return []
        return [_violation_from(r) for r in records]

    def store(
        self,
        key: str,
        file_hash: str,
        module: str,
        imports: Sequence[str],
        module_violations: Sequence[Violation],
        project_violations: Sequence[Violation],
        dependency_hash: str,
    ) -> None:
        self.entries[key] = {
            "hash": file_hash,
            "module": module,
            "imports": sorted(imports),
            "module_violations": [v.to_json() for v in module_violations],
            "project_violations": [v.to_json() for v in project_violations],
            "deps_hash": dependency_hash,
        }
