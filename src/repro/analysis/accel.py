"""Accelerator import hygiene (SKY701).

The kernel-backend design of :mod:`repro.engine.jit` rests on one
invariant: ``import repro`` must succeed — and behave identically — on
a machine with nothing but numpy installed.  The registry guarantees it
by probing availability *before* importing a backend module, which only
works if no module outside ``repro.engine.jit`` imports ``numba`` or
``cupy`` at module level (a single stray top-level import anywhere else
turns the optional extra into a hard dependency the moment that module
is pulled in).  SKY701 pins the invariant in lint, where it survives
refactors that no numpy-only CI job would notice until much later.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, Violation, register_rule

__all__ = ["AcceleratorImportRule"]

#: Modules whose import must stay behind the jit registry's probes.
ACCELERATOR_MODULES = frozenset({"numba", "cupy"})

#: The only package allowed to import them at module level: the backend
#: modules themselves, which the registry loads post-probe.
ALLOWED_PREFIX = "repro.engine.jit"


def _accelerator_root(name: str) -> str:
    """The tracked top-level package of a dotted import, or ``""``."""
    root = name.split(".", 1)[0]
    return root if root in ACCELERATOR_MODULES else ""


@register_rule
class AcceleratorImportRule(Rule):
    """SKY701 — numba/cupy imports live inside ``repro.engine.jit``.

    Top-level (module-scope) ``import numba`` / ``from cupy import …``
    outside the jit package makes an optional accelerator a hard
    dependency of whatever imports that module, silently breaking the
    numpy-only default environment.  Function-scope imports are fine —
    they run only when the registry's availability probe has already
    succeeded (or inside a probe's own ``try``).
    """

    code = "SKY701"
    name = "accelerator-import-guarded"
    summary = (
        "top-level numba/cupy imports are only allowed inside "
        "repro.engine.jit (everywhere else, import lazily after an "
        "availability probe)"
    )

    def applies_to(self, module: str) -> bool:
        return not (
            module == ALLOWED_PREFIX
            or module.startswith(ALLOWED_PREFIX + ".")
        )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            root = ""
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = root or _accelerator_root(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = _accelerator_root(node.module)
            if not root:
                continue
            if context.enclosing_function(node) is not None:
                continue  # lazy, post-probe import — the sanctioned idiom
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                f"top-level import of {root!r} outside repro.engine.jit "
                "makes the optional accelerator a hard dependency; move "
                "the import inside the function that needs it, or route "
                "through repro.engine.jit.resolve_backend() so the "
                "registry probes availability first",
            )
