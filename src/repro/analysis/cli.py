"""The ``python -m repro.analysis`` command line.

Human or ``--json`` output, ``--select``/``--ignore`` code filters, an
``--allowlist`` file that grandfathers known violations, and ``--all``
to chain the sibling gates (ruff, mypy) behind one entry point when
they are installed.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.base import Allowlist, all_rules
from repro.analysis.runner import analyse_paths

__all__ = ["main", "build_parser", "DEFAULT_ALLOWLIST"]

#: Allowlist picked up automatically when it exists in the CWD.
DEFAULT_ALLOWLIST = Path("skylint-allow.txt")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "skylint — repo-native static analysis for the skycube "
            "templates: hook contracts, shared-memory hygiene, "
            "determinism and dominance semantics (docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODE",
        help="skip these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--allowlist",
        metavar="FILE",
        default=None,
        help=(
            "allowlist of grandfathered violations "
            f"(default: {DEFAULT_ALLOWLIST} if present)"
        ),
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore any allowlist, report everything",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="run_all",
        help="also run ruff and mypy (when installed) after skylint",
    )
    return parser


def _split_codes(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    codes: List[str] = []
    for value in values:
        codes.extend(code.strip() for code in value.split(",") if code.strip())
    return codes


def _load_allowlist(args: argparse.Namespace) -> Optional[Allowlist]:
    if args.no_allowlist:
        return None
    if args.allowlist is not None:
        return Allowlist.load(Path(args.allowlist))
    if DEFAULT_ALLOWLIST.is_file():
        return Allowlist.load(DEFAULT_ALLOWLIST)
    return None


def _run_companion(module: str, argv: List[str]) -> Optional[int]:
    """Run a sibling gate as ``python -m module argv`` if installed."""
    if importlib.util.find_spec(module) is None:
        print(f"skylint --all: {module} not installed, skipping")
        return None
    command = [sys.executable, "-m", module, *argv]
    print(f"skylint --all: running {' '.join(command[2:])}")
    return subprocess.run(command, check=False).returncode


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    try:
        allowlist = _load_allowlist(args)
        report = analyse_paths(
            [Path(p) for p in args.paths],
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            allowlist=allowlist,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"skylint: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(report.to_json())
    else:
        report.render()
    exit_code = report.exit_code

    if args.run_all:
        ruff_code = _run_companion("ruff", ["check", "."])
        mypy_code = _run_companion(
            "mypy",
            ["-p", "repro.core", "-p", "repro.templates",
             "-p", "repro.engine", "-p", "repro.analysis"],
        )
        for companion in (ruff_code, mypy_code):
            if companion:
                exit_code = exit_code or companion
    return exit_code
