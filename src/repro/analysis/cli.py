"""The ``python -m repro.analysis`` command line.

Text, ``--format json`` or ``--format sarif`` output; ``--select``/
``--ignore`` code filters (unknown codes exit 2 with a suggestion);
``--cache-dir`` for mypy-style incremental re-runs; ``--baseline``/
``--write-baseline`` for adopting the linter on a codebase with
findings; an ``--allowlist`` file that grandfathers known violations
(stale entries warn, ``--fail-on-stale-allowlist`` gates them); and
``--all`` to chain the sibling gates (ruff, mypy) behind one entry
point when they are installed.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.base import Allowlist, all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.runner import analyse_paths

__all__ = ["main", "build_parser", "DEFAULT_ALLOWLIST"]

#: Allowlist picked up automatically when it exists in the CWD.
DEFAULT_ALLOWLIST = Path("skylint-allow.txt")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "skylint — repo-native static analysis for the skycube "
            "templates: hook contracts, shared-memory lifecycle, "
            "transitive event-loop blocking, snapshot immutability and "
            "bit-width bounds (docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif = SARIF 2.1.0 for code scanning)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODE",
        help="skip these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "incremental cache directory: unchanged files (and, for "
            "the flow rules, unchanged dependency closures) replay "
            "cached findings without re-parsing"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse independent modules across N processes",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress the findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--allowlist",
        metavar="FILE",
        default=None,
        help=(
            "allowlist of grandfathered violations "
            f"(default: {DEFAULT_ALLOWLIST} if present)"
        ),
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore any allowlist, report everything",
    )
    parser.add_argument(
        "--fail-on-stale-allowlist",
        action="store_true",
        help=(
            "exit 1 when an allowlist or baseline entry suppresses "
            "nothing (CI keeps the suppression files honest)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="run_all",
        help="also run ruff and mypy (when installed) after skylint",
    )
    return parser


def _split_codes(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    codes: List[str] = []
    for value in values:
        codes.extend(code.strip() for code in value.split(",") if code.strip())
    return codes


def _load_allowlist(args: argparse.Namespace) -> Optional[Allowlist]:
    if args.no_allowlist:
        return None
    if args.allowlist is not None:
        return Allowlist.load(Path(args.allowlist))
    if DEFAULT_ALLOWLIST.is_file():
        return Allowlist.load(DEFAULT_ALLOWLIST)
    return None


def _run_companion(module: str, argv: List[str]) -> Optional[int]:
    """Run a sibling gate as ``python -m module argv`` if installed."""
    if importlib.util.find_spec(module) is None:
        print(f"skylint --all: {module} not installed, skipping")
        return None
    command = [sys.executable, "-m", module, *argv]
    print(f"skylint --all: running {' '.join(command[2:])}")
    return subprocess.run(command, check=False).returncode


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    output_format = "json" if args.json else args.format

    if args.list_rules:
        for rule in all_rules():
            kind = "project" if rule.requires_project else "module"
            print(f"{rule.code}  {rule.name} [{kind}]: {rule.summary}")
        return 0

    try:
        allowlist = _load_allowlist(args)
        baseline = (
            Baseline.load(Path(args.baseline))
            if args.baseline is not None
            else None
        )
        report = analyse_paths(
            [Path(p) for p in args.paths],
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            allowlist=allowlist,
            baseline=baseline,
            cache_dir=(
                Path(args.cache_dir) if args.cache_dir is not None else None
            ),
            jobs=max(args.jobs, 1),
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"skylint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        recorded = Baseline.from_violations(report.violations)
        recorded.write(Path(args.write_baseline))
        print(
            f"skylint: wrote baseline with {len(report.violations)} "
            f"finding(s) to {args.write_baseline}"
        )
        return 0

    if output_format == "json":
        print(report.to_json())
    elif output_format == "sarif":
        from repro.analysis.sarif import sarif_document

        document = sarif_document(
            report.parse_errors + report.violations,
            all_rules(),
            base_dir=Path.cwd(),
        )
        print(json.dumps(document, indent=2))
    else:
        report.render()

    exit_code = report.exit_code
    if args.fail_on_stale_allowlist and report.stale_entries:
        exit_code = exit_code or 1

    if args.run_all:
        ruff_code = _run_companion("ruff", ["check", "."])
        mypy_code = _run_companion(
            "mypy",
            ["-p", "repro.core", "-p", "repro.templates",
             "-p", "repro.engine", "-p", "repro.analysis"],
        )
        for companion in (ruff_code, mypy_code):
            if companion:
                exit_code = exit_code or companion
    return exit_code
