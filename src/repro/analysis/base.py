"""Shared infrastructure of the skylint static-analysis pass.

The pass AST-walks the package and enforces the repo-specific contracts
that keep the paper's template methodology sound in Python: hooks match
their architecture, shared-memory segments cannot leak, parallel and
serial runs stay bit-identical, and dominance semantics live in one
place.  This module holds everything the individual rules share — the
:class:`Violation` record, the :class:`Rule` interface and registry,
per-module AST context (with parent links), per-line suppression
comments and the allowlist that grandfathers known violations.

Suppression: append ``# skylint: disable=SKY001`` (comma-separate for
several codes, or omit ``=...`` to silence every rule) to the flagged
line.

Allowlist: a text file of ``pattern: CODE`` lines, where ``pattern`` is
an :mod:`fnmatch` glob matched against both the file path and the
dotted module name — see :func:`Allowlist.load`.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Violation",
    "Rule",
    "ProjectRule",
    "ModuleContext",
    "Allowlist",
    "RULE_REGISTRY",
    "register_rule",
    "all_rules",
    "known_codes",
    "unknown_code_error",
]

#: ``# skylint: disable`` or ``# skylint: disable=SKY001,SKY102``.
_SUPPRESS_RE = re.compile(
    r"#\s*skylint:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+))?"
)

#: Marks "every code suppressed on this line".
_ALL_CODES = "*"


@dataclass(frozen=True)
class Violation:
    """One finding: a contract broken at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
        }


class ModuleContext:
    """A parsed module plus the derived state every rule needs.

    Parent links let rules reason about enclosing scopes (which class
    owns this ``SharedMemory`` call?  is this pool shut down in a
    ``finally``?) without each rule re-walking the tree.
    """

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.module = module_name(path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._suppressed = _suppressed_codes(self.lines)

    @classmethod
    def parse(cls, path: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        return cls(path, source, ast.parse(source, filename=str(path)))

    # -- tree navigation ----------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor  # type: ignore[return-value]
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def is_with_context(self, node: ast.AST) -> bool:
        """True iff ``node`` is the context expression of a ``with``."""
        parent = self._parents.get(node)
        if isinstance(parent, ast.withitem):
            return parent.context_expr is node
        return False

    # -- suppression --------------------------------------------------

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self._suppressed.get(line)
        if codes is None:
            return False
        return _ALL_CODES in codes or code in codes

    def violation(
        self, node: ast.AST, code: str, message: str, severity: str = "error"
    ) -> Violation:
        return Violation(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
            severity=severity,
        )


def module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path part.

    Files outside any ``repro`` directory (scratch scripts, fixtures)
    fall back to their stem, which keeps the generic hygiene rules
    applicable while the package-scoped ones simply never match.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if anchors:
        return ".".join(parts[anchors[-1]:])
    return parts[-1] if parts else ""


def _suppressed_codes(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            suppressed[lineno] = {_ALL_CODES}
        else:
            suppressed[lineno] = {
                code.strip() for code in raw.split(",") if code.strip()
            }
    return suppressed


class Rule(ABC):
    """One lint rule: a code, a summary and an AST check."""

    #: Stable error code (``SKY001`` …); unique across the registry.
    code: str = ""
    #: Short kebab-case rule name for ``--list-rules``.
    name: str = ""
    #: One-line statement of the enforced contract.
    summary: str = ""
    #: Whether the rule needs whole-program context (call graph).  The
    #: runner invalidates cached findings of such rules when any
    #: *dependency* of a file changes, not just the file itself.
    requires_project: bool = False

    def applies_to(self, module: str) -> bool:
        """Whether this rule runs on the given dotted module name."""
        return True

    @abstractmethod
    def check(self, context: ModuleContext) -> Iterator[Violation]:
        """Yield every violation found in the module."""


class ProjectRule(Rule):
    """A rule that analyses the whole project at once.

    Flow-aware rules (transitive blocking, shared-memory lifecycle
    across helpers, snapshot immutability) cannot work one module at a
    time: they need the package-wide call graph.  The runner builds one
    :class:`~repro.analysis.callgraph.ProjectContext` per run and calls
    :meth:`check_project` once; findings are still attributed to
    individual files (and cached per file, keyed on the file's
    dependency hash).
    """

    requires_project = True

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        """Project rules do not run per-module."""
        return iter(())

    @abstractmethod
    def check_project(self, project: "object") -> Iterator[Violation]:
        """Yield every violation found across the whole project.

        ``project`` is a :class:`repro.analysis.callgraph.ProjectContext`
        (typed loosely here to keep ``base`` free of circular imports).
        """


#: ``code -> rule class`` for every registered rule.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    existing = RULE_REGISTRY.get(rule_class.code)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULE_REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


def known_codes() -> List[str]:
    """Every registered rule code, sorted."""
    return sorted(RULE_REGISTRY)


def unknown_code_error(code: str, known: Sequence[str]) -> ValueError:
    """A usage error naming the unknown rule code, with a suggestion.

    Mirrors :mod:`repro.config`'s unknown-key handling: a typo'd
    ``--select``/``--ignore`` must never silently no-op.
    """
    import difflib

    matches = difflib.get_close_matches(code, list(known), n=1)
    hint = f" (did you mean {matches[0]!r}?)" if matches else ""
    return ValueError(
        f"unknown rule code {code!r}{hint}; "
        "see --list-rules for the catalogue"
    )


@dataclass
class Allowlist:
    """Grandfathered violations: ``(pattern, code)`` pairs.

    A violation is allowlisted when any entry's code matches and its
    glob pattern matches either the violation's file path (posix,
    matched against the trailing components) or the module name.
    """

    entries: List[Tuple[str, str]] = field(default_factory=list)
    path: Optional[Path] = None

    @classmethod
    def load(cls, path: Path) -> "Allowlist":
        entries: List[Tuple[str, str]] = []
        for raw_line in path.read_text(encoding="utf-8").splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            pattern, _, code = line.rpartition(":")
            pattern, code = pattern.strip(), code.strip()
            if not pattern or not code:
                raise ValueError(
                    f"{path}: malformed allowlist line {raw_line!r} "
                    "(expected 'pattern: CODE')"
                )
            entries.append((pattern, code))
        return cls(entries=entries, path=path)

    def allows(self, violation: Violation, module: str) -> bool:
        return self.match(violation, module) is not None

    def match(self, violation: Violation, module: str) -> Optional[int]:
        """Index of the first entry covering the violation, if any.

        The index lets the runner track which entries ever matched —
        an entry that suppresses nothing in a full run is *stale*
        (the debt it grandfathers was paid) and is reported so the
        allowlist shrinks instead of fossilising.
        """
        posix = Path(violation.path).as_posix()
        for index, (pattern, code) in enumerate(self.entries):
            if code != violation.code and code != _ALL_CODES:
                continue
            if fnmatch.fnmatch(module, pattern):
                return index
            if fnmatch.fnmatch(posix, pattern):
                return index
            if fnmatch.fnmatch(posix, f"*/{pattern}"):
                return index
        return None
