"""Hook-contract rules (SKY001–SKY003).

The paper's central claim (Section 4.1) is that one hardware-oblivious
template control flow stays correct while hooks are swapped per
architecture.  That only holds if the hook/architecture pairing is
machine-checkable: every skyline algorithm must say which architecture
it targets, and templates must acquire hooks through the validated
channels (the registry and the ``set_hook`` setter) instead of
hard-wiring GPU-only classes into hardware-oblivious control flow.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, Violation, register_rule

__all__ = [
    "HookArchitectureRule",
    "GpuHookImportRule",
    "HookSetterRule",
]

#: Modules that define GPU-only skyline algorithms.  Importing them
#: from a template module hard-wires an architecture into code the
#: paper requires to be architecture-oblivious.
GPU_ONLY_MODULES = frozenset(
    {"repro.skyline.skyalign", "repro.skyline.gpu_baselines"}
)

#: GPU-only algorithm class names, for ``from repro.skyline import X``.
GPU_ONLY_NAMES = frozenset({"SkyAlign", "GNL", "GGS"})

#: The template base module, which implements the validated setter and
#: is therefore the one place allowed to assign hook attributes.
TEMPLATE_BASE = "repro.templates.base"


def _class_assigns(node: ast.ClassDef, attr: str) -> bool:
    """True iff the class body assigns ``attr`` at class level."""
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == attr:
                return True
    return False


@register_rule
class HookArchitectureRule(Rule):
    """SKY001 — every skyline algorithm declares its architecture.

    The templates validate hooks against their specialisation through
    the ``architecture`` class attribute (``templates.base``).  An
    algorithm that merely inherits the default would pass validation by
    accident of the base-class default rather than by declaration, so
    each concrete algorithm states ``architecture`` explicitly.
    """

    code = "SKY001"
    name = "hook-architecture-declared"
    summary = (
        "concrete skyline algorithms must declare `architecture` explicitly"
    )

    def applies_to(self, module: str) -> bool:
        return (
            module.startswith("repro.skyline.")
            and module != "repro.skyline.base"
        )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.bases:
                continue  # not an algorithm: no base class
            if not _class_assigns(node, "name"):
                continue  # helper classes carry no registry name
            if _class_assigns(node, "architecture"):
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                f"skyline algorithm {node.name!r} does not declare "
                "`architecture`; templates validate hooks against this "
                "attribute, so inheriting the base default hides the "
                "hook/architecture contract",
            )


@register_rule
class GpuHookImportRule(Rule):
    """SKY002 — template modules never import GPU-only hooks directly.

    Defaults come from :mod:`repro.skyline.registry`, which owns the
    architecture → algorithm mapping; a direct import of SkyAlign/GNL/
    GGS inside a template couples hardware-oblivious control flow to
    one architecture's implementation.
    """

    code = "SKY002"
    name = "no-direct-gpu-hook-import"
    summary = (
        "template modules must get GPU hooks from the registry, "
        "not import them directly"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith("repro.templates")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in GPU_ONLY_MODULES:
                    yield from self._flag(context, node, node.module)
                elif node.module in ("repro.skyline", "repro::skyline"):
                    bad = sorted(
                        alias.name
                        for alias in node.names
                        if alias.name in GPU_ONLY_NAMES
                    )
                    if bad:
                        yield from self._flag(
                            context, node, ", ".join(bad)
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in GPU_ONLY_MODULES:
                        yield from self._flag(context, node, alias.name)

    def _flag(
        self, context: ModuleContext, node: ast.stmt, what: str
    ) -> Iterator[Violation]:
        if context.is_suppressed(node.lineno, self.code):
            return
        yield context.violation(
            node,
            self.code,
            f"template module imports GPU-only hook(s) from {what!r}; "
            "route the default through repro.skyline.registry."
            "default_hook() so the template stays architecture-oblivious",
        )


@register_rule
class HookSetterRule(Rule):
    """SKY003 — hooks are assigned only via the validated setter.

    ``SkycubeTemplate.set_hook`` checks the hook's architecture (and,
    when required, its parallelism) against the specialisation before
    assigning.  A bare ``self.hook = ...`` in a template bypasses that
    validation and can pair, say, a simulated-GPU cost model with CPU
    control flow without any error.
    """

    code = "SKY003"
    name = "hook-via-validated-setter"
    summary = (
        "templates must assign hook attributes through "
        "SkycubeTemplate.set_hook()"
    )

    def applies_to(self, module: str) -> bool:
        return (
            module.startswith("repro.templates")
            and module != TEMPLATE_BASE
        )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            targets: list = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if not isinstance(target.value, ast.Name):
                    continue
                if target.value.id != "self":
                    continue
                attr = target.attr
                if attr != "hook" and not attr.endswith("_hook"):
                    continue
                if context.is_suppressed(node.lineno, self.code):
                    continue
                yield context.violation(
                    node,
                    self.code,
                    f"direct assignment to self.{attr} bypasses hook "
                    "validation; use self.set_hook(hook, attr="
                    f"{attr!r}) so the architecture contract is checked",
                )
