"""Performance-loop rule (SKY501).

The engine package exists to be the array-at-a-time fast path: its
modules replace the instrumented per-point Python loops with whole-array
numpy expressions (the Python analogue of the paper's AVX2 lanes).  An
index loop of the shape ``for i in range(len(xs)): ... xs[i] ...`` is
the tell-tale of per-element work creeping back in — the exact pattern
the packed sweep, the leaf-label batch methods and the blocked pair
coder were built to eliminate.  Blocked iteration
(``range(0, n, block)``) is the intended idiom and stays legal: the
rule fires only on ``range(len(...))`` / ``range(N)``-over-elements
loops, i.e. ``range`` with a single argument that is a ``len(...)``
call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, Violation, register_rule

__all__ = ["IndexLoopRule"]


def _is_len_range(node: ast.expr) -> bool:
    """True for ``range(len(<anything>))`` — and only that shape."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], ast.Call)
        and isinstance(node.args[0].func, ast.Name)
        and node.args[0].func.id == "len"
    )


@register_rule
class IndexLoopRule(Rule):
    """SKY501 — no per-element index loops in the engine fast path.

    Flags ``for i in range(len(xs))`` inside ``repro.engine`` modules.
    Blocked loops (``range(start, n, block)``) pass: they iterate
    *blocks*, each of which does whole-array work.  If a per-element
    loop is genuinely unavoidable, vectorise the body or move it out of
    the engine package; as a last resort suppress with
    ``# skylint: disable=SKY501`` and say why.
    """

    code = "SKY501"
    name = "no-index-loops-in-engine"
    summary = (
        "engine modules must iterate arrays whole or in blocks, not "
        "per element via range(len(...))"
    )

    def applies_to(self, module: str) -> bool:
        return module == "repro.engine" or module.startswith("repro.engine.")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not _is_len_range(node.iter):
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                "per-element index loop in the engine fast path; "
                "vectorise the body (whole-array numpy ops) or iterate "
                "in blocks like range(0, n, block)",
            )
