"""Event-loop hygiene rule (SKY401) for the serving layer.

The serve subsystem's latency guarantees (micro-batch windows of a few
milliseconds, p99 gates) hold only while the event loop keeps turning:
one synchronous ``time.sleep``, file read, socket call or — worst —
a :class:`~repro.engine.parallel.ParallelExecutor` submission inside a
coroutine stalls *every* connection at once.  The rule flags the
blocking primitives we actually have tripped over inside ``async def``
bodies under ``repro.serve``; the fix is always the same — use the
asyncio counterpart (``asyncio.sleep``) or push the work off the loop
(``asyncio.to_thread``, ``loop.run_in_executor``).

Functions *referenced* but not called (e.g. ``asyncio.to_thread(
time.sleep, ...)``) are fine; nested synchronous ``def``/``lambda``
bodies inside a coroutine are fine too (they run wherever they are
called, typically a worker thread).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.base import (
    ModuleContext,
    ProjectRule,
    Rule,
    Violation,
    register_rule,
)

__all__ = ["BlockingCallRule", "TransitiveBlockingRule", "blocking_reason"]

#: ``module.function`` call chains that block the loop outright.
BLOCKING_CHAINS: Dict[str, str] = {
    "time.sleep": "use 'await asyncio.sleep(...)' instead",
    "socket.socket": "use asyncio streams/transports instead",
    "socket.create_connection": "use 'await asyncio.open_connection(...)'",
    "subprocess.run": "use 'await asyncio.create_subprocess_exec(...)'",
    "subprocess.check_output": "use 'await asyncio.create_subprocess_exec(...)'",
    "subprocess.check_call": "use 'await asyncio.create_subprocess_exec(...)'",
}

#: Bare names whose call is synchronous I/O.
BLOCKING_NAMES: Dict[str, str] = {
    "open": "wrap file I/O in 'await asyncio.to_thread(...)'",
    "input": "a server coroutine cannot block on stdin",
}

#: Method names that mark synchronous file/socket objects.
BLOCKING_METHODS: Dict[str, str] = {
    "recv": "synchronous socket receive",
    "recv_into": "synchronous socket receive",
    "sendall": "synchronous socket send",
    "accept": "synchronous socket accept",
    "makefile": "synchronous socket file wrapper",
    "read_text": "synchronous file read",
    "write_text": "synchronous file write",
    "read_bytes": "synchronous file read",
    "write_bytes": "synchronous file write",
}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def blocking_reason(
    call: ast.Call, executor_names: Set[str]
) -> Optional[str]:
    """Short label when ``call`` is a loop-blocking primitive, else None.

    The classification shared by SKY401 (direct, lexical) and SKY402
    (transitive, through the call graph).
    """
    chain = _chain(call.func)
    if chain:
        dotted = ".".join(chain)
        if dotted in BLOCKING_CHAINS:
            return f"{dotted}(...)"
        if len(chain) == 1 and chain[0] in BLOCKING_NAMES:
            return f"{chain[0]}(...)"
        if chain[-1] == "ParallelExecutor":
            return "ParallelExecutor(...) construction"
        if (
            len(chain) >= 2
            and chain[-1] == "run"
            and chain[-2] in executor_names
        ):
            return f"{dotted}(...) pool submission"
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method in BLOCKING_METHODS:
            if not chain:
                return f".{method}(...)"
            if len(chain) == 2 and chain[0] != "self":
                return f"{'.'.join(chain)}(...)"
    return None


def _chain(node: ast.expr) -> List[str]:
    """``time.sleep`` → ``["time", "sleep"]`` (empty if not a name chain)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return parts[::-1]
    return []


@register_rule
class BlockingCallRule(Rule):
    """SKY401 — no blocking calls inside ``async def`` under repro.serve.

    Flags, inside coroutine bodies (nested synchronous functions are
    exempt): ``time.sleep``, builtin ``open``/``input``, synchronous
    socket/subprocess module calls, blocking file/socket method calls,
    and any construction or ``.run(...)`` submission of a
    :class:`ParallelExecutor` (a process pool joined from a coroutine
    freezes the loop for the whole pool makespan).
    """

    code = "SKY401"
    name = "no-blocking-in-async"
    summary = (
        "async def bodies in repro.serve/trace/config must not call "
        "blocking primitives (time.sleep, sync file/socket I/O, "
        "ParallelExecutor submission); use asyncio.sleep / "
        "asyncio.to_thread"
    )

    #: Packages whose coroutines ride the serving event loop.  The
    #: trace and config layers are called *from* serve coroutines, so
    #: they get the same hygiene gate; the sharded tier's coordinator
    #: and service coroutines ride the same loop.
    SCOPES = ("repro.serve", "repro.trace", "repro.config", "repro.shard")

    def applies_to(self, module: str) -> bool:
        return any(
            module == scope or module.startswith(scope + ".")
            for scope in self.SCOPES
        )

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        executor_names = self._executor_bindings(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for call in self._calls_in_coroutine(node):
                    violation = self._check_call(
                        context, call, executor_names
                    )
                    if violation is not None:
                        yield violation

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _executor_bindings(tree: ast.Module) -> Set[str]:
        """Names bound (anywhere in the module) to ParallelExecutor(...).

        Coarse but effective: assignments like ``pool =
        ParallelExecutor(...)`` or ``self._pool = ...`` register
        ``pool`` / ``_pool`` so later ``pool.run(...)`` submissions
        inside coroutines are caught.
        """
        names: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            chain = _chain(value.func)
            if not chain or chain[-1] != "ParallelExecutor":
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
        return names

    def _calls_in_coroutine(
        self, function: ast.AsyncFunctionDef
    ) -> Iterator[ast.Call]:
        """Calls lexically in the coroutine, skipping nested sync defs."""

        def visit(node: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.Lambda)):
                    continue  # runs elsewhere (often a worker thread)
                if isinstance(child, ast.AsyncFunctionDef):
                    continue  # visited as its own coroutine
                if isinstance(child, ast.Call):
                    yield child
                yield from visit(child)

        yield from visit(function)

    def _check_call(
        self,
        context: ModuleContext,
        call: ast.Call,
        executor_names: Set[str],
    ) -> Optional[Violation]:
        chain = _chain(call.func)
        message: Optional[str] = None
        if chain:
            dotted = ".".join(chain)
            if dotted in BLOCKING_CHAINS:
                message = (
                    f"blocking call {dotted}(...) in a coroutine; "
                    f"{BLOCKING_CHAINS[dotted]}"
                )
            elif len(chain) == 1 and chain[0] in BLOCKING_NAMES:
                message = (
                    f"blocking call {chain[0]}(...) in a coroutine; "
                    f"{BLOCKING_NAMES[chain[0]]}"
                )
            elif chain[-1] == "ParallelExecutor":
                message = (
                    "ParallelExecutor constructed in a coroutine; build "
                    "and submit pools off the event loop "
                    "(asyncio.to_thread / run_in_executor)"
                )
            elif (
                len(chain) >= 2
                and chain[-1] == "run"
                and chain[-2] in executor_names
            ):
                message = (
                    f"ParallelExecutor submission {dotted}(...) blocks "
                    "the event loop for the whole pool makespan; "
                    "dispatch it via asyncio.to_thread"
                )
        if message is None and isinstance(call.func, ast.Attribute):
            method = call.func.attr
            if method in BLOCKING_METHODS and not chain:
                # Attribute call on a non-name expression, e.g.
                # ``sock.makefile()`` is covered by chain above; this
                # branch covers ``Path(x).read_text()`` style.
                message = (
                    f".{method}(...) in a coroutine is "
                    f"{BLOCKING_METHODS[method]}; use asyncio.to_thread"
                )
            elif method in BLOCKING_METHODS and chain and len(chain) == 2:
                root = chain[0]
                if root not in ("self",):
                    message = (
                        f"{'.'.join(chain)}(...) in a coroutine is "
                        f"{BLOCKING_METHODS[method]}; use asyncio.to_thread"
                    )
        if message is None:
            return None
        if context.is_suppressed(call.lineno, self.code):
            return None
        return context.violation(call, self.code, message)


@register_rule
class TransitiveBlockingRule(ProjectRule):
    """SKY402 — coroutines must not reach blocking calls through frames.

    SKY401 sees a ``time.sleep`` written *inside* the coroutine; it is
    blind to the same sleep two synchronous helpers away.  This rule
    walks the project call graph from every coroutine in the serving
    scopes: a call edge into a synchronous project function whose
    transitive (sync-only) closure contains a blocking primitive stalls
    the event loop exactly as surely as the direct call, so it is
    flagged at the coroutine's call site with the offending frame
    chain.  Awaited coroutine callees are not traversed — an ``await``
    yields the loop, and the callee is analysed as its own entry point.
    Callables dispatched through ``asyncio.to_thread`` or
    ``run_in_executor`` are references, not calls, so they never form
    an edge (the intended fix stays lint-clean).
    """

    code = "SKY402"
    name = "no-transitive-blocking-in-async"
    summary = (
        "coroutines in repro.serve/trace/config/shard must not reach "
        "blocking primitives through any chain of synchronous project "
        "calls (supersedes SKY401's direct-call check across frames)"
    )

    SCOPES = BlockingCallRule.SCOPES

    def applies_to(self, module: str) -> bool:
        return any(
            module == scope or module.startswith(scope + ".")
            for scope in self.SCOPES
        )

    def check_project(self, project: object) -> Iterator[Violation]:
        from repro.analysis.callgraph import ProjectContext, _own_calls

        assert isinstance(project, ProjectContext)
        graph = project.callgraph

        # Per-module ParallelExecutor bindings (for submission checks).
        executor_names: Dict[str, Set[str]] = {}
        for module, context in project.modules.items():
            executor_names[module] = BlockingCallRule._executor_bindings(
                context.tree
            )

        # Every synchronous project function whose own body contains a
        # blocking primitive, with the primitive's label.
        blocking: Dict[str, str] = {}
        for fid, info in graph.functions.items():
            if info.is_async:
                continue
            names = executor_names.get(info.module, set())
            for call in _own_calls(info.node):
                reason = blocking_reason(call, names)
                if reason is not None:
                    blocking[fid] = reason
                    break
        targets = set(blocking)
        if not targets:
            return

        reported: Set[Tuple[str, int, int]] = set()
        for fid, info in graph.functions.items():
            if not info.is_async or not self.applies_to(info.module):
                continue
            context = project.modules.get(info.module)
            if context is None:
                continue
            for site in graph.callees(fid):
                callee = graph.functions.get(site.callee)
                if callee is None or callee.is_async:
                    continue
                reach = {site.callee} | graph.reachable(
                    site.callee, async_ok=False
                )
                if not reach & targets:
                    continue
                key = (info.path, site.line, site.col)
                if key in reported:
                    continue
                reported.add(key)
                if context.is_suppressed(site.line, self.code):
                    continue
                if site.callee in targets:
                    terminal = site.callee
                    hops = [site]
                else:
                    tail = graph.find_path(
                        site.callee, targets, async_ok=False
                    )
                    if tail is None:
                        continue  # reachable() raced resolution; skip
                    terminal = tail[-1].callee
                    hops = [site] + tail
                chain = " -> ".join(
                    [info.qualname]
                    + [graph.functions[h.callee].qualname for h in hops]
                )
                yield Violation(
                    path=info.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"coroutine {info.qualname!r} blocks the event "
                        f"loop transitively: {chain} reaches "
                        f"{blocking[terminal]} "
                        f"({len(hops)} frame(s) away); await the work or "
                        "dispatch it via asyncio.to_thread"
                    ),
                )
