"""Intraprocedural control-flow graph and resource dataflow walker.

The syntactic rules (SKY101: "is there a ``finally`` that unlinks?")
cannot see that one branch of an ``if`` returns before the cleanup, or
that ``unlink`` runs twice when a loop re-enters the release path.
This module provides the flow-aware machinery those checks need:

* :class:`FlowGraph` — a per-function CFG over simple statements.
  Branches, loops (with back edges), ``try``/``except``/``finally``
  (finally bodies are *duplicated* per exit kind, the standard
  AST-level encoding, so a ``return`` inside ``try`` still flows
  through the cleanup), ``with`` blocks, ``break``/``continue`` and
  ``raise``.  Every statement also carries a may-raise edge to the
  innermost handler (or the RAISE exit), taken with the *pre*-state —
  an allocation that fails never binds its target.

* :class:`ResourceSpec` + :func:`track_resource` — a path-sensitive
  reaching-state analysis for one resource variable: each CFG node
  holds the *set* of lifecycle states (frozensets of flags like
  ``closed``/``unlinked``) that some execution path can reach it with,
  iterated to fixpoint.  The walker reports normal exits where a
  required flag is missing (a leak path) and release calls that can
  re-run on an already-released state (a double free), and *stops*
  tracking when the resource escapes (returned, stored on ``self``,
  appended to a container, or passed to an unknown function) — an
  escaped resource is someone else's contract.

Helper calls are resolved through the caller-supplied summary lookup
(:class:`repro.analysis.callgraph.FunctionSummary`), so ``release(shm)``
counts as ``shm.close(); shm.unlink()`` when the call graph proves it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "FlowGraph",
    "FlowNode",
    "ResourceSpec",
    "ResourceFinding",
    "track_resource",
]

State = FrozenSet[str]

#: The state of a resource that has been created and nothing else.
FRESH: State = frozenset()

#: Sentinel flag: the resource left the function's hands.
_ESCAPED = "__escaped__"


@dataclass
class FlowNode:
    """One CFG node: a simple statement, or a synthetic marker."""

    index: int
    stmt: Optional[ast.stmt]
    kind: str  # "stmt" | "entry" | "exit" | "raise" | "join"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"FlowNode({self.index}, {self.kind}{':' if label else ''}{label})"


class FlowGraph:
    """Control-flow graph of one function body.

    ``succ[i]`` holds ``(target, kind)`` pairs where ``kind`` is
    ``"normal"`` or ``"exception"``.  ``entry`` precedes the first
    statement; ``exit`` collects every normal completion (including
    returns); ``raise_exit`` collects exceptions that escape the
    function.
    """

    def __init__(self) -> None:
        self.nodes: List[FlowNode] = []
        self.succ: Dict[int, Set[Tuple[int, str]]] = {}
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise")

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls, function: ast.AST
    ) -> "FlowGraph":
        """CFG for a FunctionDef / AsyncFunctionDef body."""
        graph = cls()
        body = getattr(function, "body", [])
        frontier = graph._sequence(
            body,
            {graph.entry},
            _Env(
                raise_to=graph.raise_exit,
                return_to=graph.exit,
                finally_stack=(),
            ),
        )
        for node in frontier:
            graph._edge(node, graph.exit, "normal")
        return graph

    def _new(self, stmt: Optional[ast.stmt], kind: str) -> int:
        index = len(self.nodes)
        self.nodes.append(FlowNode(index, stmt, kind))
        self.succ[index] = set()
        return index

    def _edge(self, src: int, dst: int, kind: str) -> None:
        self.succ[src].add((dst, kind))

    def _sequence(
        self, stmts: Sequence[ast.stmt], frontier: Set[int], env: "_Env"
    ) -> Set[int]:
        """Thread ``stmts`` after ``frontier``; return the new frontier.

        An empty returned frontier means control never falls through
        (every path returned, raised, broke or continued).
        """
        current = set(frontier)
        for stmt in stmts:
            if not current:
                break  # unreachable tail
            current = self._statement(stmt, current, env)
        return current

    def _statement(
        self, stmt: ast.stmt, frontier: Set[int], env: "_Env"
    ) -> Set[int]:
        if isinstance(stmt, ast.If):
            node = self._simple(stmt, frontier, env)
            then = self._sequence(stmt.body, {node}, env)
            other = self._sequence(stmt.orelse, {node}, env)
            if not stmt.orelse:
                other = {node}
            return then | other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._simple(stmt, frontier, env)
            breaks: Set[int] = set()
            loop_env = env.with_loop(header, breaks)
            body_out = self._sequence(stmt.body, {header}, loop_env)
            for node in body_out:
                self._edge(node, header, "normal")  # back edge
            after = self._sequence(stmt.orelse, {header}, env)
            if not stmt.orelse:
                after = {header}
            return after | breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._simple(stmt, frontier, env)
            # A with-block guarantees __exit__ on every path; for the
            # resource analysis entering the block is the guarantee.
            return self._sequence(stmt.body, {node}, env)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, env)
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, frontier, env)
            for last in self._unwind(node, env, env.finally_stack):
                self._edge(last, env.return_to, "normal")
            return set()
        if isinstance(stmt, ast.Raise):
            node = self._simple(stmt, frontier, env)
            for last in self._unwind(node, env, env.finally_stack):
                self._edge(last, env.raise_to, "normal")
            return set()
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, frontier, env)
            if env.break_collector is not None:
                env.break_collector.update(
                    self._unwind(node, env, env.loop_finallys())
                )
            return set()
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, frontier, env)
            if env.loop_header is not None:
                for last in self._unwind(node, env, env.loop_finallys()):
                    self._edge(last, env.loop_header, "normal")
            return set()
        # Plain statement (possibly with nested defs, which are opaque).
        node = self._simple(stmt, frontier, env)
        return {node}

    def _simple(
        self, stmt: ast.stmt, frontier: Set[int], env: "_Env"
    ) -> int:
        node = self._new(stmt, "stmt")
        for source in frontier:
            self._edge(source, node, "normal")
        # Conservative may-raise edge, carrying the pre/post union.
        self._edge(node, env.raise_to, "exception")
        return node

    def _try(
        self, stmt: ast.Try, frontier: Set[int], env: "_Env"
    ) -> Set[int]:
        has_finally = bool(stmt.finalbody)
        # Exceptional routes that leave this try (an unmatched body
        # exception, or a handler body raising) must run the finally
        # before propagating: model that once as a re-raise join.
        if has_finally:
            reraise = self._new(None, "join")
            for last in self._sequence(stmt.finalbody, {reraise}, env):
                self._edge(last, env.raise_to, "normal")
            propagate_to = reraise
        else:
            propagate_to = env.raise_to

        # Exceptions in the body fan into the handlers via this join.
        catch = self._new(None, "join")
        body_env = env.with_raise(catch)
        if has_finally:
            # An exception raised *inside* the finally body (while it
            # runs for a return/break unwind) propagates outward — it
            # must not re-enter this try's handlers or re-run the
            # finally — so each pushed finally remembers the raise
            # target that was current outside the try.
            body_env = body_env.push_finally(stmt.finalbody, env.raise_to)
        body_out = self._sequence(stmt.body, frontier, body_env)
        else_out = self._sequence(stmt.orelse, body_out, body_env)

        handler_exits: Set[int] = set()
        for handler in stmt.handlers:
            handler_env = env.with_raise(propagate_to)
            if has_finally:
                handler_env = handler_env.push_finally(
                    stmt.finalbody, env.raise_to
                )
            handler_exits |= self._sequence(
                handler.body, {catch}, handler_env
            )
        # An exception no handler matches propagates (through finally).
        self._edge(catch, propagate_to, "normal")

        normal_out = else_out | handler_exits
        if has_finally and normal_out:
            return self._sequence(stmt.finalbody, normal_out, env)
        return normal_out

    def _unwind(
        self,
        node: int,
        env: "_Env",
        finallys: Tuple[Tuple[Tuple[ast.stmt, ...], int], ...],
    ) -> Set[int]:
        """Thread an abrupt exit through the given finally bodies.

        Returns the frontier after the last finally copy (empty when a
        finally itself diverts control on every path).  Each finally
        copy runs with the raise target recorded when it was pushed:
        exceptions inside a cleanup body leave the try entirely.
        """
        frontier = {node}
        outer = env.without_finallys()
        for finalbody, raise_target in reversed(finallys):
            if not frontier:
                break
            frontier = self._sequence(
                finalbody, frontier, outer.with_raise(raise_target)
            )
        return frontier


@dataclass(frozen=True)
class _Env:
    """Construction-time targets for abrupt control transfers."""

    raise_to: int
    return_to: int
    #: ``(finalbody, outer_raise_target)`` per enclosing try-finally.
    finally_stack: Tuple[Tuple[Tuple[ast.stmt, ...], int], ...]
    loop_header: Optional[int] = None
    break_collector: Optional[Set[int]] = None
    #: How many entries of ``finally_stack`` were pushed inside the
    #: innermost loop (break/continue unwind only those).
    loop_finally_depth: int = 0

    def with_raise(self, target: int) -> "_Env":
        return _Env(
            raise_to=target,
            return_to=self.return_to,
            finally_stack=self.finally_stack,
            loop_header=self.loop_header,
            break_collector=self.break_collector,
            loop_finally_depth=self.loop_finally_depth,
        )

    def push_finally(
        self, finalbody: Sequence[ast.stmt], raise_target: int
    ) -> "_Env":
        return _Env(
            raise_to=self.raise_to,
            return_to=self.return_to,
            finally_stack=self.finally_stack
            + ((tuple(finalbody), raise_target),),
            loop_header=self.loop_header,
            break_collector=self.break_collector,
            loop_finally_depth=self.loop_finally_depth + 1
            if self.loop_header is not None
            else 0,
        )

    def with_loop(self, header: int, breaks: Set[int]) -> "_Env":
        return _Env(
            raise_to=self.raise_to,
            return_to=self.return_to,
            finally_stack=self.finally_stack,
            loop_header=header,
            break_collector=breaks,
            loop_finally_depth=0,
        )

    def without_finallys(self) -> "_Env":
        return _Env(
            raise_to=self.raise_to,
            return_to=self.return_to,
            finally_stack=(),
            loop_header=self.loop_header,
            break_collector=self.break_collector,
            loop_finally_depth=0,
        )

    def loop_finallys(self) -> Tuple[Tuple[ast.stmt, ...], ...]:
        if self.loop_finally_depth == 0:
            return ()
        return self.finally_stack[-self.loop_finally_depth:]


# -- resource lifecycle analysis ---------------------------------------


@dataclass
class ResourceSpec:
    """The lifecycle contract of one resource kind.

    ``finalizers`` maps a method name to the flag its call sets;
    ``required`` lists the flags every normal exit must have;
    ``once`` lists methods that must not run twice on one path.
    """

    kind: str
    finalizers: Dict[str, str]
    required: FrozenSet[str]
    once: FrozenSet[str] = frozenset()


@dataclass
class ResourceFinding:
    """One flow defect for a tracked resource."""

    what: str  # "leak" | "double"
    node: ast.AST  # where to report (exit statement or release call)
    detail: str


#: Summary lookup supplied by the caller: resolves a call expression to
#: the set of method names it (transitively) applies to the given
#: argument position, or None when the callee is unknown (escape).
SummaryLookup = Callable[[ast.Call, int], Optional[Set[str]]]


def track_resource(
    function: ast.AST,
    creation: ast.stmt,
    var: str,
    spec: ResourceSpec,
    summarize: Optional[SummaryLookup] = None,
) -> List[ResourceFinding]:
    """Path-sensitively track one resource variable to every exit.

    ``creation`` is the Assign statement binding ``var``; the analysis
    starts tracking at its normal out-edge (a failed constructor never
    binds).  Returns leak findings (a normal exit whose state misses a
    required flag) and double-release findings (a ``once`` method
    invoked in a state that already has its flag).
    """
    graph = FlowGraph.build(function)
    creation_node = next(
        (n.index for n in graph.nodes if n.stmt is creation), None
    )
    if creation_node is None:
        return []

    # states[i] = set of lifecycle states the resource may be in when
    # control *reaches* node i (after creation on some path).
    states: Dict[int, Set[State]] = {i: set() for i in range(len(graph.nodes))}
    worklist: List[int] = []

    def push(target: int, incoming: Iterable[State]) -> None:
        bucket = states[target]
        before = len(bucket)
        bucket.update(incoming)
        if len(bucket) != before and target not in worklist:
            worklist.append(target)

    # Seed: the creation statement's normal successors see FRESH.
    for target, kind in graph.succ[creation_node]:
        if kind == "normal":
            push(target, {FRESH})

    doubles: Dict[int, ast.AST] = {}
    while worklist:
        index = worklist.pop()
        node = graph.nodes[index]
        incoming = states[index]
        if not incoming:
            continue
        outgoing: Set[State] = set()
        for state in incoming:
            if _ESCAPED in state:
                continue
            result, double_at = _transfer(node.stmt, var, state, spec, summarize)
            if double_at is not None:
                doubles[index] = double_at
            outgoing.add(result)
        for target, kind in graph.succ[index]:
            if kind == "exception":
                # The statement may fail before, during or after its
                # effect: both pre- and post-states can escape.
                push(target, set(incoming) | outgoing)
            else:
                push(target, outgoing)

    findings: List[ResourceFinding] = []
    for index, call in doubles.items():
        findings.append(
            ResourceFinding(
                what="double",
                node=call,
                detail=f"{var}.{_once_name(spec)} can run twice on this path",
            )
        )
    leaks = any(
        _ESCAPED not in state and not spec.required <= state
        for state in states[graph.exit]
    )
    if leaks:
        needed = " and ".join(
            sorted(
                method
                for method, flag in spec.finalizers.items()
                if flag in spec.required
            )
        )
        findings.append(
            ResourceFinding(
                what="leak",
                node=creation,
                detail=(
                    "a normal execution path reaches the function exit "
                    f"without calling {needed or 'the finalizer'} on "
                    f"{var!r}"
                ),
            )
        )
    return findings


def _once_name(spec: ResourceSpec) -> str:
    for method, flag in spec.finalizers.items():
        if method in spec.once:
            return method
    return next(iter(spec.once), "release")


def _transfer(
    stmt: Optional[ast.stmt],
    var: str,
    state: State,
    spec: ResourceSpec,
    summarize: Optional[SummaryLookup],
) -> Tuple[State, Optional[ast.AST]]:
    """Apply one statement to one state; report a double-release node."""
    if stmt is None:
        return state, None
    double: Optional[ast.AST] = None
    current = state
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            # Direct method call on the resource: var.close().
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == var
            ):
                method = func.attr
                flag = spec.finalizers.get(method)
                if flag is not None:
                    if method in spec.once and flag in current:
                        double = node
                    current = current | {flag}
                continue
            # Resource passed positionally to a helper.
            for position, arg in enumerate(node.args):
                if isinstance(arg, ast.Name) and arg.id == var:
                    methods = (
                        summarize(node, position)
                        if summarize is not None
                        else None
                    )
                    if methods is None:
                        current = current | {_ESCAPED}
                        continue
                    for method in methods:
                        flag = spec.finalizers.get(method)
                        if flag is not None:
                            if method in spec.once and flag in current:
                                double = node
                            current = current | {flag}
        elif isinstance(node, ast.Return):
            if (
                node.value is not None
                and _mentions(node.value, var)
            ):
                current = current | {_ESCAPED}
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == var:
                    # Rebinding drops the tracked object (a fresh run
                    # of the creation statement re-seeds FRESH).
                    current = current | {_ESCAPED}
                elif isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and (
                    value is not None and _mentions_name_only(value, var)
                ):
                    current = current | {_ESCAPED}
    return current, double


def _mentions(expr: ast.expr, var: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == var
        for node in ast.walk(expr)
    )


def _mentions_name_only(expr: ast.expr, var: str) -> bool:
    """True when ``expr`` passes the resource object itself onward
    (bare name or a tuple containing it) — attribute reads like
    ``shm.name`` do not transfer ownership."""
    if isinstance(expr, ast.Name):
        return expr.id == var
    if isinstance(expr, ast.Tuple):
        return any(_mentions_name_only(item, var) for item in expr.elts)
    return False
