"""Baseline management: adopt skylint on a codebase with findings.

A baseline is a JSON file of *fingerprint → count* entries.  A
fingerprint is ``<posix path>:<code>:<message-digest>`` — line numbers
are deliberately excluded so unrelated edits above a finding do not
evict it from the baseline.  Counts make the baseline exact: if the
baseline grants two ``SKY102`` findings in a file and a third appears,
the third is reported.

Workflow (``docs/ANALYSIS.md`` has the full story):

* ``--write-baseline FILE`` records the current findings and exits 0,
* ``--baseline FILE`` suppresses exactly those findings on later runs,
* entries whose finding no longer exists are *stale* and reported as
  warnings — the debt was paid, shrink the baseline (CI can enforce
  that with ``--fail-on-stale-allowlist``, which covers both the
  allowlist and the baseline).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.base import Violation

__all__ = ["Baseline", "fingerprint"]

_BASELINE_VERSION = 1


def fingerprint(violation: Violation) -> str:
    digest = hashlib.sha256(
        violation.message.encode("utf-8")
    ).hexdigest()[:12]
    return f"{Path(violation.path).as_posix()}:{violation.code}:{digest}"


@dataclass
class Baseline:
    """Grandfathered findings, keyed by fingerprint with counts."""

    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        raw = json.loads(path.read_text(encoding="utf-8"))
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: malformed baseline (no entries map)")
        return cls(
            entries={str(k): int(v) for k, v in entries.items()}
        )

    @classmethod
    def from_violations(
        cls, violations: Sequence[Violation]
    ) -> "Baseline":
        entries: Dict[str, int] = {}
        for violation in violations:
            key = fingerprint(violation)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    def write(self, path: Path) -> None:
        payload = {
            "version": _BASELINE_VERSION,
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def partition(
        self, violations: Sequence[Violation]
    ) -> Tuple[List[Violation], List[Violation], List[str]]:
        """``(reported, baselined, stale_fingerprints)``.

        Within one fingerprint the baseline absorbs up to its recorded
        count; the remainder is reported.  Entries matching nothing
        are stale.
        """
        budget = dict(self.entries)
        reported: List[Violation] = []
        baselined: List[Violation] = []
        seen: set = set()
        for violation in violations:
            key = fingerprint(violation)
            seen.add(key)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(violation)
            else:
                reported.append(violation)
        stale = sorted(key for key in self.entries if key not in seen)
        return reported, baselined, stale
