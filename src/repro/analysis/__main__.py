"""``python -m repro.analysis`` — run skylint (see docs/ANALYSIS.md)."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
