"""SARIF 2.1.0 export for skylint findings.

GitHub code scanning (and every SARIF-aware viewer) ingests this
directly: ``python -m repro.analysis --format sarif > skylint.sarif``
then upload with ``github/codeql-action/upload-sarif``.  One run, one
driver ("skylint"), one ``reportingDescriptor`` per registered rule,
one ``result`` per reported violation (allowlisted and baselined
findings are deliberately excluded — code scanning should only see
what the repo's own gate would fail on).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import Rule, Violation

__all__ = ["sarif_document"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _relative_uri(path: str, base: Optional[Path]) -> str:
    candidate = Path(path)
    if base is not None:
        try:
            candidate = candidate.resolve().relative_to(base.resolve())
        except (ValueError, OSError):
            pass
    return candidate.as_posix()


def sarif_document(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    base_dir: Optional[Path] = None,
) -> Dict[str, object]:
    """The complete SARIF log object for one analysis run."""
    used_codes = {v.code for v in violations}
    descriptors: List[Dict[str, object]] = []
    for rule in rules:
        descriptor: Dict[str, object] = {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        descriptors.append(descriptor)
    known = {d["id"] for d in descriptors}
    # Parse errors report as SKY000, which has no Rule class.
    for code in sorted(used_codes - known):
        descriptors.append(
            {
                "id": code,
                "name": "internal",
                "shortDescription": {"text": "analysis-level diagnostic"},
                "defaultConfiguration": {"level": "error"},
            }
        )

    results: List[Dict[str, object]] = []
    for violation in violations:
        results.append(
            {
                "ruleId": violation.code,
                "level": _LEVELS.get(violation.severity, "error"),
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(
                                    violation.path, base_dir
                                ),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(violation.line, 1),
                                "startColumn": max(violation.col, 1),
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "skylint/v1": (
                        f"{_relative_uri(violation.path, base_dir)}:"
                        f"{violation.code}"
                    )
                },
            }
        )

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "skylint",
                        "informationUri": (
                            "docs/ANALYSIS.md"
                        ),
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "uri": (base_dir or Path.cwd()).resolve().as_uri()
                        + "/"
                    }
                },
                "results": results,
            }
        ],
    }
