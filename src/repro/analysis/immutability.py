"""Snapshot/profile immutability rule (SKY601).

The serving tier's whole consistency argument (snapshot isolation by
replacement — :mod:`repro.serve.snapshot`) rests on one promise: a
:class:`ServingSnapshot` is never written after construction, and a
:class:`~repro.config.profile.Profile` never changes after load.  The
runtime enforces a slice of that (``setflags(write=False)`` arrays,
frozen dataclasses), but plenty of mutations slip through at runtime
until a reader races them: ``snap.ids.sort()`` re-orders the id map
under a live query, ``snap.data.setflags(write=True)`` silently
re-arms writes, and a helper that fills an array mutates the published
object two calls away.

This rule taints every binding whose type is provably snapshot-like —
an annotation, a ``ServingSnapshot(...)`` / ``load_profile(...)``
construction, or a read of ``<holder>.current`` — and flags any write
reaching it: subscript/attribute stores, in-place operators, mutating
method calls (``fill``, ``sort``, ``setflags(write=True)``, …), and
positional arguments handed to a project function whose
:class:`~repro.analysis.callgraph.FunctionSummary` proves it mutates
that parameter.  ``setflags(write=False)`` — the freezing idiom — and
``.copy()`` products are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.base import ProjectRule, Violation, register_rule

__all__ = ["SnapshotMutationRule"]

#: Constructor / factory names whose result is an immutable object.
_SNAPSHOT_FACTORIES = frozenset({"ServingSnapshot"})
_PROFILE_FACTORIES = frozenset(
    {"Profile", "load_profile", "profile_from_dict"}
)

#: Annotation names that taint a parameter or annotated assignment.
_TAINT_ANNOTATIONS = {
    "ServingSnapshot": "published ServingSnapshot",
    "Profile": "frozen Profile",
}


def _chain(node: ast.expr) -> list:
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return parts[::-1]
    return []


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base variable of an attribute/subscript chain, if any.

    Chains passing through a call (``x.data.copy()``) stop at the call
    — the product is a fresh object, not a view of the tainted one.
    """
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _annotation_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        # String annotations: match on the trailing identifier.
        name = annotation.value.strip().strip('"').split(".")[-1]
        return _TAINT_ANNOTATIONS.get(name)
    chain = _chain(annotation)
    if chain:
        return _TAINT_ANNOTATIONS.get(chain[-1])
    return None


def _value_kind(value: ast.expr) -> Optional[str]:
    """Taint carried by an assigned expression, if provable."""
    if isinstance(value, ast.Call):
        chain = _chain(value.func)
        if chain:
            if any(part in _SNAPSHOT_FACTORIES for part in chain):
                return _TAINT_ANNOTATIONS["ServingSnapshot"]
            if chain[-1] in _PROFILE_FACTORIES:
                return _TAINT_ANNOTATIONS["Profile"]
        return None
    # `snap = holder.current` / `snap = self._holder.current`.
    if isinstance(value, ast.Attribute) and value.attr == "current":
        chain = _chain(value)
        if any("holder" in part.lower() for part in chain[:-1]):
            return _TAINT_ANNOTATIONS["ServingSnapshot"]
    return None


def _sets_readonly(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "write" and isinstance(
            keyword.value, ast.Constant
        ):
            return keyword.value.value is False
    return False


@register_rule
class SnapshotMutationRule(ProjectRule):
    """SKY601 — nothing writes into a published snapshot or profile.

    Direct forms: ``snap.data[i] = v``, ``snap.ids += ...``,
    ``snap.version = 7``, ``snap.data.fill(0)``,
    ``snap.data.setflags(write=True)``.  Interprocedural form:
    ``helper(snap.data)`` where the call graph's effect summaries
    prove ``helper`` mutates its argument.  The rule deliberately
    requires a *provable* type for the root variable (annotation,
    constructor, or ``holder.current``) — guessing from names would
    drown the serve tier in false positives.
    """

    code = "SKY601"
    name = "snapshot-immutability"
    summary = (
        "no write (store, in-place op, mutating method, setflags, or "
        "summary-proven mutating helper call) may reach a published "
        "ServingSnapshot or a frozen Profile"
    )

    def check_project(self, project: object) -> Iterator[Violation]:
        from repro.analysis.callgraph import ProjectContext, _walk_own

        assert isinstance(project, ProjectContext)
        graph = project.callgraph
        for fid, info in graph.functions.items():
            context = project.modules.get(info.module)
            if context is None:
                continue
            tainted = self._tainted_roots(info)
            if not tainted:
                continue
            edges_by_call: Dict[int, list] = {}
            for site in graph.callees(fid):
                if site.call is not None:
                    edges_by_call.setdefault(id(site.call), []).append(
                        site.callee
                    )
            for node in _walk_own(info.node):
                for violation in self._check_node(
                    context, node, tainted, graph, edges_by_call
                ):
                    yield violation

    # -- taint seeding --------------------------------------------------

    def _tainted_roots(self, info) -> Dict[str, str]:
        """``var -> kind label`` for provably-immutable bindings."""
        tainted: Dict[str, str] = {}
        node = info.node
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            kind = _annotation_kind(arg.annotation)
            if kind is not None:
                tainted[arg.arg] = kind
        for child in ast.walk(node):
            if isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                kind = _annotation_kind(child.annotation)
                if kind is not None:
                    tainted[child.target.id] = kind
            elif isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    kind = _value_kind(child.value)
                    if kind is not None:
                        tainted[target.id] = kind
        return tainted

    # -- write detection ------------------------------------------------

    def _check_node(
        self,
        context,
        node: ast.AST,
        tainted: Dict[str, str],
        graph,
        edges_by_call: Dict[int, list],
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = _root_name(target)
                kind = tainted.get(root) if root else None
                if kind is None:
                    continue
                if context.is_suppressed(node.lineno, self.code):
                    continue
                store = (
                    "subscript store"
                    if isinstance(target, ast.Subscript)
                    else "attribute store"
                )
                if isinstance(node, ast.AugAssign):
                    store = "in-place operation"
                yield context.violation(
                    node,
                    self.code,
                    f"{store} into {root!r}, a {kind}: build a new "
                    "object and publish it instead of mutating the "
                    "live one",
                )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            from repro.analysis.callgraph import MUTATING_METHODS

            method = node.func.attr
            if method in MUTATING_METHODS:
                root = _root_name(node.func.value)
                kind = tainted.get(root) if root else None
                if kind is not None and not (
                    method == "setflags" and _sets_readonly(node)
                ):
                    if not context.is_suppressed(node.lineno, self.code):
                        yield context.violation(
                            node,
                            self.code,
                            f".{method}(...) mutates {root!r}, a {kind}: "
                            "operate on a .copy() instead",
                        )
            # Positional args handed to a summary-proven mutator.
            yield from self._check_mutating_args(
                context, node, tainted, graph, edges_by_call
            )
        elif isinstance(node, ast.Call):
            yield from self._check_mutating_args(
                context, node, tainted, graph, edges_by_call
            )

    def _check_mutating_args(
        self,
        context,
        call: ast.Call,
        tainted: Dict[str, str],
        graph,
        edges_by_call: Dict[int, list],
    ) -> Iterator[Violation]:
        callees = edges_by_call.get(id(call))
        if not callees:
            return
        for position, arg in enumerate(call.args):
            if not isinstance(arg, (ast.Name, ast.Attribute)):
                continue
            root = _root_name(arg)
            kind = tainted.get(root) if root else None
            if kind is None:
                continue
            for callee in callees:
                summary = graph.summaries.get(callee)
                callee_info = graph.functions.get(callee)
                if summary is None or callee_info is None:
                    continue
                offset = 1 if callee_info.class_name else 0
                if position + offset not in summary.mutated:
                    continue
                if context.is_suppressed(call.lineno, self.code):
                    break
                yield context.violation(
                    call,
                    self.code,
                    f"{callee_info.qualname}() mutates its argument "
                    f"(proven by its effect summary), but the value "
                    f"reaches {root!r}, a {kind}: pass a copy",
                )
                break
