"""Dominance-semantics rule (SKY301).

Ciaccia & Martinenghi's point about parallel skyline variants — they
are only correct if they preserve the *exact* dominance semantics of
the sequential baseline — applies with force here: the templates and
the engine re-derive the same ``p ≺δ q`` comparisons in vectorized
form, and a single ``<`` written where the baseline uses ``<=`` (or a
missing tie-break against equality) silently changes which points are
"dominated" without failing any template test.  All dominance mask and
membership computations therefore live in :mod:`repro.core.dominance`
(scalar + vectorized) and :mod:`repro.engine.kernels` is required to
build on those helpers rather than re-rolling comparison chains.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import ModuleContext, Rule, Violation, register_rule

__all__ = ["DominanceSemanticsRule"]

#: Ordered-comparison operators that make up dominance tests.
ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq)


def _is_order_compare(node: ast.expr) -> bool:
    return isinstance(node, ast.Compare) and any(
        isinstance(op, ORDER_OPS) for op in node.ops
    )


@register_rule
class DominanceSemanticsRule(Rule):
    """SKY301 — no ad-hoc dominance chains in templates or the engine.

    Flags the vectorized tell-tales of a hand-rolled dominance test in
    ``repro.templates``/``repro.engine``: an elementwise comparison
    reduced with ``.all()``/``.any()`` (``(a <= b).all()``) or folded
    into a bitmask via matrix multiplication (``(rows < p) @ weights``).
    Use :func:`repro.core.dominance.dominance_masks_vs_all` and
    :func:`repro.core.dominance.dominated_mask` instead — one
    definition of ``≺δ``, shared by serial reference, kernels and
    workers alike.
    """

    code = "SKY301"
    name = "dominance-via-core-helpers"
    summary = (
        "templates/engine must use repro.core.dominance helpers, not "
        "ad-hoc <=/>= comparison chains"
    )

    def applies_to(self, module: str) -> bool:
        return module.startswith(("repro.templates", "repro.engine"))

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            flagged: Optional[ast.expr] = None
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("all", "any")
                    and _is_order_compare(func.value)
                ):
                    flagged = func.value
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("all", "any")
                    and node.args
                    and _is_order_compare(node.args[0])
                ):
                    flagged = node.args[0]  # np.all(a <= b)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                if _is_order_compare(node.left):
                    flagged = node.left
                elif _is_order_compare(node.right):
                    flagged = node.right
            if flagged is None:
                continue
            if context.is_suppressed(node.lineno, self.code):
                continue
            yield context.violation(
                node,
                self.code,
                "ad-hoc dominance comparison chain; route it through "
                "repro.core.dominance (dominance_masks_vs_all / "
                "dominated_mask) so every engine shares one definition "
                "of the dominance relation",
            )
