"""Trace events and the serving failure taxonomy.

A trace is a flat stream of :class:`TraceEvent` records, one per
lifecycle stage per request: ``admit`` (admission control decided),
``batch`` (the micro-batcher flushed the request into a batch),
``compute`` (the batch executor answered it against one snapshot — or,
on the sharded tier, one span per shard that answered the scatter),
``merge`` (sharded tier only: the scatter–gather barrier plus refine)
and ``respond`` (the final response left the service).  Infrastructure
events that are not tied to one request — a worker process dying
mid-batch, the executor recovering via retry — use the same record
shape with ``request_id=None``.

Every failed event carries exactly one *taxonomy class* from
:data:`FAILURE_CLASSES`.  The taxonomy is deliberately small and
total: every way a request can fail in this serving stack maps to one
class, so ``trace analyze`` can assert "no unclassified failures" and
CI can gate on specific classes.

========================  ============================================
class                     meaning
========================  ============================================
``Shed``                  admission control rejected the request (the
                          bounded queue was full; wire ``Overloaded``)
``DeadlineExceeded``      the client's deadline expired before the
                          batch executed
``WorkerDeath``           a pool worker died mid-task (SIGKILL, OOM);
                          the executor retried or fell back serially
``SnapshotSwapRace``      the answer-time snapshot no longer contains
                          a point that existed at admit time (a racing
                          delete published a newer version in between)
``BadRequest``            the client sent something invalid (unknown
                          op, malformed JSON, unknown point id with no
                          version race, bad subspace)
``InternalError``         anything else — a bug; CI fails on any
========================  ============================================
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "FAILURE_CLASSES",
    "STAGES",
    "SHED",
    "DEADLINE_EXCEEDED",
    "WORKER_DEATH",
    "SNAPSHOT_SWAP_RACE",
    "BAD_REQUEST",
    "INTERNAL_ERROR",
    "TraceEvent",
    "classify_wire_error",
]

#: The six taxonomy classes.  ``trace analyze`` marks any other value
#: (or a failure with no class at all) as *unclassified* — a CI error.
SHED = "Shed"
DEADLINE_EXCEEDED = "DeadlineExceeded"
WORKER_DEATH = "WorkerDeath"
SNAPSHOT_SWAP_RACE = "SnapshotSwapRace"
BAD_REQUEST = "BadRequest"
INTERNAL_ERROR = "InternalError"

FAILURE_CLASSES = (
    SHED,
    DEADLINE_EXCEEDED,
    WORKER_DEATH,
    SNAPSHOT_SWAP_RACE,
    BAD_REQUEST,
    INTERNAL_ERROR,
)

#: Request lifecycle stages, in order.  ``merge`` only appears on the
#: sharded tier: one event per scatter–gather barrier, carrying the
#: straggler attribution (which shard the barrier waited for) next to
#: the per-shard ``compute`` spans (``extra={"shard": i}``).
#: ``publish`` and ``compact`` are the write path's lifecycle: one
#: ``publish`` span per snapshot version the live updater swaps in
#: (``extra={"mode": "delta"|"rebuild", ...}``), and ``compact`` when
#: the version was produced by a compaction rebuild instead of a
#: copy-on-write delta — so ``trace analyze`` attributes write-path
#: latency stage-by-stage exactly like the read path.
STAGES = ("admit", "batch", "compute", "merge", "respond", "publish", "compact")


def _json_string(value: str) -> str:
    """A JSON string literal, fast-pathing the overwhelmingly common
    case (stage names, ops, taxonomy classes, short details) that needs
    no escaping.  ``json.dumps`` costs ~5us per call even with the C
    encoder — too much for four events per request — so it is reserved
    for strings containing quotes, backslashes or control characters.
    """
    if '"' not in value and "\\" not in value and value.isprintable():
        return f'"{value}"'
    return json.dumps(value)


def _json_scalar(value: Any) -> str:
    """One JSON value for the open-ended ``extra`` fields."""
    if type(value) is int:
        return str(value)
    if type(value) is str:
        return _json_string(value)
    return json.dumps(value)

#: Wire error type (``Response.error``) -> taxonomy class.  ``NotFound``
#: is context-dependent (see :func:`classify_wire_error`) and
#: ``Internal`` is the catch-all bug bucket.
_WIRE_TO_CLASS = {
    "Overloaded": SHED,
    "DeadlineExceeded": DEADLINE_EXCEEDED,
    "BadRequest": BAD_REQUEST,
    "NotFound": BAD_REQUEST,
    # A structurally valid request for a capability this deployment
    # does not offer (e.g. live updates on the sharded tier) — the
    # client's to fix, so it shares the BadRequest taxonomy class.
    "Unsupported": BAD_REQUEST,
    "Internal": INTERNAL_ERROR,
}


def classify_wire_error(
    error_type: Optional[str],
    admit_version: Optional[int] = None,
    answer_version: Optional[int] = None,
) -> Optional[str]:
    """Map a wire error type onto exactly one taxonomy class.

    ``None`` (a successful response) maps to ``None``.  ``NotFound``
    is the one context-dependent case: when the snapshot version moved
    between admission and answering, the point may well have existed
    when the client asked — that is a :data:`SNAPSHOT_SWAP_RACE`, not a
    client mistake.  Same version on both sides means the client named
    a point the server never knew: :data:`BAD_REQUEST`.
    """
    if error_type is None:
        return None
    if (
        error_type == "NotFound"
        and admit_version is not None
        and answer_version is not None
        and answer_version != admit_version
    ):
        return SNAPSHOT_SWAP_RACE
    return _WIRE_TO_CLASS.get(error_type, INTERNAL_ERROR)


@dataclass
class TraceEvent:
    """One jsonl trace record.

    ``outcome`` is ``"ok"`` or ``"failure"``; a failure carries its
    taxonomy class in ``failure``.  All other fields are optional
    context: ``delta`` identifies the subspace a query touched (the
    analyze report's "top offending subspaces"), ``batch_size`` the
    flush this request rode in, ``duration_ms`` how long the stage
    took, ``snapshot_version`` which snapshot answered.
    """

    stage: str
    outcome: str = "ok"
    failure: Optional[str] = None
    request_id: Optional[int] = None
    op: Optional[str] = None
    delta: Optional[int] = None
    snapshot_version: Optional[int] = None
    batch_size: Optional[int] = None
    duration_ms: Optional[float] = None
    detail: Optional[str] = None
    ts: float = field(default_factory=time.time)
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """One compact jsonl line; ``None`` fields are omitted.

        Assembled by hand (see :func:`_json_string`) because this runs
        four times per traced request on the serving hot path; output
        is byte-identical to ``json.dumps(payload, separators=...)``
        for escape-free strings.
        """
        parts = [
            f'"ts":{round(self.ts, 6)}',
            f'"stage":{_json_string(self.stage)}',
            f'"outcome":{_json_string(self.outcome)}',
        ]
        if self.failure is not None:
            parts.append(f'"failure":{_json_string(self.failure)}')
        if self.request_id is not None:
            parts.append(f'"request_id":{self.request_id}')
        if self.op is not None:
            parts.append(f'"op":{_json_string(self.op)}')
        if self.delta is not None:
            parts.append(f'"delta":{self.delta}')
        if self.snapshot_version is not None:
            parts.append(f'"snapshot_version":{self.snapshot_version}')
        if self.batch_size is not None:
            parts.append(f'"batch_size":{self.batch_size}')
        if self.duration_ms is not None:
            parts.append(f'"duration_ms":{round(self.duration_ms, 4)}')
        if self.detail is not None:
            parts.append(f'"detail":{_json_string(self.detail)}')
        for key, value in self.extra.items():
            parts.append(f'{_json_string(key)}:{_json_scalar(value)}')
        return "{" + ",".join(parts) + "}"

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one jsonl line back into an event (analyze side)."""
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ValueError("trace line is not a JSON object")
        known = {
            "stage", "outcome", "failure", "request_id", "op", "delta",
            "snapshot_version", "batch_size", "duration_ms", "detail", "ts",
        }
        extra = {key: value for key, value in obj.items() if key not in known}
        return cls(
            stage=str(obj.get("stage", "?")),
            outcome=str(obj.get("outcome", "ok")),
            failure=obj.get("failure"),
            request_id=obj.get("request_id"),
            op=obj.get("op"),
            delta=obj.get("delta"),
            snapshot_version=obj.get("snapshot_version"),
            batch_size=obj.get("batch_size"),
            duration_ms=obj.get("duration_ms"),
            detail=obj.get("detail"),
            ts=float(obj.get("ts", 0.0)),
            extra=extra,
        )
