"""``python -m repro trace analyze`` — failure summaries from a trace.

Ingests a jsonl trace file (written by
:class:`~repro.trace.tracer.JsonlTracer`) and reduces it to the
questions an operator asks first:

* how many requests failed, and with which taxonomy class?
* are there *unclassified* failures (a failure event whose class is
  missing or unknown — always a bug, and what CI gates on)?
* what do p50/p99 look like per lifecycle stage (admit → batch →
  compute → merge → respond), from the same
  :class:`~repro.serve.metrics.LatencyHistogram` machinery the live
  ``metrics`` endpoint uses?
* which subspaces and batch sizes are involved in the most failures?
* on a sharded trace: how do the per-shard compute spans compare, and
  which shard keeps stalling the merge barrier (straggler
  attribution) — the scatter–gather fan-out of one request id,
  stitched from one file?

The module is read-only and stdlib+repro only; it never touches the
serving process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.serve.metrics import LatencyHistogram
from repro.trace.events import FAILURE_CLASSES, STAGES, TraceEvent

__all__ = ["TraceReport", "analyze_events", "analyze_file", "format_report"]

#: The pseudo-class ``--fail-on`` accepts besides the real taxonomy.
UNCLASSIFIED = "unclassified"


@dataclass
class TraceReport:
    """The reduced view of one trace file."""

    events: int = 0
    malformed_lines: int = 0
    requests: int = 0
    stage_counts: Dict[str, int] = field(default_factory=dict)
    #: taxonomy class -> failure event count (only classes seen).
    failures: Dict[str, int] = field(default_factory=dict)
    #: failure events whose class is missing or not in the taxonomy.
    unclassified: List[TraceEvent] = field(default_factory=list)
    #: lifecycle stage -> duration histogram (stages with durations).
    latency: Dict[str, LatencyHistogram] = field(default_factory=dict)
    #: subspace delta -> (failure events, total events naming it).
    subspaces: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: batch size -> occurrences (from ``batch`` stage events).
    batch_sizes: Dict[int, int] = field(default_factory=dict)
    #: executor ``kind`` -> count (worker_death, retry_recovered, ...).
    executor_events: Dict[str, int] = field(default_factory=dict)
    #: shard -> compute-span histogram (sharded tier: ``compute``
    #: events tagged ``extra={"shard": i}``).
    shard_compute: Dict[int, LatencyHistogram] = field(default_factory=dict)
    #: shard -> failed compute spans (worker deaths seen mid-query).
    shard_failures: Dict[int, int] = field(default_factory=dict)
    #: shard -> times it was the merge barrier's straggler (from
    #: ``merge`` events' ``straggler_shard``).
    stragglers: Dict[int, int] = field(default_factory=dict)
    #: merge-barrier events seen (0 on single-process traces).
    merges: int = 0
    #: write-path publish mode -> count (``delta`` copy-on-write
    #: publishes vs ``rebuild`` compactions, from ``publish`` and
    #: ``compact`` stage events' ``extra={"mode": ...}``).
    publish_modes: Dict[str, int] = field(default_factory=dict)
    #: masks rewritten across all delta publishes (``extra["changed"]``).
    masks_changed: int = 0

    @property
    def failed(self) -> int:
        return sum(self.failures.values()) + len(self.unclassified)

    def present_classes(self, wanted: Sequence[str]) -> List[str]:
        """Which of ``wanted`` (taxonomy classes or ``unclassified``)
        actually occur in this trace — the ``--fail-on`` predicate."""
        hits = []
        for name in wanted:
            if name == UNCLASSIFIED:
                if self.unclassified:
                    hits.append(name)
            elif self.failures.get(name, 0) > 0:
                hits.append(name)
        return hits

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (``--json`` output)."""
        return {
            "events": self.events,
            "malformed_lines": self.malformed_lines,
            "requests": self.requests,
            "stages": dict(sorted(self.stage_counts.items())),
            "failures": dict(sorted(self.failures.items())),
            "unclassified": len(self.unclassified),
            "latency_ms": {
                stage: histogram.as_dict()
                for stage, histogram in sorted(self.latency.items())
            },
            "top_subspaces": [
                {"delta": delta, "failures": bad, "events": total}
                for delta, bad, total in top_subspaces(self)
            ],
            "batch_sizes": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
            "executor_events": dict(sorted(self.executor_events.items())),
            "shard_compute_ms": {
                str(shard): histogram.as_dict()
                for shard, histogram in sorted(self.shard_compute.items())
            },
            "shard_failures": {
                str(shard): count
                for shard, count in sorted(self.shard_failures.items())
            },
            "merge_barriers": {
                "merges": self.merges,
                "stragglers": {
                    str(shard): count
                    for shard, count in sorted(self.stragglers.items())
                },
            },
            "publishes": {
                "modes": dict(sorted(self.publish_modes.items())),
                "masks_changed": self.masks_changed,
            },
        }


def top_subspaces(
    report: TraceReport, limit: int = 10
) -> List[Tuple[int, int, int]]:
    """``(delta, failures, events)`` rows, worst offenders first."""
    rows = [
        (delta, bad, total)
        for delta, (bad, total) in report.subspaces.items()
    ]
    rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
    return rows[:limit]


def analyze_events(events: Iterable[TraceEvent]) -> TraceReport:
    """Reduce an event stream to a :class:`TraceReport`."""
    report = TraceReport()
    request_ids = set()
    for event in events:
        report.events += 1
        report.stage_counts[event.stage] = (
            report.stage_counts.get(event.stage, 0) + 1
        )
        if event.request_id is not None:
            request_ids.add(event.request_id)
        if event.outcome == "failure":
            if event.failure in FAILURE_CLASSES:
                report.failures[event.failure] = (
                    report.failures.get(event.failure, 0) + 1
                )
            else:
                report.unclassified.append(event)
        if event.duration_ms is not None:
            histogram = report.latency.get(event.stage)
            if histogram is None:
                histogram = report.latency[event.stage] = LatencyHistogram()
            histogram.record(event.duration_ms / 1000.0)
        if event.delta is not None:
            bad, total = report.subspaces.get(event.delta, (0, 0))
            report.subspaces[event.delta] = (
                bad + (1 if event.outcome == "failure" else 0),
                total + 1,
            )
        if event.stage == "batch" and event.batch_size is not None:
            report.batch_sizes[event.batch_size] = (
                report.batch_sizes.get(event.batch_size, 0) + 1
            )
        kind = event.extra.get("kind")
        if kind is not None:
            report.executor_events[str(kind)] = (
                report.executor_events.get(str(kind), 0) + 1
            )
        shard = event.extra.get("shard")
        if event.stage == "compute" and isinstance(shard, int):
            if event.outcome == "failure":
                report.shard_failures[shard] = (
                    report.shard_failures.get(shard, 0) + 1
                )
            elif event.duration_ms is not None:
                shard_histogram = report.shard_compute.get(shard)
                if shard_histogram is None:
                    shard_histogram = LatencyHistogram()
                    report.shard_compute[shard] = shard_histogram
                shard_histogram.record(event.duration_ms / 1000.0)
        if event.stage in ("publish", "compact"):
            mode = str(event.extra.get("mode", event.stage))
            report.publish_modes[mode] = (
                report.publish_modes.get(mode, 0) + 1
            )
            changed = event.extra.get("changed")
            if isinstance(changed, int):
                report.masks_changed += changed
        if event.stage == "merge":
            report.merges += 1
            straggler = event.extra.get("straggler_shard")
            if isinstance(straggler, int):
                report.stragglers[straggler] = (
                    report.stragglers.get(straggler, 0) + 1
                )
    report.requests = len(request_ids)
    return report


def analyze_file(path: str) -> TraceReport:
    """Parse a jsonl trace file; malformed lines are counted, not fatal."""
    events: List[TraceEvent] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(line))
            except (ValueError, TypeError):
                malformed += 1
    report = analyze_events(events)
    report.malformed_lines = malformed
    return report


def _format_count_table(rows: List[Tuple[str, str]], indent: str = "  ") -> str:
    if not rows:
        return f"{indent}(none)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(
        f"{indent}{label.ljust(width)}  {value}" for label, value in rows
    )


def format_report(
    report: TraceReport, title: Optional[str] = None, top: int = 5
) -> str:
    """The human-readable ``trace analyze`` output."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"events: {report.events} ({report.requests} requests, "
        f"{report.malformed_lines} malformed lines)"
    )
    lines.append("stages:")
    lines.append(_format_count_table([
        (stage, str(report.stage_counts.get(stage, 0)))
        for stage in STAGES
        if report.stage_counts.get(stage, 0)
    ] + [
        (stage, str(count))
        for stage, count in sorted(report.stage_counts.items())
        if stage not in STAGES
    ]))
    lines.append(f"failures: {report.failed}")
    failure_rows = [
        (name, str(report.failures[name]))
        for name in FAILURE_CLASSES
        if report.failures.get(name, 0)
    ]
    if report.unclassified:
        failure_rows.append((UNCLASSIFIED, str(len(report.unclassified))))
    lines.append(_format_count_table(failure_rows))
    if report.latency:
        lines.append("latency per stage (ms):")
        for stage in STAGES:
            histogram = report.latency.get(stage)
            if histogram is None:
                continue
            stats = histogram.as_dict()
            lines.append(
                f"  {stage.ljust(8)}  p50={stats['p50_ms']:.3f}  "
                f"p99={stats['p99_ms']:.3f}  mean={stats['mean_ms']:.3f}  "
                f"n={int(stats['count'])}"
            )
    if report.shard_compute or report.shard_failures:
        lines.append("per-shard compute spans (ms):")
        shards = sorted(
            set(report.shard_compute) | set(report.shard_failures)
        )
        for shard in shards:
            histogram = report.shard_compute.get(shard)
            deaths = report.shard_failures.get(shard, 0)
            suffix = f"  deaths={deaths}" if deaths else ""
            if histogram is None:
                lines.append(f"  shard {shard}  (no spans){suffix}")
                continue
            stats = histogram.as_dict()
            lines.append(
                f"  shard {shard}  p50={stats['p50_ms']:.3f}  "
                f"p99={stats['p99_ms']:.3f}  mean={stats['mean_ms']:.3f}  "
                f"n={int(stats['count'])}{suffix}"
            )
    if report.merges:
        lines.append(
            f"merge barriers: {report.merges}, straggler attribution:"
        )
        lines.append(_format_count_table([
            (
                f"shard {shard}",
                f"{count}/{report.merges} "
                f"({100.0 * count / report.merges:.0f}%)",
            )
            for shard, count in sorted(
                report.stragglers.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]))
    if report.publish_modes:
        total_publishes = sum(report.publish_modes.values())
        modes = ", ".join(
            f"{mode}={count}"
            for mode, count in sorted(report.publish_modes.items())
        )
        lines.append(
            f"snapshot publishes: {total_publishes} ({modes}), "
            f"{report.masks_changed} masks rewritten"
        )
    offenders = top_subspaces(report, limit=top)
    if offenders:
        lines.append("top subspaces (failures/events):")
        lines.append(_format_count_table([
            (f"delta={delta:#b}", f"{bad}/{total}")
            for delta, bad, total in offenders
        ]))
    if report.batch_sizes:
        batched = sum(report.batch_sizes.values())
        weighted = sum(
            size * count for size, count in report.batch_sizes.items()
        )
        biggest = max(report.batch_sizes)
        lines.append(
            f"batched requests: {batched}, request-weighted mean batch "
            f"size {weighted / batched:.2f}, max {biggest}"
        )
    if report.executor_events:
        lines.append("executor events:")
        lines.append(_format_count_table([
            (kind, str(count))
            for kind, count in sorted(report.executor_events.items())
        ]))
    return "\n".join(lines)
