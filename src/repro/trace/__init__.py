"""repro.trace — structured execution traces for the serving stack.

The operational flight recorder ROADMAP item 5 asks for: every request
through :mod:`repro.serve` leaves a jsonl record per lifecycle stage
(admit → batch → compute → respond), every failure carries exactly one
class from a small typed taxonomy, and worker deaths inside
:mod:`repro.engine.parallel` surface as first-class events instead of
silent retries.  ``python -m repro trace analyze`` turns a trace file
into a failure summary (per-class counts, per-stage p50/p99, top
offending subspaces and batch sizes); CI fails on any
``InternalError`` or unclassified event.

Pieces:

* :mod:`repro.trace.events` — :class:`TraceEvent` and the taxonomy
  (:data:`FAILURE_CLASSES`, :func:`classify_wire_error`);
* :mod:`repro.trace.tracer` — :class:`NullTracer` (the free default)
  and :class:`JsonlTracer` (buffered jsonl sink), plus the global
  executor sink bridge;
* :mod:`repro.trace.analyze` — the report reducer behind the CLI
  (imported lazily: it depends on :mod:`repro.serve.metrics`).
"""

from repro.trace.events import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    FAILURE_CLASSES,
    INTERNAL_ERROR,
    SHED,
    SNAPSHOT_SWAP_RACE,
    STAGES,
    WORKER_DEATH,
    TraceEvent,
    classify_wire_error,
)
from repro.trace.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Tracer,
    executor_event_to_trace,
    get_executor_sink,
    install_executor_sink,
    uninstall_executor_sink,
)

__all__ = [
    "BAD_REQUEST",
    "DEADLINE_EXCEEDED",
    "FAILURE_CLASSES",
    "INTERNAL_ERROR",
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "SHED",
    "SNAPSHOT_SWAP_RACE",
    "STAGES",
    "TraceEvent",
    "Tracer",
    "WORKER_DEATH",
    "classify_wire_error",
    "executor_event_to_trace",
    "get_executor_sink",
    "install_executor_sink",
    "uninstall_executor_sink",
]
