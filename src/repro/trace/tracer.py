"""Trace sinks: the no-op default and the buffered jsonl writer.

Tracing is opt-in and designed to cost nothing when off and very
little when on.  :class:`NullTracer` (the default everywhere) has
``enabled = False`` so hot paths can skip even *building* an event;
:class:`JsonlTracer` appends one compact JSON line per event to a
buffered text file, under a lock so the asyncio event loop, the
updater's worker threads and the process-pool parent can all emit
safely.

The executor bridge: :mod:`repro.engine.parallel` knows nothing about
serving, so it reports worker deaths as plain dicts to whatever sink
is installed — either an explicit ``on_event`` callback or the
process-global sink registered here with :func:`install_executor_sink`
(used by ``python -m repro serve --trace`` so snapshot bootstrap
failures land in the same trace file as request lifecycles).
"""

from __future__ import annotations

import io
import threading
from types import TracebackType
from typing import Any, Callable, Dict, Optional, Type

from repro.trace.events import INTERNAL_ERROR, WORKER_DEATH, TraceEvent

__all__ = [
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "install_executor_sink",
    "uninstall_executor_sink",
    "get_executor_sink",
    "executor_event_to_trace",
]

#: Executor event ``kind`` -> (outcome, taxonomy class or None).
#: ``worker_death`` covers a killed worker *and* a bin timeout (a hung
#: worker is indistinguishable from a dead one to the parent); a task
#: function raising is a bug in the task, hence ``InternalError``.
_EXECUTOR_KINDS: Dict[str, Optional[str]] = {
    "worker_death": WORKER_DEATH,
    "bin_timeout": WORKER_DEATH,
    "task_error": INTERNAL_ERROR,
    "pool_unavailable": None,
    "retry_recovered": None,
    "serial_recovered": None,
}


def executor_event_to_trace(event: Dict[str, Any]) -> TraceEvent:
    """Convert a :class:`~repro.engine.parallel.ParallelExecutor` event
    dict into a :class:`TraceEvent` (stage ``compute``, no request id).
    """
    kind = str(event.get("kind", "unknown"))
    failure = _EXECUTOR_KINDS.get(kind, INTERNAL_ERROR)
    extra = {"kind": kind}
    for key in ("tasks", "attempt", "recovered_via"):
        if key in event:
            extra[key] = event[key]
    return TraceEvent(
        stage="compute",
        outcome="ok" if failure is None else "failure",
        failure=failure,
        detail=event.get("error"),
        extra=extra,
    )


class Tracer:
    """Base sink; see :class:`NullTracer` and :class:`JsonlTracer`.

    ``enabled`` is the cheap guard: callers with per-event construction
    cost (building dicts, reading clocks) check it first.  ``emit``
    must never raise into the serving path.
    """

    enabled: bool = False

    def __init__(self) -> None:
        self._id_lock = threading.Lock()
        self._next_id = 0

    def next_request_id(self) -> int:
        """A process-unique, monotonically increasing request id."""
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def emit(self, event: TraceEvent) -> None:
        """Record one event (no-op in the base/null tracer)."""

    def executor_sink(self) -> Callable[[Dict[str, Any]], None]:
        """An ``on_event`` callback adapting executor dicts to events."""

        def sink(event: Dict[str, Any]) -> None:
            self.emit(executor_event_to_trace(event))

        return sink

    def flush(self) -> None:
        """Push buffered events to the sink's backing store."""

    def close(self) -> None:
        """Flush and release the sink; further emits are dropped."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.close()


class NullTracer(Tracer):
    """The default: tracing off, every call a no-op."""


#: Shared no-op instance — safe because it holds no mutable trace state
#: (request ids remain unique per process, which is all callers need).
NULL_TRACER = NullTracer()


class JsonlTracer(Tracer):
    """Append-only jsonl sink with small-batch buffering.

    ``flush_every`` bounds how many events can sit in the user-space
    buffer (a crash loses at most that many lines); ``flush_every=1``
    makes every event durable immediately at a syscall-per-event cost.
    """

    enabled = True

    def __init__(self, path: str, flush_every: int = 64) -> None:
        super().__init__()
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = str(path)
        self.flush_every = flush_every
        self._lock = threading.Lock()
        self._file: Optional[io.TextIOWrapper] = open(
            self.path, "a", encoding="utf-8"
        )
        self._since_flush = 0
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        line = event.to_json()
        with self._lock:
            if self._file is None:
                return
            try:
                self._file.write(line + "\n")
                self._since_flush += 1
                self.emitted += 1
                if self._since_flush >= self.flush_every:
                    self._file.flush()
                    self._since_flush = 0
            except (OSError, ValueError):
                pass  # a full disk must not take the serving path down

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.flush()
                except (OSError, ValueError):
                    pass
                self._since_flush = 0

    def close(self) -> None:
        with self._lock:
            if self._file is None:
                return
            file, self._file = self._file, None
            try:
                file.flush()
                file.close()
            except (OSError, ValueError):
                pass


#: The process-global executor sink (see module docstring).
_EXECUTOR_SINK: Optional[Callable[[Dict[str, Any]], None]] = None


def install_executor_sink(sink: Callable[[Dict[str, Any]], None]) -> None:
    """Route executor events from *any* ParallelExecutor constructed
    without an explicit ``on_event`` into ``sink``."""
    global _EXECUTOR_SINK
    _EXECUTOR_SINK = sink


def uninstall_executor_sink() -> None:
    global _EXECUTOR_SINK
    _EXECUTOR_SINK = None


def get_executor_sink() -> Optional[Callable[[Dict[str, Any]], None]]:
    return _EXECUTOR_SINK
