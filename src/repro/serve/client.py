"""A small blocking NDJSON client for the serve front-end.

Used by the CLI (``python -m repro query``), the test suite and the
smoke/throughput harnesses.  Deliberately synchronous and stdlib-only:
one socket, one request outstanding at a time, typed errors surfaced
as :class:`ServeError` — the simplest thing a consumer can embed.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A typed error response (``Overloaded``, ``BadRequest``, ...)."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


class ServeClient:
    """Blocking client; usable as a context manager."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7171, timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request_raw(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request, return the raw response dict (any outcome)."""
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op}
        payload.update(
            {key: value for key, value in params.items() if value is not None}
        )
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = json.loads(line.decode("utf-8"))
            if response.get("id") == request_id:
                return response
            # A response to a request this client never sent: with one
            # request outstanding at a time this cannot happen, but a
            # defensive skip beats deadlocking on a protocol hiccup.

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request; raise :class:`ServeError` on typed failure."""
        response = self.request_raw(op, **params)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("type", "Internal"), error.get("message", "")
            )
        return response

    # -- typed endpoints -----------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")["result"]

    def skyline(
        self, delta: Any, timeout_ms: Optional[float] = None
    ) -> List[int]:
        response = self.request("skyline", delta=delta, timeout_ms=timeout_ms)
        return list(response["result"])

    def membership(
        self, point_id: int, delta: Any, timeout_ms: Optional[float] = None
    ) -> bool:
        response = self.request(
            "membership", point_id=point_id, delta=delta,
            timeout_ms=timeout_ms,
        )
        return bool(response["result"])

    def topk_dynamic(
        self,
        q: Sequence[float],
        k: int = 10,
        delta: Any = None,
        timeout_ms: Optional[float] = None,
    ) -> List[int]:
        response = self.request(
            "topk_dynamic", q=list(q), k=k, delta=delta,
            timeout_ms=timeout_ms,
        )
        return list(response["result"])

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")["result"]

    def insert(self, point: Sequence[float]) -> int:
        response = self.request("insert", point=list(point))
        return int(response["result"]["point_id"])

    def delete(self, point_id: int) -> int:
        """Delete a point; returns the snapshot version that reflects it."""
        response = self.request("delete", point_id=point_id)
        return int(response.get("snapshot_version", 0))

    def skyline_diff(
        self,
        delta: Any,
        v_from: int,
        v_to: int,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, List[int]]:
        """Skyline membership changes of one subspace over ``(v_from, v_to]``.

        Returns ``{"entered": [...], "left": [...]}`` — the point ids
        that entered / left the ``delta`` skyline between the two
        published snapshot versions.
        """
        response = self.request(
            "skyline_diff", delta=delta, timeout_ms=timeout_ms,
            **{"from": v_from, "to": v_to},
        )
        result = response["result"]
        return {
            "entered": list(result["entered"]),
            "left": list(result["left"]),
        }

    def snapshot_version(self) -> int:
        return int(self.request("ping").get("snapshot_version", 0))
