"""Immutable serving snapshots and the atomic snapshot swap.

The serving layer's consistency story is *snapshot isolation by
replacement*: a :class:`ServingSnapshot` bundles a built
:class:`~repro.core.hashcube.HashCube` with the dataset it was built
from and is never mutated after construction.  Readers grab
``holder.current`` once per batch and answer every request in the
batch from that one object; a background writer (wrapping a
:class:`~repro.core.maintain.SkycubeMaintainer`) applies inserts and
deletes off the event loop, builds a *new* snapshot, and publishes it
with a single reference assignment — atomic under the GIL, so readers
never observe a half-updated cube, only the version before or the
version after.

This is the materialise-once side of the paper's HashCube-vs-ad-hoc
trade-off (Section 3): the cube answers materialised subspaces in one
probe, and the snapshot falls back to the vectorised
:mod:`repro.engine` kernels for subspaces a *partial* cube never
stored.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitmask import full_space, popcount
from repro.core.hashcube import HashCube
from repro.core.maintain import MaskDelta, SkycubeMaintainer
from repro.engine import fast_skycube, fast_skyline
from repro.query.dynamic import dynamic_topk
from repro.trace import NULL_TRACER, TraceEvent, Tracer

__all__ = ["ServingSnapshot", "SnapshotHolder", "ChangeLog", "LiveUpdater"]


class ServingSnapshot:
    """One immutable, consistent view of the served skycube.

    ``ids[row]`` maps dataset rows to stable point ids (after deletes
    the id space need not be dense).  ``max_level`` marks a partially
    materialised cube; queries above it take the ad-hoc kernel path.
    """

    __slots__ = ("version", "cube", "data", "ids", "max_level", "_known_ids")

    def __init__(
        self,
        cube: HashCube,
        data: np.ndarray,
        ids: Optional[Sequence[int]] = None,
        version: int = 0,
        max_level: Optional[int] = None,
        copy: bool = True,
    ) -> None:
        # ``copy=False`` trusts the caller to hand over a buffer nobody
        # mutates — the shard workers' zero-copy shared-memory views.
        if copy:
            data = np.array(data, dtype=np.float64)  # private copy
        else:
            data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[1] != cube.d:
            raise ValueError(
                f"cube is {cube.d}-dimensional but data has "
                f"{data.shape[1]} columns"
            )
        data.setflags(write=False)
        if ids is None:
            id_array = np.arange(len(data), dtype=np.int64)
        else:
            id_array = np.array(ids, dtype=np.int64)
            if id_array.shape != (len(data),):
                raise ValueError(
                    f"expected {len(data)} ids, got shape {id_array.shape}"
                )
        id_array.setflags(write=False)
        self.version = version
        self.cube = cube
        self.data = data
        self.ids = id_array
        self.max_level = max_level
        # tolist() yields python ints at C speed; a genexpr over the
        # array would cost an O(n) python loop on every delta publish.
        self._known_ids = frozenset(id_array.tolist())

    # -- constructors --------------------------------------------------

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        version: int = 0,
        max_level: Optional[int] = None,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
        engine: str = "packed",
        copy: bool = True,
        backend: Optional[str] = None,
    ) -> "ServingSnapshot":
        """Materialise ``data`` with the vectorised engine and wrap it.

        ``engine`` selects the :func:`repro.engine.fast_skycube` sweep
        — any of :data:`repro.engine.SKYCUBE_ENGINES` (``"packed"``,
        the default; ``"packed-filtered"``, fastest on clustered or
        correlated data; ``"loop"``).  ``backend`` picks the packed
        kernel backend (:data:`repro.engine.jit.BACKEND_CHOICES`).  All
        combinations produce bit-identical snapshots; the packed sweeps
        bootstrap serving several times faster than the loop.
        """
        skycube = fast_skycube(
            data,
            max_level=max_level,
            word_width=word_width,
            engine=engine,
            backend=backend,
        )
        cube = skycube.store
        assert isinstance(cube, HashCube)
        return cls(cube, data, version=version, max_level=max_level, copy=copy)

    @classmethod
    def from_maintainer(
        cls,
        maintainer: SkycubeMaintainer,
        version: int,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
    ) -> "ServingSnapshot":
        """Freeze a maintainer's exact current state into a snapshot.

        One aligned ``snapshot_arrays`` copy plus the bulk
        :meth:`~repro.core.hashcube.HashCube.from_masks` constructor —
        distinct masks are split into stored words once, ids appended
        group-wise — instead of a per-point Python insert loop.  The
        legacy big-int maintainer (``d`` beyond the packed engine)
        has no packed mask rows and keeps the per-mask path.
        """
        ids, data, mask_rows = maintainer.snapshot_arrays()
        if mask_rows is not None:
            cube = HashCube.from_masks(
                maintainer.d, ids, mask_rows, word_width
            )
        else:
            cube = HashCube(maintainer.d, word_width)
            for pid in ids.tolist():
                cube.insert(pid, maintainer.membership_mask(pid))
        return cls(cube, data, ids=ids, version=version, copy=False)

    # -- queries -------------------------------------------------------

    @property
    def d(self) -> int:
        return self.cube.d

    def __len__(self) -> int:
        return len(self.data)

    def materialised(self, delta: int) -> bool:
        """Whether the cube stores subspace ``delta`` (partial cubes)."""
        return self.max_level is None or popcount(delta) <= self.max_level

    def _check_delta(self, delta: int) -> None:
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")

    def knows(self, point_id: int) -> bool:
        """Whether this snapshot's dataset contains the point id."""
        return point_id in self._known_ids

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """``S_δ`` ids: one cube probe, or the ad-hoc kernel fallback."""
        self._check_delta(delta)
        if self.materialised(delta):
            return self.cube.skyline(delta)
        if len(self.data) == 0:
            return ()
        rows = fast_skyline(self.data, delta)
        return tuple(int(i) for i in self.ids[rows])

    def membership(self, point_id: int, delta: int) -> bool:
        """``p ∈ S_δ`` via the O(1) single-word HashCube probe.

        Raises :exc:`KeyError` for ids the snapshot has never seen —
        the service maps that to a typed ``NotFound`` response, which
        is distinct from "known point, not in this skyline".
        """
        self._check_delta(delta)
        if not self.knows(point_id):
            raise KeyError(f"unknown point id {point_id}")
        if self.materialised(delta):
            return self.cube.contains(point_id, delta)
        return point_id in self.skyline(delta)

    def topk_dynamic(
        self, query: Sequence[float], k: int = 10, delta: Optional[int] = None
    ) -> List[int]:
        """Top-k dynamic skyline relative to ``query`` (always ad-hoc)."""
        if delta is not None:
            self._check_delta(delta)
        if len(self.data) == 0:
            return []
        rows = dynamic_topk(self.data, query, k=k, delta=delta)
        return [int(self.ids[row]) for row in rows]


class SnapshotHolder:
    """The single mutable cell of the serving layer.

    ``current`` is read without any locking — publishing is one
    attribute assignment, so a reader sees either the old or the new
    snapshot object, both internally consistent.  ``on_publish``
    callbacks let the server push the new version into metrics and let
    tests retain every published snapshot for consistency checks.
    """

    def __init__(self, initial: ServingSnapshot) -> None:
        self._snapshot = initial
        self._publish_lock = threading.Lock()
        self._subscribers: List[Callable[[ServingSnapshot], None]] = []

    @property
    def current(self) -> ServingSnapshot:
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    def subscribe(self, callback: Callable[[ServingSnapshot], None]) -> None:
        self._subscribers.append(callback)

    def publish(self, snapshot: ServingSnapshot) -> None:
        """Swap in a newer snapshot; versions must strictly increase."""
        with self._publish_lock:
            if snapshot.version <= self._snapshot.version:
                raise ValueError(
                    f"stale snapshot version {snapshot.version} "
                    f"(current is {self._snapshot.version})"
                )
            self._snapshot = snapshot
        for callback in list(self._subscribers):
            callback(snapshot)


class ChangeLog:
    """Bounded per-version record of mask movement, for ``skyline_diff``.

    Every published version ``v`` records ``{point id: (mask before,
    mask after)}`` for exactly the masks that moved (``None`` marks
    non-existence: an inserted id has ``before=None``, a removed id
    ``after=None``).  :meth:`diff` composes the records over a version
    interval — earliest ``before`` and latest ``after`` per id — and
    answers the *temporal/emerging skyline* question per subspace:
    which points entered ``S_δ`` between v1 and v2, and which left.

    Retention is bounded (:attr:`retention` versions); asking about a
    version older than the window, newer than the latest publish, or a
    reversed interval raises :class:`ValueError` (the service maps it
    to a typed ``BadRequest``).  Thread-safe: the updater records under
    its mutation lock while query threads read concurrently.
    """

    DEFAULT_RETENTION = 64

    def __init__(
        self,
        d: int,
        base_version: int = 0,
        retention: int = DEFAULT_RETENTION,
    ) -> None:
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        self.d = d
        self.retention = retention
        self._lock = threading.Lock()
        #: version -> {id: (before mask | None, after mask | None)}
        self._entries: "OrderedDict[int, Dict[int, Tuple[Optional[int], Optional[int]]]]" = (
            OrderedDict()
        )
        #: The oldest version usable as a diff's ``from`` side — the
        #: version published just before the earliest retained entry.
        self._base = base_version

    def record(self, version: int, delta: MaskDelta) -> None:
        """Append one published version's mask movement."""
        changes: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        for pid, after in delta.changed.items():
            changes[pid] = (delta.previous.get(pid), after)
        for pid in delta.removed:
            changes[pid] = (delta.previous[pid], None)
        with self._lock:
            if self._entries:
                latest = next(reversed(self._entries))
                if version <= latest:
                    raise ValueError(
                        f"changelog version {version} is not newer than "
                        f"{latest}"
                    )
            elif version <= self._base:
                raise ValueError(
                    f"changelog version {version} is not newer than the "
                    f"base {self._base}"
                )
            self._entries[version] = changes
            while len(self._entries) > self.retention:
                evicted, _ = self._entries.popitem(last=False)
                self._base = evicted

    def versions(self) -> Tuple[int, int]:
        """``(oldest usable 'from', latest recorded)`` version bounds."""
        with self._lock:
            if not self._entries:
                return self._base, self._base
            return self._base, next(reversed(self._entries))

    def diff(
        self, delta: int, v_from: int, v_to: int
    ) -> Tuple[List[int], List[int]]:
        """``(entered, left)`` of ``S_δ`` between two published versions.

        A point counts as *entered* when it was absent from ``S_δ`` at
        ``v_from`` (not stored, or mask bit set) and present at
        ``v_to``; *left* is the reverse.  Points that moved out and
        back within the interval cancel out — only the endpoint states
        matter, exactly as if two full snapshots were compared.
        """
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")
        with self._lock:
            oldest = self._base
            latest = (
                next(reversed(self._entries)) if self._entries else oldest
            )
            if v_from >= v_to:
                raise ValueError(
                    f"diff needs from < to, got {v_from}:{v_to}"
                )
            if v_to > latest:
                raise ValueError(
                    f"unknown snapshot version {v_to} (latest is {latest})"
                )
            if v_from < oldest:
                raise ValueError(
                    f"snapshot version {v_from} is outside the changelog "
                    f"retention window (oldest is {oldest})"
                )
            first_before: Dict[int, Optional[int]] = {}
            last_after: Dict[int, Optional[int]] = {}
            for version, changes in self._entries.items():
                if version <= v_from or version > v_to:
                    continue
                for pid, (before, after) in changes.items():
                    if pid not in first_before:
                        first_before[pid] = before
                    last_after[pid] = after
        bit = 1 << (delta - 1)
        entered: List[int] = []
        left: List[int] = []
        for pid, before in first_before.items():
            after = last_after[pid]
            was = before is not None and not before & bit
            now = after is not None and not after & bit
            if now and not was:
                entered.append(pid)
            elif was and not now:
                left.append(pid)
        return sorted(entered), sorted(left)


class LiveUpdater:
    """Applies live inserts/deletes and publishes *delta* snapshots.

    Owns the :class:`SkycubeMaintainer`; every mutation runs under one
    lock (updates are serialised — the maintainer is not thread-safe)
    and ends by publishing a new :class:`ServingSnapshot`, so queries
    racing an update see exactly the before- or after-state.  The
    service calls :meth:`insert`/:meth:`delete` from a worker thread
    (``asyncio.to_thread``) to keep the event loop free.

    Publishing is incremental: the maintainer reports the exact
    :class:`~repro.core.maintain.MaskDelta` of the mutation, the new
    cube is a copy-on-write
    :meth:`~repro.core.hashcube.HashCube.with_updates` clone sharing
    every untouched table with the previous version, and the data/id
    arrays change by one row — O(affected) instead of the former
    O(n)-per-mutation full rebuild.  Every ``compact_every``
    generations the publish is a full ``from_maintainer`` rebuild
    instead (the compaction that bounds copy-on-write fragmentation);
    both paths emit a ``publish``/``compact`` trace span and record the
    delta in the :class:`ChangeLog` that backs ``skyline_diff``.
    """

    DEFAULT_COMPACT_EVERY = 64

    def __init__(
        self,
        maintainer: SkycubeMaintainer,
        holder: SnapshotHolder,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        tracer: Optional[Tracer] = None,
        changelog_retention: int = ChangeLog.DEFAULT_RETENTION,
    ) -> None:
        if compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.maintainer = maintainer
        self.holder = holder
        self.word_width = word_width
        self.compact_every = compact_every
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.changelog = ChangeLog(
            maintainer.d, holder.version, changelog_retention
        )
        self._lock = threading.Lock()

    @classmethod
    def bootstrap(
        cls,
        data: np.ndarray,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
        compact_every: int = DEFAULT_COMPACT_EVERY,
        tracer: Optional[Tracer] = None,
        changelog_retention: int = ChangeLog.DEFAULT_RETENTION,
    ) -> Tuple["LiveUpdater", SnapshotHolder]:
        """Build the maintainer + initial snapshot + holder in one go."""
        maintainer = SkycubeMaintainer(data)
        holder = SnapshotHolder(
            ServingSnapshot.from_maintainer(maintainer, 0, word_width)
        )
        updater = cls(
            maintainer,
            holder,
            word_width,
            compact_every=compact_every,
            tracer=tracer,
            changelog_retention=changelog_retention,
        )
        return updater, holder

    def _delta_arrays(
        self, current: ServingSnapshot, delta: MaskDelta
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The next version's ``(data, ids)`` from the previous one.

        Removed rows are filtered, inserted rows appended; everything
        else is one aligned copy of the previous arrays, so the cost is
        a memcpy, not a re-stack of per-point arrays.
        """
        data, ids = current.data, current.ids
        if delta.removed:
            keep = ~np.isin(
                ids, np.asarray(delta.removed, dtype=np.int64)
            )
            data = data[keep]
            ids = ids[keep]
        new_ids = [
            pid for pid in delta.changed if not current.knows(pid)
        ]
        if new_ids:
            added = np.stack(
                [self.maintainer.point(pid) for pid in new_ids]
            )
            data = np.concatenate([data, added]) if len(data) else added
            ids = np.concatenate(
                [ids, np.asarray(new_ids, dtype=np.int64)]
            )
        return data, ids

    def _publish(self, delta: MaskDelta) -> ServingSnapshot:
        """Build + swap in the next version; returns the new snapshot."""
        start = time.perf_counter()
        current = self.holder.current
        version = current.version + 1
        compacting = current.cube.generation + 1 > self.compact_every
        if compacting:
            snapshot = ServingSnapshot.from_maintainer(
                self.maintainer, version, self.word_width
            )
        else:
            cube = current.cube.with_updates(delta.changed, delta.removed)
            data, ids = self._delta_arrays(current, delta)
            snapshot = ServingSnapshot(
                cube,
                data,
                ids=ids,
                version=version,
                max_level=current.max_level,
                copy=False,
            )
        self.changelog.record(version, delta)
        self.holder.publish(snapshot)
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    stage="compact" if compacting else "publish",
                    snapshot_version=version,
                    duration_ms=(time.perf_counter() - start) * 1e3,
                    extra={
                        "mode": "rebuild" if compacting else "delta",
                        "changed": len(delta.changed),
                        "removed": len(delta.removed),
                        "generation": snapshot.cube.generation,
                    },
                )
            )
        return snapshot

    def insert(self, point: Sequence[float]) -> Tuple[int, int]:
        """Insert a point and publish; returns ``(point id, version)``."""
        with self._lock:
            point_id, delta = self.maintainer.insert_with_delta(point)
            snapshot = self._publish(delta)
            return point_id, snapshot.version

    def delete(self, point_id: int) -> Tuple[Optional[int], int]:
        """Delete a point and publish; returns ``(None, version)``.

        The ``(point_id_or_None, version)`` shape mirrors
        :meth:`insert` so the service surfaces ``snapshot_version``
        uniformly for both mutations.
        """
        with self._lock:
            delta = self.maintainer.delete_with_delta(point_id)
            snapshot = self._publish(delta)
            return None, snapshot.version

    def skyline_diff(
        self, delta: int, v_from: int, v_to: int
    ) -> Tuple[List[int], List[int]]:
        """``(entered, left)`` of ``S_δ`` between two published versions."""
        return self.changelog.diff(delta, v_from, v_to)
