"""Immutable serving snapshots and the atomic snapshot swap.

The serving layer's consistency story is *snapshot isolation by
replacement*: a :class:`ServingSnapshot` bundles a built
:class:`~repro.core.hashcube.HashCube` with the dataset it was built
from and is never mutated after construction.  Readers grab
``holder.current`` once per batch and answer every request in the
batch from that one object; a background writer (wrapping a
:class:`~repro.core.maintain.SkycubeMaintainer`) applies inserts and
deletes off the event loop, builds a *new* snapshot, and publishes it
with a single reference assignment — atomic under the GIL, so readers
never observe a half-updated cube, only the version before or the
version after.

This is the materialise-once side of the paper's HashCube-vs-ad-hoc
trade-off (Section 3): the cube answers materialised subspaces in one
probe, and the snapshot falls back to the vectorised
:mod:`repro.engine` kernels for subspaces a *partial* cube never
stored.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitmask import full_space, popcount
from repro.core.hashcube import HashCube
from repro.core.maintain import SkycubeMaintainer
from repro.engine import fast_skycube, fast_skyline
from repro.query.dynamic import dynamic_topk

__all__ = ["ServingSnapshot", "SnapshotHolder", "LiveUpdater"]


class ServingSnapshot:
    """One immutable, consistent view of the served skycube.

    ``ids[row]`` maps dataset rows to stable point ids (after deletes
    the id space need not be dense).  ``max_level`` marks a partially
    materialised cube; queries above it take the ad-hoc kernel path.
    """

    __slots__ = ("version", "cube", "data", "ids", "max_level", "_known_ids")

    def __init__(
        self,
        cube: HashCube,
        data: np.ndarray,
        ids: Optional[Sequence[int]] = None,
        version: int = 0,
        max_level: Optional[int] = None,
        copy: bool = True,
    ) -> None:
        # ``copy=False`` trusts the caller to hand over a buffer nobody
        # mutates — the shard workers' zero-copy shared-memory views.
        if copy:
            data = np.array(data, dtype=np.float64)  # private copy
        else:
            data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[1] != cube.d:
            raise ValueError(
                f"cube is {cube.d}-dimensional but data has "
                f"{data.shape[1]} columns"
            )
        data.setflags(write=False)
        if ids is None:
            id_array = np.arange(len(data), dtype=np.int64)
        else:
            id_array = np.array(ids, dtype=np.int64)
            if id_array.shape != (len(data),):
                raise ValueError(
                    f"expected {len(data)} ids, got shape {id_array.shape}"
                )
        id_array.setflags(write=False)
        self.version = version
        self.cube = cube
        self.data = data
        self.ids = id_array
        self.max_level = max_level
        self._known_ids = frozenset(int(i) for i in id_array)

    # -- constructors --------------------------------------------------

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        version: int = 0,
        max_level: Optional[int] = None,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
        engine: str = "packed",
        copy: bool = True,
    ) -> "ServingSnapshot":
        """Materialise ``data`` with the vectorised engine and wrap it.

        ``engine`` selects the :func:`repro.engine.fast_skycube` sweep
        — any of :data:`repro.engine.SKYCUBE_ENGINES` (``"packed"``,
        the default; ``"packed-filtered"``, fastest on clustered or
        correlated data; ``"loop"``).  All produce bit-identical
        snapshots; the packed sweeps bootstrap serving several times
        faster than the loop.
        """
        skycube = fast_skycube(
            data, max_level=max_level, word_width=word_width, engine=engine
        )
        cube = skycube.store
        assert isinstance(cube, HashCube)
        return cls(cube, data, version=version, max_level=max_level, copy=copy)

    @classmethod
    def from_maintainer(
        cls,
        maintainer: SkycubeMaintainer,
        version: int,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
    ) -> "ServingSnapshot":
        """Freeze a maintainer's exact current state into a snapshot."""
        points = maintainer.points()
        ids = sorted(points)
        cube = HashCube(maintainer.d, word_width)
        for pid in ids:
            cube.insert(pid, maintainer.membership_mask(pid))
        if ids:
            data = np.stack([points[pid] for pid in ids])
        else:
            data = np.empty((0, maintainer.d), dtype=np.float64)
        return cls(cube, data, ids=ids, version=version)

    # -- queries -------------------------------------------------------

    @property
    def d(self) -> int:
        return self.cube.d

    def __len__(self) -> int:
        return len(self.data)

    def materialised(self, delta: int) -> bool:
        """Whether the cube stores subspace ``delta`` (partial cubes)."""
        return self.max_level is None or popcount(delta) <= self.max_level

    def _check_delta(self, delta: int) -> None:
        if not 0 < delta <= full_space(self.d):
            raise KeyError(f"invalid subspace {delta} for d={self.d}")

    def knows(self, point_id: int) -> bool:
        """Whether this snapshot's dataset contains the point id."""
        return point_id in self._known_ids

    def skyline(self, delta: int) -> Tuple[int, ...]:
        """``S_δ`` ids: one cube probe, or the ad-hoc kernel fallback."""
        self._check_delta(delta)
        if self.materialised(delta):
            return self.cube.skyline(delta)
        if len(self.data) == 0:
            return ()
        rows = fast_skyline(self.data, delta)
        return tuple(int(i) for i in self.ids[rows])

    def membership(self, point_id: int, delta: int) -> bool:
        """``p ∈ S_δ`` via the O(1) single-word HashCube probe.

        Raises :exc:`KeyError` for ids the snapshot has never seen —
        the service maps that to a typed ``NotFound`` response, which
        is distinct from "known point, not in this skyline".
        """
        self._check_delta(delta)
        if not self.knows(point_id):
            raise KeyError(f"unknown point id {point_id}")
        if self.materialised(delta):
            return self.cube.contains(point_id, delta)
        return point_id in self.skyline(delta)

    def topk_dynamic(
        self, query: Sequence[float], k: int = 10, delta: Optional[int] = None
    ) -> List[int]:
        """Top-k dynamic skyline relative to ``query`` (always ad-hoc)."""
        if delta is not None:
            self._check_delta(delta)
        if len(self.data) == 0:
            return []
        rows = dynamic_topk(self.data, query, k=k, delta=delta)
        return [int(self.ids[row]) for row in rows]


class SnapshotHolder:
    """The single mutable cell of the serving layer.

    ``current`` is read without any locking — publishing is one
    attribute assignment, so a reader sees either the old or the new
    snapshot object, both internally consistent.  ``on_publish``
    callbacks let the server push the new version into metrics and let
    tests retain every published snapshot for consistency checks.
    """

    def __init__(self, initial: ServingSnapshot) -> None:
        self._snapshot = initial
        self._publish_lock = threading.Lock()
        self._subscribers: List[Callable[[ServingSnapshot], None]] = []

    @property
    def current(self) -> ServingSnapshot:
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    def subscribe(self, callback: Callable[[ServingSnapshot], None]) -> None:
        self._subscribers.append(callback)

    def publish(self, snapshot: ServingSnapshot) -> None:
        """Swap in a newer snapshot; versions must strictly increase."""
        with self._publish_lock:
            if snapshot.version <= self._snapshot.version:
                raise ValueError(
                    f"stale snapshot version {snapshot.version} "
                    f"(current is {self._snapshot.version})"
                )
            self._snapshot = snapshot
        for callback in list(self._subscribers):
            callback(snapshot)


class LiveUpdater:
    """Applies live inserts/deletes and publishes fresh snapshots.

    Owns the :class:`SkycubeMaintainer`; every mutation runs under one
    lock (updates are serialised — the maintainer is not thread-safe)
    and ends by publishing a new :class:`ServingSnapshot`, so queries
    racing an update see exactly the before- or after-state.  The
    service calls :meth:`insert`/:meth:`delete` from a worker thread
    (``asyncio.to_thread``) to keep the event loop free.
    """

    def __init__(
        self,
        maintainer: SkycubeMaintainer,
        holder: SnapshotHolder,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
    ) -> None:
        self.maintainer = maintainer
        self.holder = holder
        self.word_width = word_width
        self._lock = threading.Lock()

    @classmethod
    def bootstrap(
        cls,
        data: np.ndarray,
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
    ) -> Tuple["LiveUpdater", SnapshotHolder]:
        """Build the maintainer + initial snapshot + holder in one go."""
        maintainer = SkycubeMaintainer(data)
        holder = SnapshotHolder(
            ServingSnapshot.from_maintainer(maintainer, 0, word_width)
        )
        return cls(maintainer, holder, word_width), holder

    def _publish(self) -> ServingSnapshot:
        snapshot = ServingSnapshot.from_maintainer(
            self.maintainer, self.holder.version + 1, self.word_width
        )
        self.holder.publish(snapshot)
        return snapshot

    def insert(self, point: Sequence[float]) -> int:
        """Insert a point and publish; returns the assigned id."""
        with self._lock:
            point_id = self.maintainer.insert(point)
            self._publish()
            return point_id

    def delete(self, point_id: int) -> int:
        """Delete a point and publish; returns the new version."""
        with self._lock:
            self.maintainer.delete(point_id)
            return self._publish().version
