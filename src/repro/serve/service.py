"""The skycube query service: routing, admission control, batch execution.

One :class:`SkycubeService` fronts one :class:`SnapshotHolder`.  A
request travels: admission check (bounded in-flight queue — beyond
``max_pending`` the request is *shed* with a typed ``Overloaded``
response instead of queueing unboundedly) → micro-batcher → batch
execution against a single snapshot capture → typed response.

Batch execution is where the coalescing pays: requests are grouped by
``(op, arguments)`` and each distinct group is computed once — the
HashCube probe, membership word test, or ad-hoc kernel pass — then
fanned back out to every waiter.  Because the whole batch reads one
snapshot, every response is tagged with that snapshot's version and is
never a torn mix of pre- and post-update state.

Deadlines propagate: a request carries an absolute event-loop deadline
(set from the client's ``timeout_ms``), and a batch that gets to it too
late answers ``DeadlineExceeded`` rather than burning compute on an
answer nobody is waiting for.

When a :class:`~repro.trace.Tracer` is attached, every request leaves
one event per lifecycle stage — ``admit`` (admission decision),
``batch`` (queue wait + batch size), ``compute`` (snapshot version +
execution time) and ``respond`` (final outcome) — and every failure
carries exactly one class from the typed taxonomy
(:data:`repro.trace.FAILURE_CLASSES`).  The default
:data:`~repro.trace.NULL_TRACER` keeps the whole layer free.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.bitmask import parse_subspace
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.snapshot import LiveUpdater, ServingSnapshot, SnapshotHolder
from repro.trace import (
    BAD_REQUEST as TAXONOMY_BAD_REQUEST,
    DEADLINE_EXCEEDED as TAXONOMY_DEADLINE,
    INTERNAL_ERROR,
    NULL_TRACER,
    SHED,
    SNAPSHOT_SWAP_RACE,
    TraceEvent,
    Tracer,
    classify_wire_error,
)

__all__ = [
    "Request",
    "Response",
    "SkycubeService",
    "QUERY_OPS",
    "request_from_json",
]

#: Ops that go through the micro-batcher.
QUERY_OPS = ("skyline", "membership", "topk_dynamic", "skyline_diff")
#: Ops handled directly by the service.
CONTROL_OPS = ("metrics", "ping", "insert", "delete")

#: Typed error names on the wire.
OVERLOADED = "Overloaded"
BAD_REQUEST = "BadRequest"
NOT_FOUND = "NotFound"
DEADLINE_EXCEEDED = "DeadlineExceeded"
INTERNAL = "Internal"
#: A structurally valid request for a capability this deployment does
#: not offer (live updates on the sharded tier, ``skyline_diff`` with
#: no changelog).  Distinct from ``BadRequest`` so clients can tell
#: "fix your request" from "ask a different deployment".
UNSUPPORTED = "Unsupported"


@dataclass(frozen=True)
class Request:
    """One decoded request (already validated where statically possible)."""

    op: str
    delta: Optional[int] = None
    point_id: Optional[int] = None
    q: Optional[Tuple[float, ...]] = None
    k: int = 10
    point: Optional[Tuple[float, ...]] = None
    #: Version window for ``skyline_diff`` (changes over ``(v_from, v_to]``).
    v_from: Optional[int] = None
    v_to: Optional[int] = None
    #: Absolute event-loop deadline (``loop.time()`` scale), or None.
    deadline: Optional[float] = None
    #: Trace context, stamped by the service at admission when tracing
    #: is on; never part of the coalescing key or the wire format.
    trace_id: Optional[int] = None
    admit_version: Optional[int] = None
    admitted_at: Optional[float] = None

    def key(self) -> Tuple[Any, ...]:
        """Coalescing key: requests with equal keys share one answer."""
        return (
            self.op, self.delta, self.point_id, self.q, self.k,
            self.v_from, self.v_to,
        )


@dataclass(frozen=True)
class Response:
    """One typed response; ``error`` is None on success."""

    op: str
    ok: bool
    result: Any = None
    error: Optional[str] = None
    message: str = ""
    snapshot_version: Optional[int] = None
    #: Taxonomy class for the trace (never serialised on the wire).
    #: Set where the failure is diagnosed — the one place with enough
    #: context to, say, tell a snapshot-swap race from a bad request.
    failure_class: Optional[str] = None
    #: Degraded-mode marker (sharded tier): a successful answer that
    #: lost shards mid-query carries ``{"degraded": True,
    #: "failed_shards": [...], "failure_class": "WorkerDeath"}`` so
    #: clients can tell a partial result from a complete one.
    partial: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"ok": self.ok, "op": self.op}
        if self.ok:
            payload["result"] = self.result
            if self.snapshot_version is not None:
                payload["snapshot_version"] = self.snapshot_version
            if self.partial is not None:
                payload["partial"] = self.partial
        else:
            payload["error"] = {"type": self.error, "message": self.message}
        return payload


def _error(
    op: str,
    error: str,
    message: str,
    failure_class: Optional[str] = None,
) -> Response:
    return Response(
        op=op, ok=False, error=error, message=message,
        failure_class=failure_class,
    )


def request_from_json(
    obj: Dict[str, Any], d: int, now: float
) -> Request:
    """Decode one wire-format request dict; raises ValueError when bad."""
    if not isinstance(obj, dict):
        raise ValueError("request must be a JSON object")
    op = obj.get("op")
    if isinstance(op, str):
        op = op.replace("-", "_")  # accept "topk-dynamic" for topk_dynamic
    if op not in QUERY_OPS and op not in CONTROL_OPS:
        raise ValueError(f"unknown op {op!r}")
    delta: Optional[int] = None
    if "delta" in obj and obj["delta"] is not None:
        raw = obj["delta"]
        if isinstance(raw, bool):
            raise ValueError("delta must be an integer or string")
        if isinstance(raw, int):
            delta = parse_subspace(str(raw), d)
        elif isinstance(raw, str):
            delta = parse_subspace(raw, d)
        else:
            raise ValueError("delta must be an integer or string")
    point_id: Optional[int] = None
    if "point_id" in obj and obj["point_id"] is not None:
        if not isinstance(obj["point_id"], int) or isinstance(
            obj["point_id"], bool
        ):
            raise ValueError("point_id must be an integer")
        point_id = obj["point_id"]
    q: Optional[Tuple[float, ...]] = None
    if "q" in obj and obj["q"] is not None:
        try:
            q = tuple(float(value) for value in obj["q"])
        except (TypeError, ValueError):
            raise ValueError("q must be a list of numbers") from None
        if len(q) != d:
            raise ValueError(f"q must have {d} coordinates, got {len(q)}")
    point: Optional[Tuple[float, ...]] = None
    if "point" in obj and obj["point"] is not None:
        try:
            point = tuple(float(value) for value in obj["point"])
        except (TypeError, ValueError):
            raise ValueError("point must be a list of numbers") from None
        if len(point) != d:
            raise ValueError(
                f"point must have {d} coordinates, got {len(point)}"
            )
    k = 10
    if "k" in obj and obj["k"] is not None:
        if not isinstance(obj["k"], int) or isinstance(obj["k"], bool):
            raise ValueError("k must be an integer")
        if obj["k"] < 1:
            raise ValueError(f"k must be positive, got {obj['k']}")
        k = obj["k"]
    v_from: Optional[int] = None
    v_to: Optional[int] = None
    for field_name, wire_name in (("v_from", "from"), ("v_to", "to")):
        if wire_name in obj and obj[wire_name] is not None:
            raw = obj[wire_name]
            if not isinstance(raw, int) or isinstance(raw, bool):
                raise ValueError(f"'{wire_name}' must be an integer")
            if raw < 0:
                raise ValueError(
                    f"'{wire_name}' must be a non-negative version, got {raw}"
                )
            if field_name == "v_from":
                v_from = raw
            else:
                v_to = raw
    deadline: Optional[float] = None
    if "timeout_ms" in obj and obj["timeout_ms"] is not None:
        timeout_ms = obj["timeout_ms"]
        if not isinstance(timeout_ms, (int, float)) or isinstance(
            timeout_ms, bool
        ) or timeout_ms <= 0:
            raise ValueError("timeout_ms must be a positive number")
        deadline = now + timeout_ms / 1000.0
    # Per-op required arguments.
    if op == "skyline" and delta is None:
        raise ValueError("skyline requires 'delta'")
    if op == "membership" and (delta is None or point_id is None):
        raise ValueError("membership requires 'point_id' and 'delta'")
    if op == "topk_dynamic" and q is None:
        raise ValueError("topk_dynamic requires 'q'")
    if op == "skyline_diff" and (
        delta is None or v_from is None or v_to is None
    ):
        raise ValueError("skyline_diff requires 'delta', 'from' and 'to'")
    if op == "insert" and point is None:
        raise ValueError("insert requires 'point'")
    if op == "delete" and point_id is None:
        raise ValueError("delete requires 'point_id'")
    return Request(
        op=op, delta=delta, point_id=point_id, q=q, k=k, point=point,
        v_from=v_from, v_to=v_to, deadline=deadline,
    )


class SkycubeService:
    """Routes requests to the batcher, the updater, or metrics."""

    def __init__(
        self,
        holder: SnapshotHolder,
        window: float = 0.002,
        max_batch: int = 64,
        max_pending: int = 1024,
        metrics: Optional[ServeMetrics] = None,
        updater: Optional[LiveUpdater] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.holder = holder
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.updater = updater
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_pending = max_pending
        self._pending = 0
        self._batcher: MicroBatcher[Request, Response] = MicroBatcher(
            self._execute_batch, window=window, max_batch=max_batch,
            on_executor_error=self._on_batch_error,
        )
        self._update_gate = asyncio.Lock()
        self.metrics.observe_snapshot(holder.version)
        holder.subscribe(
            lambda snapshot: self.metrics.observe_snapshot(snapshot.version)
        )

    def _on_batch_error(self, batch_size: int, error: Exception) -> None:
        """A whole flush failed in the executor: an internal bug."""
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                stage="batch", outcome="failure", failure=INTERNAL_ERROR,
                batch_size=batch_size,
                detail=f"{type(error).__name__}: {error}",
            ))

    # -- lifecycle -----------------------------------------------------

    @property
    def d(self) -> int:
        return self.holder.current.d

    @property
    def pending(self) -> int:
        """In-flight batched requests (the bounded queue's occupancy)."""
        return self._pending

    async def start(self) -> None:
        await self._batcher.start()

    async def stop(self) -> None:
        """Drain: flush queued requests, then stop accepting."""
        await self._batcher.stop()

    # -- submission ----------------------------------------------------

    async def submit(self, request: Request) -> Response:
        """Admission control + dispatch; always returns a Response."""
        op = request.op
        self.metrics.record_request(op)
        loop = asyncio.get_running_loop()
        started = loop.time()
        tracer = self.tracer
        if tracer.enabled:
            # Stamp the trace context once: the request id ties the
            # four lifecycle events together, and the admit-time
            # snapshot version is what lets the compute stage tell a
            # snapshot-swap race from a plain bad request.
            request = replace(
                request,
                trace_id=tracer.next_request_id(),
                admit_version=self.holder.version,
                admitted_at=started,
            )
        try:
            if op in QUERY_OPS:
                response = await self._submit_query(request)
            elif op == "metrics":
                response = Response(
                    op=op, ok=True, result=self.metrics.as_dict(),
                    snapshot_version=self.holder.version,
                )
            elif op == "ping":
                response = Response(
                    op=op, ok=True,
                    result={"d": self.d, "n": len(self.holder.current)},
                    snapshot_version=self.holder.version,
                )
            elif op == "insert":
                response = await self._submit_insert(request)
            elif op == "delete":
                response = await self._submit_delete(request)
            else:
                response = _error(
                    op, BAD_REQUEST, f"unknown op {op!r}",
                    failure_class=TAXONOMY_BAD_REQUEST,
                )
        except Exception as error:  # never leak a raw traceback
            response = _error(
                op, INTERNAL, f"{type(error).__name__}: {error}",
                failure_class=INTERNAL_ERROR,
            )
        if not response.ok and response.error is not None:
            self.metrics.record_error(op, response.error)
        self.metrics.record_latency(op, loop.time() - started)
        if tracer.enabled:
            failure = response.failure_class
            if failure is None and not response.ok:
                failure = classify_wire_error(
                    response.error, request.admit_version,
                    response.snapshot_version,
                )
            tracer.emit(TraceEvent(
                stage="respond",
                outcome="ok" if response.ok else "failure",
                failure=failure,
                request_id=request.trace_id,
                op=op,
                delta=request.delta,
                snapshot_version=response.snapshot_version,
                duration_ms=1000.0 * (loop.time() - started),
            ))
        return response

    async def _submit_query(self, request: Request) -> Response:
        if self._pending >= self.max_pending:
            # Load shedding: reject *now*, with a typed response the
            # client can back off on, instead of queueing unboundedly.
            self.metrics.record_shed()
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    stage="admit", outcome="failure", failure=SHED,
                    request_id=request.trace_id, op=request.op,
                    delta=request.delta,
                    extra={"queue_depth": self._pending},
                ))
            return _error(
                request.op, OVERLOADED,
                f"queue full ({self.max_pending} pending)",
                failure_class=SHED,
            )
        self._pending += 1
        self.metrics.observe_queue_depth(self._pending)
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                stage="admit", request_id=request.trace_id, op=request.op,
                delta=request.delta,
                extra={"queue_depth": self._pending},
            ))
        try:
            return await self._batcher.submit(request)
        finally:
            self._pending -= 1
            self.metrics.observe_queue_depth(self._pending)

    async def _submit_insert(self, request: Request) -> Response:
        if self.updater is None:
            return _error(
                request.op, BAD_REQUEST,
                "live updates are disabled on this server",
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        assert request.point is not None  # request_from_json enforces it
        async with self._update_gate:
            point_id, version = await asyncio.to_thread(
                self.updater.insert, request.point
            )
        return Response(
            op=request.op, ok=True, result={"point_id": point_id},
            snapshot_version=version,
        )

    async def _submit_delete(self, request: Request) -> Response:
        if self.updater is None:
            return _error(
                request.op, BAD_REQUEST,
                "live updates are disabled on this server",
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        assert request.point_id is not None  # request_from_json enforces it
        try:
            async with self._update_gate:
                _, version = await asyncio.to_thread(
                    self.updater.delete, request.point_id
                )
        except KeyError:
            return _error(
                request.op, NOT_FOUND,
                f"unknown point id {request.point_id}",
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        return Response(
            op=request.op, ok=True, result={"deleted": request.point_id},
            snapshot_version=version,
        )

    # -- batch execution ----------------------------------------------

    def _execute_batch(self, requests: List[Request]) -> List[Response]:
        """Answer a whole batch from one snapshot capture.

        Grouping by :meth:`Request.key` means each distinct question is
        computed once per batch regardless of how many clients asked it
        — the vectorised pass (ad-hoc subspaces) and the cube probes
        are both shared.
        """
        snapshot = self.holder.current
        loop = asyncio.get_running_loop()
        now = loop.time()
        tracer = self.tracer
        batch_size = len(requests)
        cache: Dict[Tuple[Any, ...], Response] = {}
        responses: List[Response] = []
        for request in requests:
            if tracer.enabled:
                waited = (
                    None if request.admitted_at is None
                    else 1000.0 * (now - request.admitted_at)
                )
                tracer.emit(TraceEvent(
                    stage="batch", request_id=request.trace_id,
                    op=request.op, delta=request.delta,
                    batch_size=batch_size, duration_ms=waited,
                ))
            if request.deadline is not None and now > request.deadline:
                response = _error(
                    request.op, DEADLINE_EXCEEDED,
                    "deadline expired before execution",
                    failure_class=TAXONOMY_DEADLINE,
                )
                if tracer.enabled:
                    tracer.emit(TraceEvent(
                        stage="compute", outcome="failure",
                        failure=TAXONOMY_DEADLINE,
                        request_id=request.trace_id, op=request.op,
                        delta=request.delta,
                        snapshot_version=snapshot.version,
                    ))
                responses.append(response)
                continue
            key = request.key()
            response = cache.get(key)
            coalesced = response is not None
            if response is None:
                before = loop.time()
                response = self._answer(snapshot, request)
                elapsed_ms = 1000.0 * (loop.time() - before)
                cache[key] = response
            else:
                elapsed_ms = 0.0
            if tracer.enabled:
                tracer.emit(TraceEvent(
                    stage="compute",
                    outcome="ok" if response.ok else "failure",
                    failure=response.failure_class,
                    request_id=request.trace_id, op=request.op,
                    delta=request.delta,
                    snapshot_version=snapshot.version,
                    duration_ms=elapsed_ms,
                    detail="coalesced" if coalesced else None,
                ))
            responses.append(response)
        self.metrics.record_batch(len(requests))
        return responses

    def _answer(
        self, snapshot: ServingSnapshot, request: Request
    ) -> Response:
        try:
            if request.op == "skyline":
                assert request.delta is not None
                result: Any = list(snapshot.skyline(request.delta))
            elif request.op == "membership":
                assert request.point_id is not None
                assert request.delta is not None
                if not snapshot.knows(request.point_id):
                    # The one context-dependent classification: if the
                    # snapshot moved between admission and this batch, a
                    # racing delete may have removed the point — that is
                    # the serving layer's race, not the client's mistake.
                    raced = (
                        request.admit_version is not None
                        and snapshot.version != request.admit_version
                    )
                    return _error(
                        request.op, NOT_FOUND,
                        f"unknown point id {request.point_id}",
                        failure_class=(
                            SNAPSHOT_SWAP_RACE if raced
                            else TAXONOMY_BAD_REQUEST
                        ),
                    )
                result = snapshot.membership(request.point_id, request.delta)
            elif request.op == "topk_dynamic":
                assert request.q is not None
                result = snapshot.topk_dynamic(
                    request.q, k=request.k, delta=request.delta
                )
            elif request.op == "skyline_diff":
                assert request.delta is not None
                assert request.v_from is not None
                assert request.v_to is not None
                if self.updater is None:
                    return _error(
                        request.op, BAD_REQUEST,
                        "skyline_diff needs live updates enabled "
                        "(no changelog on this server)",
                        failure_class=TAXONOMY_BAD_REQUEST,
                    )
                entered, left = self.updater.skyline_diff(
                    request.delta, request.v_from, request.v_to
                )
                result = {
                    "entered": entered, "left": left,
                    "from": request.v_from, "to": request.v_to,
                }
            else:
                return _error(
                    request.op, BAD_REQUEST,
                    f"op {request.op!r} is not a batched query",
                    failure_class=TAXONOMY_BAD_REQUEST,
                )
        except KeyError as error:
            return _error(
                request.op, BAD_REQUEST, str(error),
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        except ValueError as error:
            return _error(
                request.op, BAD_REQUEST, str(error),
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        return Response(
            op=request.op, ok=True, result=result,
            snapshot_version=snapshot.version,
        )
