"""Micro-batching: coalesce concurrent requests into one shared pass.

Serving cost is dominated by per-query work that *repeats* across
concurrent clients: popular subspaces are probed again and again, and
each probe scans the HashCube table (or, ad-hoc, runs a kernel pass).
The batcher exploits the skyline-specific fact that a query's answer
depends only on ``(op, arguments, snapshot)`` — so any number of
identical requests arriving within a window can be answered by one
computation, and distinct requests still share the snapshot capture
and the scheduling overhead.

Mechanics: ``submit`` parks the request on an internal queue and
returns a future.  A single flusher task wakes on the first arrival,
waits at most ``window`` seconds (collecting whatever else arrives,
up to ``max_batch``), then hands the whole batch to the executor
callback, which resolves every future.  ``window=0`` degenerates to
pass-through batches — the unbatched baseline the throughput benchmark
compares against.
"""

from __future__ import annotations

import asyncio
from typing import (
    Awaitable,
    Callable,
    Generic,
    List,
    Optional,
    Tuple,
    TypeVar,
    cast,
)

__all__ = ["MicroBatcher"]

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")

#: The executor callback: a full batch in, one response per request out
#: (same order).  May be sync or async.
BatchExecutor = Callable[
    [List[RequestT]], "Awaitable[List[ResponseT]] | List[ResponseT]"
]


class MicroBatcher(Generic[RequestT, ResponseT]):
    """Window/size-bounded request coalescing in front of an executor."""

    def __init__(
        self,
        execute: BatchExecutor,
        window: float = 0.002,
        max_batch: int = 64,
        on_executor_error: Optional[Callable[[int, Exception], None]] = None,
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._execute = execute
        #: Observer for a whole-flush executor failure ``(batch_size,
        #: error)`` — the service maps it onto the ``InternalError``
        #: taxonomy class; waiters still get the exception either way.
        self.on_executor_error = on_executor_error
        self.window = window
        self.max_batch = max_batch
        self._queue: List[Tuple[RequestT, asyncio.Future]] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._full: Optional[asyncio.Event] = None
        self._flusher: Optional[asyncio.Task] = None
        self._closed = False
        #: Batch sizes actually executed (metrics hook reads and clears).
        self.flushed_sizes: List[int] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self._flusher is not None:
            return  # idempotent: server.start() follows service.start()
        self._wakeup = asyncio.Event()
        self._full = asyncio.Event()
        self._flusher = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Flush everything still queued, then stop the flusher task."""
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._full is not None:
            self._full.set()  # break out of an in-progress window wait
        if self._flusher is not None:
            await self._flusher
            self._flusher = None

    @property
    def depth(self) -> int:
        """Requests currently waiting for a flush."""
        return len(self._queue)

    # -- submission ----------------------------------------------------

    async def submit(self, request: RequestT) -> ResponseT:
        """Queue ``request``; resolves when its batch has executed."""
        if self._closed or self._wakeup is None:
            raise RuntimeError("batcher is not running")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append((request, future))
        self._wakeup.set()
        if self._full is not None and len(self._queue) >= self.max_batch:
            self._full.set()
        return await future

    # -- flushing ------------------------------------------------------

    async def _run(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                if self._closed:
                    return
                continue
            # First request seen: hold the door open for the window
            # (unless the batch fills first), then flush repeatedly
            # until the queue drains.
            if self.window > 0 and len(self._queue) < self.max_batch:
                assert self._full is not None
                self._full.clear()
                try:
                    await asyncio.wait_for(
                        self._full.wait(), timeout=self.window
                    )
                except asyncio.TimeoutError:
                    pass
            while self._queue:
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                await self._flush(batch)
            if self._closed:
                return

    async def _flush(
        self, batch: List[Tuple[RequestT, asyncio.Future]]
    ) -> None:
        requests = [request for request, _ in batch]
        self.flushed_sizes.append(len(requests))
        try:
            outcome = self._execute(requests)
            if asyncio.iscoroutine(outcome):
                responses: List[ResponseT] = await outcome
            else:
                responses = cast("List[ResponseT]", outcome)
            if len(responses) != len(requests):
                raise RuntimeError(
                    f"batch executor returned {len(responses)} responses "
                    f"for {len(requests)} requests"
                )
        except Exception as error:  # resolve every waiter, never hang
            if self.on_executor_error is not None:
                try:
                    self.on_executor_error(len(requests), error)
                except Exception:
                    pass  # an observer must never mask the real failure
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)
