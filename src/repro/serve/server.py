"""Asyncio TCP front-end speaking newline-delimited JSON.

Wire protocol (one JSON object per line, UTF-8):

* request: ``{"id": 7, "op": "skyline", "delta": "0b101",
  "timeout_ms": 50}`` — ``id`` is client-chosen and echoed back;
  responses on a connection may be reordered (each request line is
  dispatched as its own task so micro-batching works *across* the
  requests of one pipelined connection as well as across connections).
* response: ``{"id": 7, "ok": true, "result": [...],
  "snapshot_version": 3}`` or ``{"id": 7, "ok": false, "error":
  {"type": "Overloaded", "message": "..."}}``.

Shutdown is a graceful drain: on SIGTERM/SIGINT the listener stops
accepting, in-flight requests finish (bounded by ``drain_timeout``),
open connections close, and ``run_server`` returns — no response is
ever cut off mid-line.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Protocol, Set, Tuple

from repro.serve.service import BAD_REQUEST, Request, Response, request_from_json
from repro.trace import BAD_REQUEST as TAXONOMY_BAD_REQUEST
from repro.trace import TraceEvent
from repro.trace.tracer import Tracer

__all__ = ["ServiceLike", "SkycubeServer", "run_server"]


class ServiceLike(Protocol):
    """What the TCP front-end needs from a service.

    Both :class:`~repro.serve.service.SkycubeService` (single process)
    and :class:`~repro.shard.service.ShardService` (scatter–gather)
    satisfy this; the server never cares which one answers.
    """

    @property
    def d(self) -> int: ...

    @property
    def tracer(self) -> Tracer: ...

    async def start(self) -> None: ...

    async def stop(self) -> None: ...

    async def submit(self, request: Request) -> Response: ...


class SkycubeServer:
    """One listening socket bound to one :class:`ServiceLike` service."""

    def __init__(
        self,
        service: ServiceLike,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 10.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._shutdown = asyncio.Event()
        self._draining = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the service's batcher."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Signal-safe trigger for the graceful drain."""
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except NotImplementedError:  # non-unix event loops
                break

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then drain and return."""
        await self._shutdown.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight requests, close the socket."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        pending = [task for task in self._tasks if not task.done()]
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.drain_timeout
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        # Close idle connections *after* their in-flight responses went
        # out; this also unblocks handler readlines so that
        # ``wait_closed`` (which since 3.12 waits for handlers too)
        # cannot hang on a client that never disconnects.
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        await self.service.stop()

    # -- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        inflight: Set[asyncio.Task] = set()
        self._connections.add(writer)
        try:
            while not self._draining:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                inflight.add(task)
                self._tasks.add(task)
                task.add_done_callback(inflight.discard)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        try:
            obj = json.loads(line.decode("utf-8"))
            if isinstance(obj, dict):
                request_id = obj.get("id")
            request = request_from_json(
                obj, self.service.d, asyncio.get_running_loop().time()
            )
        except (ValueError, UnicodeDecodeError) as error:
            # Rejected before it ever became a Request: trace it here,
            # at the admit stage, or the failure would be invisible.
            tracer = self.service.tracer
            if tracer.enabled:
                tracer.emit(TraceEvent(
                    stage="admit", outcome="failure",
                    failure=TAXONOMY_BAD_REQUEST,
                    request_id=tracer.next_request_id(),
                    detail=str(error),
                ))
            payload: Dict[str, Any] = {
                "id": request_id,
                "ok": False,
                "error": {"type": BAD_REQUEST, "message": str(error)},
            }
            await self._write(writer, write_lock, payload)
            return
        response = await self.service.submit(request)
        payload = dict(response.to_json())
        payload["id"] = request_id
        await self._write(writer, write_lock, payload)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        encoded = (json.dumps(payload) + "\n").encode("utf-8")
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(encoded)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_server(
    service: ServiceLike,
    host: str = "127.0.0.1",
    port: int = 0,
    install_signals: bool = True,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Start a server, announce readiness, and serve until SIGTERM."""
    server = SkycubeServer(service, host=host, port=port)
    await server.start()
    if install_signals:
        server.install_signal_handlers()
    if ready is not None:
        ready.set()
    bound_host, bound_port = server.address
    print(f"repro.serve: listening on {bound_host}:{bound_port}", flush=True)
    await server.serve_until_shutdown()
    print("repro.serve: drained, bye", flush=True)
