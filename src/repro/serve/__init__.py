"""repro.serve — the asyncio skycube query service.

The online layer the ROADMAP's north star needs: materialise once
(the paper's HashCube trade-off), then amortise the build over many
queries arriving over the wire.  Pieces, each its own module:

* :mod:`repro.serve.snapshot` — immutable :class:`ServingSnapshot` +
  atomic swap (:class:`SnapshotHolder`) + live updates
  (:class:`LiveUpdater` over a :class:`~repro.core.maintain.SkycubeMaintainer`,
  publishing copy-on-write delta snapshots and a per-version
  :class:`ChangeLog` for temporal ``skyline_diff`` queries);
* :mod:`repro.serve.batcher` — micro-batching (:class:`MicroBatcher`);
* :mod:`repro.serve.service` — routing, admission control, deadlines,
  load shedding (:class:`SkycubeService`);
* :mod:`repro.serve.server` — the NDJSON TCP front-end
  (:class:`SkycubeServer`, :func:`run_server`);
* :mod:`repro.serve.metrics` — per-endpoint counters and latency
  histograms (:class:`ServeMetrics`);
* :mod:`repro.serve.client` — a small blocking client
  (:class:`ServeClient`).

``python -m repro serve`` starts a server; ``docs/SERVING.md`` has the
protocol and the consistency/overload semantics.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.server import SkycubeServer, run_server
from repro.serve.service import Request, Response, SkycubeService
from repro.serve.snapshot import (
    ChangeLog,
    LiveUpdater,
    ServingSnapshot,
    SnapshotHolder,
)

__all__ = [
    "ChangeLog",
    "LatencyHistogram",
    "LiveUpdater",
    "MicroBatcher",
    "Request",
    "Response",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServingSnapshot",
    "SkycubeServer",
    "SkycubeService",
    "SnapshotHolder",
    "run_server",
]
