"""Serving metrics: per-endpoint counters and latency histograms.

The serving layer needs observability that the offline library never
did: how many requests of each kind arrived, how many were shed, how
well the micro-batcher coalesces, and what the tail latency looks
like.  Everything here is plain integers and fixed bucket arrays —
recording an event is a few dict operations, cheap enough to stay
always-on (the same philosophy as :mod:`repro.instrument.counters`).

Integration with the library's instrumentation backbone: a
:class:`ServeMetrics` owns a :class:`~repro.instrument.counters.Counters`
and mirrors every serving event into its ``extra`` map under
``serve.*`` keys, so any tooling that consumes ``Counters.as_dict()``
(reports, the hardware layer's cost summaries) sees serving activity
without knowing this module exists.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.instrument.counters import Counters

__all__ = ["LatencyHistogram", "ServeMetrics"]


def _geometric_bounds(
    lowest: float = 0.0001, highest: float = 30.0, factor: float = 2.0
) -> Tuple[float, ...]:
    bounds: List[float] = [lowest]
    while bounds[-1] < highest:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


class LatencyHistogram:
    """Fixed log-spaced latency buckets with percentile estimates.

    Buckets double from 0.1 ms to ~30 s; a percentile is reported as
    the upper bound of the bucket in which the cumulative count crosses
    it — coarse, but allocation-free and monotone, which is all a p99
    gate needs.
    """

    BOUNDS: Tuple[float, ...] = _geometric_bounds()

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(self.BOUNDS) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, seconds: float) -> None:
        index = 0
        for index, bound in enumerate(self.BOUNDS):
            if seconds <= bound:
                break
        else:
            index = len(self.BOUNDS)
        self.counts[index] += 1
        self.total += 1
        self.sum += seconds

    def percentile(self, fraction: float) -> float:
        """Upper bucket bound at the given fraction (0 < fraction <= 1)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.total == 0:
            return 0.0
        needed = fraction * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= needed:
                if index < len(self.BOUNDS):
                    return self.BOUNDS[index]
                return self.BOUNDS[-1] * 2
        return self.BOUNDS[-1] * 2

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.total),
            "mean_ms": 1000.0 * self.mean,
            "p50_ms": 1000.0 * self.percentile(0.50),
            "p99_ms": 1000.0 * self.percentile(0.99),
        }


class ServeMetrics:
    """All serving-side telemetry, exposed on the ``metrics`` endpoint."""

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self.counters = counters if counters is not None else Counters()
        self.started_at = time.time()
        self.requests: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.shed = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.queue_depth = 0
        self.peak_queue_depth = 0
        self.snapshot_version = 0
        self.snapshot_publishes = 0
        self.latency: Dict[str, LatencyHistogram] = {}

    # -- event recording ----------------------------------------------

    def _bump(self, key: str, amount: int = 1) -> None:
        self.counters.extra[key] = self.counters.extra.get(key, 0) + amount

    def record_request(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1
        self._bump("serve.requests")
        self._bump(f"serve.requests.{op}")

    def record_error(self, op: str, error_type: str) -> None:
        key = f"{op}:{error_type}"
        self.errors[key] = self.errors.get(key, 0) + 1
        self._bump("serve.errors")

    def record_shed(self) -> None:
        self.shed += 1
        self._bump("serve.shed")

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        if size > self.max_batch_size:
            self.max_batch_size = size
        self._bump("serve.batches")

    def record_latency(self, op: str, seconds: float) -> None:
        histogram = self.latency.get(op)
        if histogram is None:
            histogram = self.latency[op] = LatencyHistogram()
        histogram.record(seconds)

    def observe_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def observe_snapshot(self, version: int) -> None:
        self.snapshot_version = version
        self.snapshot_publishes += 1
        self._bump("serve.snapshot_publishes")

    # -- views ---------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, object]:
        """The ``metrics`` endpoint payload (JSON-serialisable)."""
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": dict(self.requests),
            "errors": dict(self.errors),
            "shed": self.shed,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "snapshot_version": self.snapshot_version,
            "snapshot_publishes": self.snapshot_publishes,
            "latency": {
                op: histogram.as_dict()
                for op, histogram in sorted(self.latency.items())
            },
        }
