"""Uninstrumented, vectorized fast kernels for large inputs."""

from repro.engine.kernels import (
    fast_extended_skyline,
    fast_skycube,
    fast_skyline,
)

__all__ = ["fast_skyline", "fast_extended_skyline", "fast_skycube"]
