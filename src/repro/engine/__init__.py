"""Uninstrumented, vectorized fast kernels and the real parallel backend."""

from repro.engine.jit import (
    BACKEND_CHOICES,
    BACKEND_HELP,
    KERNEL_BACKENDS,
    probe_backends,
    resolve_backend,
)
from repro.engine.kernels import (
    ENGINE_HELP,
    SKYCUBE_ENGINES,
    fast_extended_skyline,
    fast_skycube,
    fast_skyline,
    label_prefilter,
)
from repro.engine.parallel import ParallelExecutor, SharedDataset

__all__ = [
    "fast_skyline",
    "fast_extended_skyline",
    "fast_skycube",
    "label_prefilter",
    "SKYCUBE_ENGINES",
    "ENGINE_HELP",
    "KERNEL_BACKENDS",
    "BACKEND_CHOICES",
    "BACKEND_HELP",
    "probe_backends",
    "resolve_backend",
    "ParallelExecutor",
    "SharedDataset",
]
