"""Uninstrumented, vectorized fast kernels and the real parallel backend."""

from repro.engine.kernels import (
    fast_extended_skyline,
    fast_skycube,
    fast_skyline,
)
from repro.engine.parallel import ParallelExecutor, SharedDataset

__all__ = [
    "fast_skyline",
    "fast_extended_skyline",
    "fast_skycube",
    "ParallelExecutor",
    "SharedDataset",
]
