"""Real shared-memory multicore execution backend.

Everywhere else in this library "parallelism" means a *simulated*
makespan replayed from an execution trace; this module is the genuine
article: a process pool that runs template work concurrently on real
cores.  Three pieces compose it:

* :class:`SharedDataset` places the point matrix in POSIX shared memory
  (:mod:`multiprocessing.shared_memory`) exactly once; workers rehydrate
  zero-copy numpy views from a small picklable descriptor, so task
  payloads stay a few hundred bytes no matter how large ``n`` is —
  the process analogue of the paper's threads sharing one read-only
  point array.

* :class:`ParallelExecutor` turns a list of picklable tasks into one
  result list: tasks are binned onto workers with the same LPT policy
  the simulated devices use (:func:`repro.hardware.schedule.lpt_assign`),
  each bin is one pool submission, and failures — a worker dying
  mid-task, a bin exceeding its timeout, or a pool that cannot start at
  all (sandboxes, exotic platforms) — degrade through retries to an
  in-process serial fallback that always produces the correct result.

* Module-level task functions (:func:`cuboid_task`,
  :func:`point_block_task`) that the templates dispatch: STSC/SDSC send
  whole cuboids (one level per barrier, ``fast_skyline`` as the
  in-worker hook), MDMC sends blocks of extended-skyline points whose
  ``B_{p∉S}`` masks the parent batch-merges into the HashCube.

Results are bit-identical to the serial reference implementations:
the in-worker kernels are the :mod:`repro.engine.kernels` functions,
which the test suite holds equal to the instrumented algorithms.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing import shared_memory
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

import numpy as np

from repro.hardware.schedule import lpt_assign

if TYPE_CHECKING:
    from repro.core.lattice import Lattice
    from repro.instrument.counters import Counters
    from repro.skycube.base import PhaseTrace

__all__ = [
    "SharedDataset",
    "ParallelExecutor",
    "EXECUTORS",
    "cuboid_task",
    "point_block_task",
    "packed_point_block_task",
    "filtered_point_block_task",
    "parallel_lattice",
    "parallel_point_masks",
    "parallel_packed_masks",
    "parallel_filtered_packed_masks",
]

#: The executor backends a template constructor accepts.
EXECUTORS = ("serial", "process")

#: ``name -> (SharedMemory, ndarray)`` views attached by this process.
#: The creating process registers its own segment here so the serial
#: fallback path resolves descriptors without re-attaching.
_ATTACHED: Dict[str, Tuple[Optional[shared_memory.SharedMemory], np.ndarray]] = {}


def _unregister_from_tracker(name: str) -> None:
    """Detach a worker-side segment from the resource tracker.

    Attaching registers the segment with :mod:`multiprocessing`'s
    resource tracker, which would then complain about (and unlink!) a
    segment the *parent* owns when the worker exits.  Only the creating
    process may unlink; everyone else must unregister.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except Exception:
        pass  # tracker absent or already unregistered: nothing leaked


class SharedDataset:
    """A read-only numpy array placed once in shared memory.

    The parent constructs it (copying the matrix into the segment) and
    ships :attr:`descriptor` — a small picklable tuple — to workers,
    which call :meth:`attach` to get a zero-copy view.  A context
    manager guarantees the segment is unlinked even when the
    orchestration raises; double ``close`` is safe.
    """

    def __init__(self, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data)
        if data.nbytes == 0:
            raise ValueError("cannot share an empty array")
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=data.nbytes)
        )
        self.name = self._shm.name
        self.shape = data.shape
        self.dtype = np.dtype(data.dtype)
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)
        view[...] = data
        view.flags.writeable = False
        self.array: Optional[np.ndarray] = view
        # Let the serial fallback resolve our own descriptor in-process.
        _ATTACHED[self.name] = (None, view)

    @property
    def descriptor(self) -> Tuple[str, Tuple[int, ...], str]:
        """Picklable ``(name, shape, dtype)`` handle for workers."""
        return (self.name, tuple(self.shape), self.dtype.str)

    @staticmethod
    def attach(descriptor: Tuple[str, Tuple[int, ...], str]) -> np.ndarray:
        """Zero-copy read-only view of a shared segment (worker side).

        Attachments are cached per process: repeated tasks touching the
        same dataset map the segment once.  Under a forking start
        method the parent's own mapping is inherited and reused
        directly, so attach costs nothing at all.
        """
        name, shape, dtype = descriptor
        cached = _ATTACHED.get(name)
        if cached is not None:
            return cached[1]
        shm = shared_memory.SharedMemory(name=name)
        _unregister_from_tracker(shm.name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        view.flags.writeable = False
        _ATTACHED[name] = (shm, view)
        return view

    def close(self) -> None:
        """Release the view, close the mapping and unlink the segment."""
        if self._shm is None:
            return
        _ATTACHED.pop(self.name, None)
        self.array = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked (e.g. by an explicit cleanup)

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort cleanup; close() idempotent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "open" if self._shm is not None else "closed"
        return (
            f"SharedDataset(name={self.name!r}, shape={tuple(self.shape)}, "
            f"{state})"
        )


def _run_bin(fn: Callable[[Any], Any], tasks: List[Any]) -> List[Any]:
    """Worker entry point: apply ``fn`` to one LPT bin of tasks."""
    return [fn(task) for task in tasks]


class ParallelExecutor:
    """Run picklable tasks on a process pool, LPT-binned per worker.

    ``run`` never fails on pool trouble: a bin whose worker dies, times
    out, or raises is retried on a fresh pool up to ``max_retries``
    times, and whatever is still unfinished afterwards is computed
    serially in the parent — so results are always complete and correct,
    merely slower in the degraded cases.  ``workers <= 1`` (or a pool
    that cannot start, as in CI sandboxes without process support)
    short-circuits to the same serial path.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 1,
        start_method: Optional[str] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.start_method = start_method
        #: Observer for executor failure/recovery events (plain dicts
        #: with a ``kind`` key).  When None, events route to the
        #: process-global sink a tracer may have installed via
        #: :func:`repro.trace.install_executor_sink` — so worker deaths
        #: are first-class trace events, never silent retries.
        self.on_event = on_event

    def _emit(self, kind: str, **fields: Any) -> None:
        """Report one executor event; observers must never break runs."""
        sink = self.on_event
        if sink is None:
            from repro.trace import get_executor_sink

            sink = get_executor_sink()
        if sink is None:
            return
        event: Dict[str, Any] = {"kind": kind}
        event.update(fields)
        try:
            sink(event)
        except Exception:
            pass

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        costs: Optional[Sequence[float]] = None,
    ) -> List[Any]:
        """``[fn(t) for t in tasks]``, computed in parallel.

        ``costs`` (default: unit) drive the LPT binning so skewed task
        sets still balance across workers.  Results come back in task
        order regardless of which worker ran what.
        """
        tasks = list(tasks)
        if costs is not None and len(costs) != len(tasks):
            raise ValueError(
                f"got {len(costs)} costs for {len(tasks)} tasks"
            )
        results: List[Any] = [None] * len(tasks)
        pending = set(range(len(tasks)))
        degraded = False
        if not self.is_serial and len(tasks) > 1:
            for attempt in range(self.max_retries + 1):
                if not pending:
                    break
                if not self._dispatch(
                    fn, tasks, costs, pending, results, attempt
                ):
                    degraded = True
                    break  # pool cannot start: serial fallback
                if pending:
                    degraded = True  # some bins failed; retry or go serial
                elif degraded:
                    self._emit(
                        "retry_recovered", attempt=attempt, tasks=len(tasks)
                    )
        serial_leftover = len(pending) if degraded else 0
        for index in sorted(pending):
            results[index] = fn(tasks[index])
        if serial_leftover:
            self._emit("serial_recovered", tasks=serial_leftover)
        return results

    # -- internals ----------------------------------------------------

    def _dispatch(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        costs: Optional[Sequence[float]],
        pending: Set[int],
        results: List[Any],
        attempt: int,
    ) -> bool:
        """One pool round over ``pending``; False if no pool started.

        Successful bins are harvested even when other bins fail; failed
        or unfinished bins stay in ``pending`` for the next round.
        """
        order = sorted(pending)
        bin_costs = [1.0 if costs is None else float(costs[i]) for i in order]
        n_workers = min(self.workers, len(order))
        bins = [b for b in lpt_assign(bin_costs, n_workers) if b]
        try:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method is not None
                else None
            )
            pool = ProcessPoolExecutor(
                max_workers=len(bins), mp_context=context
            )
        except (OSError, ValueError, PermissionError, RuntimeError) as error:
            self._emit(
                "pool_unavailable",
                attempt=attempt,
                tasks=len(order),
                error=type(error).__name__,
            )
            return False
        healthy = True
        try:
            futures = {}
            for bin_indices in bins:
                indices = [order[j] for j in bin_indices]
                future = pool.submit(_run_bin, fn, [tasks[i] for i in indices])
                futures[future] = indices
            timeout = (
                None
                if self.task_timeout is None
                else self.task_timeout * len(order)
            )
            try:
                for future in as_completed(futures, timeout=timeout):
                    indices = futures[future]
                    try:
                        bin_results = future.result()
                    except BrokenExecutor:
                        healthy = False  # retried, then redone serially
                        self._emit(
                            "worker_death",
                            attempt=attempt,
                            tasks=len(indices),
                        )
                        continue
                    except Exception as error:
                        healthy = False
                        self._emit(
                            "task_error",
                            attempt=attempt,
                            tasks=len(indices),
                            error=type(error).__name__,
                        )
                        continue
                    for index, result in zip(indices, bin_results):
                        results[index] = result
                        pending.discard(index)
            except FutureTimeoutError:
                healthy = False
                self._emit(
                    "bin_timeout", attempt=attempt, tasks=len(pending)
                )
        except BrokenExecutor:
            healthy = False
            self._emit(
                "worker_death", attempt=attempt, tasks=len(pending)
            )
        finally:
            if not healthy:
                # A rogue or dead worker may still hold the pipe; kill
                # outright so retry rounds start from a clean slate.
                for process in list(getattr(pool, "_processes", {}).values()):
                    try:
                        process.kill()
                    except Exception:
                        pass
            pool.shutdown(wait=healthy, cancel_futures=True)
        return True


# -- in-worker task functions (module-level: picklable by reference) ---


def cuboid_task(task: Tuple) -> Tuple[List[int], List[int]]:
    """STSC/SDSC work item: one whole cuboid, computed in a worker.

    ``task = (descriptor, input_ids, delta)``.  Returns the sorted
    global ``(skyline, extended_only)`` id lists of subspace ``delta``
    over the rows ``input_ids`` (``None`` means all rows) — exactly the
    pair :meth:`repro.core.lattice.Lattice.set_cuboid` stores.
    """
    from repro.engine.kernels import fast_extended_skyline, fast_skyline

    descriptor, input_ids, delta = task
    data = SharedDataset.attach(descriptor)
    if input_ids is None:
        ids = np.arange(len(data), dtype=np.int64)
        subset = data
    else:
        ids = np.asarray(input_ids, dtype=np.int64)
        subset = data[ids]
    skyline = np.sort(ids[fast_skyline(subset, delta)])
    extended = np.sort(ids[fast_extended_skyline(subset, delta)])
    extended_only = np.setdiff1d(extended, skyline, assume_unique=True)
    return skyline.tolist(), extended_only.tolist()


#: Per-worker memo shared across point blocks: ``d -> (closures,
#: pair_bits)``.  Distinct ``(le, eq)`` pairs number at most ``3**d``,
#: so every worker converges on the same small cache MDMC's serial
#: engines keep per point set.
_POINT_STATE: Dict[int, Tuple[Any, Dict[Tuple[int, int], int]]] = {}


def point_block_task(task: Tuple) -> List[int]:
    """MDMC work item: ``B_{p∉S}`` masks for one block of S+ points.

    ``task = (descriptor, start, end)`` where the shared array holds
    the extended-skyline rows.  Mirrors the vectorized per-point sweep
    of :func:`repro.engine.kernels.fast_skycube`; the parent batch-
    merges the returned masks into the HashCube.
    """
    from repro.core.closures import SubspaceClosures
    from repro.core.dominance import dominance_masks_vs_all

    descriptor, start, end = task
    rows = SharedDataset.attach(descriptor)
    d = rows.shape[1]
    state = _POINT_STATE.get(d)
    if state is None:
        state = (SubspaceClosures(d), {})
        _POINT_STATE[d] = state
    closures, pair_bits = state
    masks: List[int] = []
    for j in range(start, end):
        le, _, eq = dominance_masks_vs_all(rows, rows[j])
        not_in_s = 0
        for pair in set(zip(le.tolist(), eq.tolist())):
            if pair[0] == 0:
                continue
            bits = pair_bits.get(pair)
            if bits is None:
                bits = closures.dominated_update(pair[0], pair[1])
                pair_bits[pair] = bits
            not_in_s |= bits
        masks.append(not_in_s)
    return masks


#: Per-worker packed sweep over the current shared S+ segment.  Keyed
#: by ``(segment name, backend)`` and kept to the most recent entry: a
#: sweep holds the rank/closure structures (derived copies, not views
#: of the segment), so bounding the cache avoids pinning stale state if
#: a kernel-recycled segment name ever reappears with different rows.
_PACKED_SWEEPS: Dict[Tuple[str, Optional[str]], Any] = {}


def packed_point_block_task(task: Tuple) -> np.ndarray:
    """Packed MDMC work item: uint64 mask rows for one block of S+.

    ``task = (descriptor, start, end, backend)`` over a shared array
    holding the extended-skyline rows.  The worker resolves ``backend``
    (gracefully — an accelerated backend missing in the worker degrades
    to the bit-identical numpy sweep) and builds, once per process per
    segment, that backend's sweep — rank-encoded comparisons plus the
    cached closure table — returning the packed ``(end - start,
    words)`` ``B_{p∉S}`` rows, which the parent merges into the
    HashCube with a single
    :meth:`repro.core.hashcube.HashCube.from_masks` call.
    """
    from repro.engine.jit import resolve_backend

    descriptor, start, end, backend = task
    key = (descriptor[0], backend)
    sweep = _PACKED_SWEEPS.get(key)
    if sweep is None:
        rows = SharedDataset.attach(descriptor)
        sweep = resolve_backend(backend).sweep(rows)
        _PACKED_SWEEPS.clear()
        _PACKED_SWEEPS[key] = sweep
    return sweep.range_masks(start, end)


#: Per-worker filtered sweep over the current shared S+ segment, keyed
#: by ``(rows segment name, backend)`` with the same single-entry
#: policy as :data:`_PACKED_SWEEPS`.  The labels segment rides along in
#: the task and is rehydrated once, when the sweep is built.
_FILTERED_SWEEPS: Dict[Tuple[str, Optional[str]], Any] = {}


def filtered_point_block_task(
    task: Tuple,
) -> Tuple[np.ndarray, Tuple[int, int, int]]:
    """Filtered packed MDMC work item: mask rows plus pruning tallies.

    ``task = (rows_descriptor, labels_descriptor, start, end,
    backend)``.  The rows segment holds the extended skyline in *leaf
    order*; the labels segment holds the matching ``(n, 3)`` int64
    ``med/quart/octl`` columns, from which
    :meth:`repro.partitioning.static_tree.LeafLabels.from_arrays`
    rebuilds the node directory without touching coordinates.
    ``backend`` resolves gracefully in the worker, exactly as in
    :func:`packed_point_block_task`.  Returns ``(mask_block,
    (pairs_pruned, leaves_skipped, label_bytes))`` — the counter deltas
    this block contributed, which the parent sums into its own
    :class:`~repro.instrument.counters.Counters`.
    """
    from repro.engine.jit import resolve_backend
    from repro.partitioning.static_tree import LeafLabels

    rows_descriptor, labels_descriptor, start, end, backend = task
    key = (rows_descriptor[0], backend)
    sweep = _FILTERED_SWEEPS.get(key)
    if sweep is None:
        rows = SharedDataset.attach(rows_descriptor)
        cols = SharedDataset.attach(labels_descriptor)
        labels = LeafLabels.from_arrays(
            cols[:, 0], cols[:, 1], cols[:, 2], k=rows.shape[1]
        )
        sweep = resolve_backend(backend).filtered_sweep(rows, labels)
        _FILTERED_SWEEPS.clear()
        _FILTERED_SWEEPS[key] = sweep
    tallies = sweep.counters
    before = (tallies.pairs_pruned, tallies.leaves_skipped, tallies.label_bytes)
    masks = sweep.range_masks(start, end)
    deltas = (
        tallies.pairs_pruned - before[0],
        tallies.leaves_skipped - before[1],
        tallies.label_bytes - before[2],
    )
    return masks, deltas


# -- template orchestration (parent side) ------------------------------


def parallel_lattice(
    data: np.ndarray,
    executor: ParallelExecutor,
    max_level: Optional[int] = None,
    parent_rule: str = "smallest",
    free_finished_levels: bool = True,
) -> Tuple["Lattice", List["PhaseTrace"]]:
    """Top-down lattice traversal with cuboids dispatched to workers.

    The control flow is :func:`repro.skycube.topdown.top_down_lattice`
    verbatim — full space first, then one barrier per level, each cuboid
    reading its smallest materialised parent — but every level's cuboids
    go through ``executor`` as :func:`cuboid_task` items (LPT-binned by
    parent input size).  Returns ``(lattice, phases)`` like the serial
    traversal; the per-task counters are empty because the in-worker
    kernels are uninstrumented.
    """
    from repro.core.bitmask import format_mask, full_space, subspaces_at_level
    from repro.core.lattice import Lattice
    from repro.instrument.counters import Counters
    from repro.skycube.base import PhaseTrace, TaskTrace
    from repro.skycube.topdown import select_parent

    d = data.shape[1]
    top = d if max_level is None else max_level
    lattice = Lattice(d)
    phases: List[PhaseTrace] = []
    full = full_space(d)

    with SharedDataset(data) as shared:
        descriptor = shared.descriptor
        # Phase 0 — the root input (Algorithms 1/2 line 2): a single
        # task, computed with every worker idle, so run it in-parent.
        root_skyline, root_extended_only = cuboid_task((descriptor, None, full))
        lattice.set_cuboid(full, root_skyline, root_extended_only)
        root_phase = PhaseTrace("root")
        root_phase.tasks.append(
            TaskTrace(label=f"δ={format_mask(full, d)}", counters=Counters())
        )
        phases.append(root_phase)
        start_level = d - 1 if top == d else top

        levels_computed: List[int] = []
        for level in range(start_level, 0, -1):
            deltas = list(subspaces_at_level(d, level))
            tasks = []
            for delta in deltas:
                if top < d and level == top:
                    parent = full
                else:
                    parent = select_parent(lattice, delta, d, parent_rule)
                input_ids = list(lattice.skyline(parent)) + list(
                    lattice.extended_only(parent)
                )
                tasks.append((descriptor, input_ids, delta))
            costs = [float(len(task[1])) for task in tasks]
            outputs = executor.run(cuboid_task, tasks, costs)
            phase = PhaseTrace(f"level-{level}")
            for delta, (skyline, extended_only) in zip(deltas, outputs):
                lattice.set_cuboid(delta, skyline, extended_only)
                phase.tasks.append(
                    TaskTrace(
                        label=f"δ={format_mask(delta, d)}", counters=Counters()
                    )
                )
            phases.append(phase)
            levels_computed.append(level)
            if free_finished_levels and len(levels_computed) >= 2:
                for old in subspaces_at_level(d, levels_computed[-2] + 1):
                    if lattice.has_cuboid(old):
                        lattice.drop_extended(old)

    if top < d:
        # The reduced root input was stashed under the full-space key
        # for parent selection only; a partial lattice must not keep it.
        lattice.remove_cuboid(full)
    return lattice, phases


#: Target number of point blocks per worker — enough for LPT to smooth
#: out skew without drowning the pool in tiny submissions.
BLOCKS_PER_WORKER = 4

#: Floor/ceiling on points per MDMC block.
MIN_BLOCK, MAX_BLOCK = 32, 2048


def parallel_point_masks(
    rows: np.ndarray,
    executor: ParallelExecutor,
    block: Optional[int] = None,
) -> List[int]:
    """``B_{p∉S}`` of every row of ``rows`` (the S+ subset), in order.

    Rows are split into contiguous blocks of roughly equal size; each
    block is one :func:`point_block_task`.  Block boundaries do not
    affect the masks (every task sees the full shared ``rows``), only
    the parallel grain.
    """
    n = len(rows)
    if n == 0:
        return []
    if block is None:
        per_worker = -(-n // max(1, executor.workers * BLOCKS_PER_WORKER))
        block = max(MIN_BLOCK, min(MAX_BLOCK, per_worker))
    elif block < 1:
        raise ValueError(f"block must be positive, got {block}")
    with SharedDataset(rows) as shared:
        descriptor = shared.descriptor
        tasks = [
            (descriptor, start, min(n, start + block))
            for start in range(0, n, block)
        ]
        costs = [float(end - start) for _, start, end in tasks]
        outputs = executor.run(point_block_task, tasks, costs)
    return [mask for block_masks in outputs for mask in block_masks]


def parallel_packed_masks(
    rows: np.ndarray,
    executor: ParallelExecutor,
    block: Optional[int] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Packed ``B_{p∉S}`` rows of ``rows`` (the S+ subset), in order.

    The packed-engine counterpart of :func:`parallel_point_masks`:
    contiguous blocks become :func:`packed_point_block_task` items and
    the uint64 mask blocks concatenate into one ``(n, words)`` array —
    workers return numpy words instead of per-point big ints, so the
    parent merges once and never widens masks in Python.  Block
    boundaries affect only the parallel grain, never the masks.
    ``backend`` ships with every task so workers build their sweeps on
    the selected kernel backend (bit-identical across backends).
    """
    rows = np.ascontiguousarray(rows)
    n = len(rows)
    if n == 0:
        from repro.engine.packed import words_for

        return np.empty((0, words_for(max(1, rows.shape[1]))), dtype=np.uint64)
    if block is None:
        per_worker = -(-n // max(1, executor.workers * BLOCKS_PER_WORKER))
        block = max(MIN_BLOCK, min(MAX_BLOCK, per_worker))
    elif block < 1:
        raise ValueError(f"block must be positive, got {block}")
    with SharedDataset(rows) as shared:
        descriptor = shared.descriptor
        tasks = [
            (descriptor, start, min(n, start + block), backend)
            for start in range(0, n, block)
        ]
        costs = [float(end - start) for _, start, end, _ in tasks]
        outputs = executor.run(packed_point_block_task, tasks, costs)
    _PACKED_SWEEPS.clear()  # parent-side fallback state dies with the segment
    return np.concatenate(outputs, axis=0)


def parallel_filtered_packed_masks(
    rows: np.ndarray,
    executor: ParallelExecutor,
    block: Optional[int] = None,
    counters: Optional["Counters"] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Filtered packed ``B_{p∉S}`` rows of ``rows`` (S+), in row order.

    The multicore counterpart of
    :func:`repro.engine.packed.filtered_point_masks`: the parent builds
    the leaf labels once, ships the leaf-ordered rows *and* the label
    columns as two shared segments, and workers run
    :class:`~repro.engine.packed.FilteredPackedSweep` blocks through
    :func:`filtered_point_block_task`.  Masks come back in leaf order
    and are scattered to the original row order, so the result is
    bit-identical to the serial sweep and to ``parallel_packed_masks``.
    ``counters`` receives the summed pruning tallies from every worker.
    """
    from repro.engine.packed import words_for
    from repro.partitioning.static_tree import LeafLabels

    rows = np.ascontiguousarray(rows)
    n = len(rows)
    if n == 0:
        return np.empty((0, words_for(max(1, rows.shape[1]))), dtype=np.uint64)
    labels = LeafLabels.build(rows)
    ordered = np.ascontiguousarray(rows[labels.order])
    columns = np.ascontiguousarray(
        np.column_stack([labels.med, labels.quart, labels.octl])
    )
    if block is None:
        per_worker = -(-n // max(1, executor.workers * BLOCKS_PER_WORKER))
        block = max(MIN_BLOCK, min(MAX_BLOCK, per_worker))
    elif block < 1:
        raise ValueError(f"block must be positive, got {block}")
    with SharedDataset(ordered) as shared, SharedDataset(columns) as shared_labels:
        tasks = [
            (
                shared.descriptor,
                shared_labels.descriptor,
                start,
                min(n, start + block),
                backend,
            )
            for start in range(0, n, block)
        ]
        costs = [float(end - start) for _, _, start, end, _ in tasks]
        outputs = executor.run(filtered_point_block_task, tasks, costs)
    _FILTERED_SWEEPS.clear()  # parent-side fallback state dies with the segment
    leaf_masks = np.concatenate([masks for masks, _ in outputs], axis=0)
    if counters is not None:
        for _, (pruned, skipped, label_bytes) in outputs:
            counters.pairs_pruned += pruned
            counters.leaves_skipped += skipped
            counters.label_bytes += label_bytes
    out = np.empty_like(leaf_masks)
    out[labels.order] = leaf_masks
    return out
