"""Backend selection: probing, strict/graceful resolution, ``auto``.

The registry is deliberately two-stage.  *Probes* are cheap import
checks that never load the accelerated modules' kernels (a failed
``import numba`` must cost microseconds, not a traceback deep in a
sweep); only a successful probe imports the backend module and
instantiates its :class:`~repro.engine.jit.base.KernelBackend`.  That
keeps ``import repro`` numpy-only by construction — skylint's SKY701
pins every top-level ``numba``/``cupy`` import inside this package.

Resolution semantics, in one place for every knob that selects a
backend (``fast_skycube(backend=)``, ``--backend``, ``[engine]
backend``, ``default_hook("gpu")``):

* ``None`` → numpy (zero behaviour change for existing callers);
* ``"auto"`` → the fastest available backend (cupy > numba > numpy);
* an explicit unavailable name → graceful mode warns once per process
  and degrades to numpy (bit-identical, so degradation is safe);
  strict mode raises :class:`~repro.engine.jit.base.
  BackendUnavailableError` naming the missing extra.
"""

from __future__ import annotations

import importlib
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.engine.jit.base import (
    BackendProbe,
    BackendUnavailableError,
    KernelBackend,
)

__all__ = [
    "KERNEL_BACKENDS",
    "BACKEND_CHOICES",
    "BACKEND_HELP",
    "clear_backend_cache",
    "get_backend",
    "gpu_backend",
    "probe_backends",
    "resolve_backend",
]

#: The registered backend names, reference first.  The single source of
#: truth for every ``--backend`` CLI knob and profile validator.
KERNEL_BACKENDS: Tuple[str, ...] = ("numpy", "numba", "cupy")

#: What selection knobs accept: an explicit backend or ``"auto"``.
BACKEND_CHOICES: Tuple[str, ...] = ("auto",) + KERNEL_BACKENDS

#: Shared ``--backend`` help text for the CLI entry points.
BACKEND_HELP = (
    "packed-kernel backend: 'numpy' (stdlib default, always available), "
    "'numba' (@njit parallel CPU kernels, pip install 'repro[accel]'), "
    "'cupy' (CUDA RawKernel path), or 'auto' (fastest available); all "
    "backends produce bit-identical results, and an unavailable choice "
    "degrades gracefully to numpy with a warning"
)

#: ``auto`` preference order among the probed-available backends.
_AUTO_ORDER: Tuple[str, ...] = ("cupy", "numba", "numpy")


def _probe_numpy() -> str:
    import numpy

    return f"numpy {numpy.__version__} (built-in default, always available)"


def _probe_numba() -> str:
    import numba

    if not hasattr(numba, "njit"):
        raise RuntimeError("numba is importable but exposes no njit")
    return f"numba {numba.__version__} (@njit parallel CPU kernels)"


def _probe_cupy() -> str:
    import cupy

    count = int(cupy.cuda.runtime.getDeviceCount())
    if count < 1:
        raise RuntimeError("cupy imports but no CUDA device is visible")
    return f"cupy {cupy.__version__} ({count} CUDA device(s))"


@dataclass(frozen=True)
class _BackendSpec:
    """How to probe and (on success) load one backend."""

    name: str
    device: str
    requires: str
    module: str
    attribute: str
    probe: Callable[[], str]


_SPECS: Dict[str, _BackendSpec] = {
    "numpy": _BackendSpec(
        name="numpy",
        device="cpu",
        requires="",
        module="repro.engine.jit.numpy_backend",
        attribute="NumpyBackend",
        probe=_probe_numpy,
    ),
    "numba": _BackendSpec(
        name="numba",
        device="cpu",
        requires="install the accel extra: pip install 'repro[accel]'",
        module="repro.engine.jit.numba_backend",
        attribute="NumbaBackend",
        probe=_probe_numba,
    ),
    "cupy": _BackendSpec(
        name="cupy",
        device="gpu",
        requires=(
            "install cupy for your CUDA toolkit (e.g. pip install "
            "cupy-cuda12x) on a machine with a visible CUDA device"
        ),
        module="repro.engine.jit.cupy_backend",
        attribute="CupyBackend",
        probe=_probe_cupy,
    ),
}

_PROBES: Dict[str, BackendProbe] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
_WARNED: Set[str] = set()


def clear_backend_cache() -> None:
    """Forget probe results and instances (tests monkeypatch imports)."""
    _PROBES.clear()
    _INSTANCES.clear()
    _WARNED.clear()


def _unknown(name: str) -> ValueError:
    import difflib

    matches = difflib.get_close_matches(name, list(BACKEND_CHOICES), n=1)
    hint = f" (did you mean {matches[0]!r}?)" if matches else ""
    return ValueError(
        f"unknown kernel backend {name!r}{hint}; "
        f"choose from {BACKEND_CHOICES}"
    )


def probe_backend(name: str, refresh: bool = False) -> BackendProbe:
    """Availability of one backend, cached per process."""
    spec = _SPECS.get(name)
    if spec is None:
        raise _unknown(name)
    probe = _PROBES.get(name)
    if probe is None or refresh:
        try:
            detail = spec.probe()
        except Exception as exc:
            detail = f"{exc}" + (f" — {spec.requires}" if spec.requires else "")
            probe = BackendProbe(spec.name, spec.device, False, detail)
        else:
            probe = BackendProbe(spec.name, spec.device, True, detail)
        _PROBES[name] = probe
    return probe


def probe_backends(refresh: bool = False) -> List[BackendProbe]:
    """Probe every registered backend, in registry order."""
    return [probe_backend(name, refresh=refresh) for name in KERNEL_BACKENDS]


def get_backend(name: str) -> KernelBackend:
    """The backend instance for ``name``; raises when unavailable.

    Importing the backend module happens here, after (and only after)
    its probe succeeds — an unavailable backend never triggers the
    heavyweight import.
    """
    spec = _SPECS.get(name)
    if spec is None:
        raise _unknown(name)
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    probe = probe_backend(name)
    if not probe.available:
        raise BackendUnavailableError(
            spec.name, probe.detail, spec.requires or "no install hint"
        )
    module = importlib.import_module(spec.module)
    instance = getattr(module, spec.attribute)()
    _INSTANCES[name] = instance
    return instance


def resolve_backend(
    name: Optional[str], strict: bool = False
) -> KernelBackend:
    """Resolve a selection knob's value to a live backend.

    ``None`` and ``"numpy"`` short-circuit to the reference backend;
    ``"auto"`` picks the fastest probed-available one.  An explicit,
    unavailable name degrades to numpy with a one-per-process
    :class:`RuntimeWarning` (results are bit-identical across backends,
    so the degradation is behaviour-preserving) — unless ``strict``,
    which raises the typed error naming the missing extra instead.
    """
    if name is None or name == "numpy":
        return get_backend("numpy")
    if name == "auto":
        for candidate in _AUTO_ORDER:
            if probe_backend(candidate).available:
                return get_backend(candidate)
        return get_backend("numpy")
    if name not in _SPECS:
        raise _unknown(name)
    probe = probe_backend(name)
    if probe.available:
        return get_backend(name)
    if strict:
        raise BackendUnavailableError(
            name, probe.detail, _SPECS[name].requires or "no install hint"
        )
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"kernel backend {name!r} is unavailable ({probe.detail}); "
            "falling back to the numpy backend (results are bit-identical)",
            RuntimeWarning,
            stacklevel=2,
        )
    return get_backend("numpy")


def gpu_backend() -> KernelBackend:
    """The first available GPU-device backend; typed error otherwise.

    What ``repro.skyline.registry.default_hook("gpu")`` resolves
    through: a real accelerated hook when one is importable, the typed
    :class:`~repro.engine.jit.base.BackendUnavailableError` — naming
    the missing extra and the ``simulate=True`` escape hatch — when
    not.
    """
    reasons = []
    for name in KERNEL_BACKENDS:
        if _SPECS[name].device != "gpu":
            continue
        probe = probe_backend(name)
        if probe.available:
            return get_backend(name)
        reasons.append(f"{name}: {probe.detail}")
    detail = "; ".join(reasons) if reasons else "no GPU backend registered"
    raise BackendUnavailableError(
        "gpu",
        detail,
        "install a CUDA backend (e.g. pip install cupy-cuda12x), or pass "
        "simulate=True to default_hook() for the instrumented simulation",
    )
