"""The kernel-backend capability layer: one protocol, many compilers.

The packed sweep of :mod:`repro.engine.packed` is already data-parallel
in shape — per point, fold ``closure[le] & ~closure[eq]`` over every
distinct comparison pair.  This package specialises that *same*
computation across compilers: the stdlib+numpy reference (always
available, the zero-dependency default), a Numba ``@njit(parallel=True)``
CPU path, and a CuPy ``RawKernel`` CUDA path.  A
:class:`KernelBackend` bundles everything a caller needs:

* **probing** — :meth:`~KernelBackend.availability` answers "can this
  backend actually run here?" without importing heavyweight modules at
  package-import time (the accelerated modules are only imported after
  their probe succeeds — skylint's SKY701 enforces that no module
  outside ``repro.engine.jit`` imports ``numba``/``cupy`` at top
  level);
* **sweeps** — :meth:`~KernelBackend.point_masks` and
  :meth:`~KernelBackend.filtered_point_masks` produce the packed
  ``B_{p∉S}`` mask rows, bit-identical across every backend (the
  comparison codes and closure folds are integer bit operations on the
  same rank encoding, so there is nothing to round);
* **classification** — :meth:`~KernelBackend.classify` answers the
  skyline/extended-skyline split directly, which is what the real GPU
  hook (:class:`repro.skyline.accelerated.KernelSkyline`) builds on.

Selection and fallback semantics live in
:mod:`repro.engine.jit.registry`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.engine import packed
from repro.instrument.counters import Counters

__all__ = [
    "BackendProbe",
    "BackendUnavailableError",
    "KernelBackend",
    "PlainFilteredAdapter",
]


@dataclass(frozen=True)
class BackendProbe:
    """Outcome of one runtime availability check.

    ``detail`` is human-readable either way: the compiler version (and
    device count, for CUDA backends) when available, the failure reason
    plus the install hint when not.
    """

    name: str
    device: str
    available: bool
    detail: str


class BackendUnavailableError(RuntimeError):
    """A requested kernel backend cannot run in this environment.

    Raised on *strict* resolution (an explicit ``--backend`` on a CI
    gate, or ``default_hook("gpu")`` without ``simulate=True``); the
    graceful path degrades to numpy instead.  The message always names
    the missing extra so the fix is one pip command away.
    """

    def __init__(self, name: str, reason: str, hint: str) -> None:
        self.backend = name
        self.reason = reason
        self.hint = hint
        message = f"kernel backend {name!r} is unavailable: {reason}"
        if hint and hint not in reason:
            message = f"{message}. {hint}"
        super().__init__(message)


class KernelBackend(ABC):
    """One compiled implementation of the packed-sweep primitives.

    Subclasses bind a compiler (numpy, numba, cupy) to the three
    operations the engines need; everything else — leaf ordering for
    the filtered sweep, block bookkeeping — is shared here so the
    backends stay small and provably equivalent.
    """

    #: Registry key (``"numpy"`` / ``"numba"`` / ``"cupy"``).
    name: str = "abstract"
    #: Device class the backend executes on (``"cpu"`` or ``"gpu"``);
    #: ``repro.skyline.registry.default_hook`` matches architectures
    #: against this.
    device: str = "cpu"
    #: Human install hint named by :class:`BackendUnavailableError`.
    requires: str = ""

    def __init__(self) -> None:
        self._probe_result: Optional[BackendProbe] = None

    # -- availability --------------------------------------------------

    @abstractmethod
    def _probe(self) -> str:
        """Return a human detail string, or raise why the probe failed."""

    def availability(self, refresh: bool = False) -> BackendProbe:
        """Cached runtime probe; ``refresh=True`` re-checks imports."""
        if self._probe_result is None or refresh:
            try:
                detail = self._probe()
            except Exception as exc:  # any import/driver failure counts
                detail = f"{exc} ({self.requires})" if self.requires else str(exc)
                self._probe_result = BackendProbe(
                    self.name, self.device, False, detail
                )
            else:
                self._probe_result = BackendProbe(
                    self.name, self.device, True, detail
                )
        return self._probe_result

    def require(self) -> "KernelBackend":
        """Self if available, else :class:`BackendUnavailableError`."""
        probe = self.availability()
        if not probe.available:
            raise BackendUnavailableError(
                self.name, probe.detail, self.requires or "no install hint"
            )
        return self

    # -- tuning --------------------------------------------------------

    def preferred_block(self, d: int) -> int:
        """Rows per sweep block when the caller does not pin one.

        The numpy sweep wants small blocks (its presence table must
        stay cache-resident); compiled backends amortise launch and
        label-batch overheads over larger ones.  ``REPRO_KERNEL_BLOCK``
        and the ``block=`` keyword still override this.
        """
        return packed.DEFAULT_BLOCK

    # -- sweep factories ----------------------------------------------

    @abstractmethod
    def sweep(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> Any:
        """A :class:`~repro.engine.packed.PackedSweep`-shaped object.

        The result exposes ``n``, ``d`` and ``range_masks(start, end)``
        returning ``(end - start, words)`` uint64 mask rows bit-identical
        to the numpy sweep's.
        """

    @abstractmethod
    def filtered_sweep(
        self,
        rows: np.ndarray,
        labels: Any,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> Any:
        """The label-filtered counterpart over *leaf-ordered* rows.

        Additionally exposes ``counters`` (pruning tallies) and
        ``filter_active``; backends without a profitable filter phase
        may return a :class:`PlainFilteredAdapter` — skipping the
        filter only costs speed, never bits.
        """

    # -- whole-input conveniences --------------------------------------

    def point_masks(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Packed ``B_{p∉S}`` rows of every row of ``rows`` (S+)."""
        sweep = self.sweep(rows, block=block, table=table)
        return sweep.range_masks(0, sweep.n)

    def filtered_point_masks(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> np.ndarray:
        """Filtered ``B_{p∉S}`` rows, scattered back to input order.

        The backend-generic form of
        :func:`repro.engine.packed.filtered_point_masks`: build the
        leaf labels, sweep in leaf order (sequential label traffic),
        scatter back.  Bit-identical to :meth:`point_masks`.
        """
        ordered, labels = packed.leaf_ordered(rows)
        sweep = self.filtered_sweep(
            ordered, labels, block=block, table=table, counters=counters
        )
        leaf_masks = sweep.range_masks(0, sweep.n)
        out = np.empty_like(leaf_masks)
        out[labels.order] = leaf_masks
        return out

    # -- skyline classification ----------------------------------------

    @abstractmethod
    def classify(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(dominated, strictly_dominated)`` boolean arrays over rows.

        ``dominated[i]`` iff some row dominates ``rows[i]`` (Definition
        1: ``<=`` everywhere, ``<`` somewhere — duplicates never
        dominate each other); ``strictly_dominated[i]`` iff some row is
        ``<`` on every dimension.  ``~dominated`` is the skyline,
        ``~strictly_dominated`` the extended skyline.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"


class PlainFilteredAdapter:
    """A plain sweep wearing the filtered-sweep interface.

    Backends whose sweep cannot profit from the label filter (the CuPy
    fold is idempotent and dedup-free, so skipping leaves saves it
    nothing) still need the ``counters``/``filter_active`` surface the
    process workers read.  Correctness is untouched: the filter only
    ever removes provably redundant pair work.
    """

    def __init__(self, sweep: Any, counters: Optional[Counters] = None) -> None:
        self._sweep = sweep
        self.counters = counters if counters is not None else Counters()
        self.filter_active = False
        self.n = sweep.n
        self.d = sweep.d

    def masks(self, start: int, end: int) -> np.ndarray:
        return self._sweep.masks(start, end)

    def range_masks(self, start: int, end: int) -> np.ndarray:
        return self._sweep.range_masks(start, end)
