"""Optional accelerated kernel backends behind one protocol.

See :mod:`repro.engine.jit.base` for the protocol and
:mod:`repro.engine.jit.registry` for probing/selection.  Importing this
package never imports numba or cupy — the accelerated modules load
lazily, after their availability probe succeeds.
"""

from repro.engine.jit.base import (
    BackendProbe,
    BackendUnavailableError,
    KernelBackend,
)
from repro.engine.jit.registry import (
    BACKEND_CHOICES,
    BACKEND_HELP,
    KERNEL_BACKENDS,
    clear_backend_cache,
    get_backend,
    gpu_backend,
    probe_backends,
    resolve_backend,
)

__all__ = [
    "BackendProbe",
    "BackendUnavailableError",
    "KernelBackend",
    "KERNEL_BACKENDS",
    "BACKEND_CHOICES",
    "BACKEND_HELP",
    "clear_backend_cache",
    "get_backend",
    "gpu_backend",
    "probe_backends",
    "resolve_backend",
]
