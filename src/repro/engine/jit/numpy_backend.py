"""The reference backend: the stdlib+numpy packed sweep, unchanged.

Every other backend is measured against this one — it *is* the
``engine="packed"`` / ``"packed-filtered"`` implementation the rest of
the library already trusts, re-exposed through the
:class:`~repro.engine.jit.base.KernelBackend` protocol so selection,
probing and fallback treat all backends uniformly.  Always available.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.core.dominance import dominated_mask, rank_columns
from repro.engine import packed
from repro.engine.jit.base import KernelBackend
from repro.instrument.counters import Counters

__all__ = ["NumpyBackend"]

#: Rows per classification block — bounds the ``block × n`` boolean
#: intermediates of :func:`repro.core.dominance.dominated_mask`.
_CLASSIFY_BLOCK = 512


class NumpyBackend(KernelBackend):
    """The zero-dependency default; delegates to :mod:`repro.engine.packed`."""

    name = "numpy"
    device = "cpu"
    requires = ""  # ships with the package itself

    def _probe(self) -> str:
        return f"numpy {np.__version__} (built-in default, always available)"

    def sweep(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> packed.PackedSweep:
        return packed.PackedSweep(rows, block=block, table=table)

    def filtered_sweep(
        self,
        rows: np.ndarray,
        labels: Any,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> packed.FilteredPackedSweep:
        return packed.FilteredPackedSweep(
            rows, labels, block=block, table=table, counters=counters
        )

    def classify(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        ranks = rank_columns(np.asarray(rows, dtype=np.float64))
        n = len(ranks)
        dominated = np.empty(n, dtype=bool)
        strict = np.empty(n, dtype=bool)
        for start in range(0, n, _CLASSIFY_BLOCK):
            end = min(n, start + _CLASSIFY_BLOCK)
            chunk = ranks[start:end]
            dominated[start:end] = dominated_mask(chunk, ranks, strict=False)
            strict[start:end] = dominated_mask(chunk, ranks, strict=True)
        return dominated, strict
