"""CuPy backend: the packed sweep as a CUDA ``RawKernel``.

One thread per point, looping over all ``n`` rows.  The key
simplification over the CPU paths is that the GPU kernel performs *no*
dedup at all: the per-pair contribution ``closure[le] & ~closure[eq]``
is folded with OR, and OR is idempotent — folding a duplicate pair a
second time changes nothing.  Dedup on the CPU is purely a work-saving
device (one closure gather per distinct pair instead of per row);
lane-private branching to maintain a presence table would serialise a
warp, so the GPU fold simply pays the gather per row and stays
bit-identical by algebra.

Ranks and the closure table upload once per sweep object; mask rows
come back as host numpy arrays so every consumer downstream of
:meth:`range_masks` is backend-oblivious.

This module imports :mod:`cupy` at top level *by design* — it is only
imported after the registry probe confirms both the package and a
visible CUDA device (skylint SKY701 confines such imports to
``repro.engine.jit``).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import cupy as cp
import numpy as np

from repro.core.dominance import rank_columns
from repro.engine import packed
from repro.engine.jit.base import KernelBackend, PlainFilteredAdapter
from repro.instrument.counters import Counters

__all__ = ["CupyBackend", "CupySweep"]

#: Threads per CUDA block for both kernels.
_THREADS = 256

#: Points per :meth:`CupySweep.range_masks` launch when the caller does
#: not pin one — bounds the device-resident ``(block, words)`` output.
_CUPY_BLOCK = 4096

_SWEEP_SOURCE = r"""
extern "C" __global__
void packed_sweep(const unsigned int* __restrict__ ranks,
                  const unsigned long long* __restrict__ table,
                  unsigned long long* __restrict__ out,
                  const long long n, const int d, const int words,
                  const long long start, const long long b)
{
    long long ii = (long long)blockIdx.x * blockDim.x + threadIdx.x;
    if (ii >= b) return;
    long long i = start + ii;
    unsigned long long* row = out + (size_t)ii * words;
    for (long long j = 0; j < n; ++j) {
        unsigned int le = 0, eq = 0;
        for (int k = 0; k < d; ++k) {
            unsigned int rj = ranks[j * d + k];
            unsigned int ri = ranks[i * d + k];
            if (rj <= ri) {
                le |= 1u << k;
                if (rj == ri) eq |= 1u << k;
            }
        }
        if (le != 0u) {
            const unsigned long long* cle = table + (size_t)le * words;
            const unsigned long long* ceq = table + (size_t)eq * words;
            for (int w = 0; w < words; ++w)
                row[w] |= cle[w] & ~ceq[w];
        }
    }
}
"""

_CLASSIFY_SOURCE = r"""
extern "C" __global__
void classify(const unsigned int* __restrict__ ranks,
              unsigned char* __restrict__ dominated,
              unsigned char* __restrict__ strictly,
              const long long n, const int d)
{
    long long i = (long long)blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    unsigned char dom = 0, strict_dom = 0;
    for (long long j = 0; j < n; ++j) {
        bool all_le = true, all_lt = true, any_lt = false;
        for (int k = 0; k < d; ++k) {
            unsigned int rj = ranks[j * d + k];
            unsigned int ri = ranks[i * d + k];
            if (rj > ri) { all_le = false; all_lt = false; break; }
            if (rj < ri) any_lt = true; else all_lt = false;
        }
        if (all_le && any_lt) {
            dom = 1;
            if (all_lt) { strict_dom = 1; break; }
        }
    }
    dominated[i] = dom;
    strictly[i] = strict_dom;
}
"""

_sweep_kernel = cp.RawKernel(_SWEEP_SOURCE, "packed_sweep")
_classify_kernel = cp.RawKernel(_CLASSIFY_SOURCE, "classify")


class CupySweep:
    """Device-resident :class:`~repro.engine.packed.PackedSweep` equivalent."""

    def __init__(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> None:
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D S+ array, got shape {rows.shape}"
            )
        self.n, self.d = rows.shape
        if not 1 <= self.d <= packed.PACKED_MAX_D:
            raise ValueError(
                f"packed engine supports d in "
                f"[1, {packed.PACKED_MAX_D}], got {self.d}"
            )
        self.block = _CUPY_BLOCK if block is None else block
        if self.block < 1:
            raise ValueError(f"block must be positive, got {self.block}")
        host_table = packed.closure_table(self.d) if table is None else table
        self.table = host_table
        self._ranks = cp.asarray(
            np.ascontiguousarray(rank_columns(rows).astype(np.uint32))
        )
        self._table = cp.asarray(np.ascontiguousarray(host_table))

    def masks(self, start: int, end: int) -> np.ndarray:
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        b = end - start
        words = packed.words_for(self.d)
        out = cp.zeros((b, words), dtype=cp.uint64)
        grid = (b + _THREADS - 1) // _THREADS
        _sweep_kernel(
            (grid,),
            (_THREADS,),
            (
                self._ranks,
                self._table,
                out,
                np.int64(self.n),
                np.int32(self.d),
                np.int32(words),
                np.int64(start),
                np.int64(b),
            ),
        )
        return cp.asnumpy(out)

    def range_masks(self, start: int, end: int) -> np.ndarray:
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid range [{start}, {end}) over {self.n} rows"
            )
        out = np.empty(
            (end - start, packed.words_for(self.d)), dtype=np.uint64
        )
        for lo in range(start, end, self.block):
            hi = min(end, lo + self.block)
            out[lo - start : hi - start] = self.masks(lo, hi)
        return out


class CupyBackend(KernelBackend):
    """CUDA ``RawKernel`` path — the real ``architecture="gpu"`` hook."""

    name = "cupy"
    device = "gpu"
    requires = (
        "install cupy for your CUDA toolkit (e.g. pip install "
        "cupy-cuda12x) on a machine with a visible CUDA device"
    )

    def _probe(self) -> str:
        count = int(cp.cuda.runtime.getDeviceCount())
        if count < 1:
            raise RuntimeError("cupy imports but no CUDA device is visible")
        return f"cupy {cp.__version__} ({count} CUDA device(s))"

    def preferred_block(self, d: int) -> int:
        return _CUPY_BLOCK

    def sweep(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> CupySweep:
        return CupySweep(rows, block=block, table=table)

    def filtered_sweep(
        self,
        rows: np.ndarray,
        labels: Any,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> PlainFilteredAdapter:
        # The dedup-free fold gains nothing from leaf skipping (see
        # module docstring); the adapter keeps the worker-facing
        # counters/filter_active surface and stays bit-identical.
        return PlainFilteredAdapter(
            self.sweep(rows, block=block, table=table), counters=counters
        )

    def classify(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        ranks = cp.asarray(
            np.ascontiguousarray(
                rank_columns(np.asarray(rows, dtype=np.float64)).astype(
                    np.uint32
                )
            )
        )
        n, d = ranks.shape
        dominated = cp.zeros(n, dtype=cp.uint8)
        strictly = cp.zeros(n, dtype=cp.uint8)
        grid = (int(n) + _THREADS - 1) // _THREADS
        _classify_kernel(
            (grid,),
            (_THREADS,),
            (ranks, dominated, strictly, np.int64(n), np.int32(d)),
        )
        return (
            cp.asnumpy(dominated).astype(bool),
            cp.asnumpy(strictly).astype(bool),
        )
