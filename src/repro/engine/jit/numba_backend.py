"""Numba backend: the packed sweep as ``@njit(parallel=True)`` kernels.

The numpy sweep is array-at-a-time: it materialises ``(b, n)`` code
matrices, dedups them with a presence table, gathers closure rows and
folds with ``np.bitwise_or.reduceat``.  Compiled, none of those
intermediates need to exist — each ``prange`` lane owns one point and
fuses the whole chain (rank comparison → code → first-seen dedup →
closure fold) into registers and one private presence byte-array.  The
bits cannot differ: both paths fold ``closure[le] & ~closure[eq]`` over
the same set of distinct ``(le, eq)`` pairs computed from the same
dense rank encoding (:func:`repro.core.dominance.rank_columns`), and
OR is order-insensitive.

The filtered sweep keeps the exact skip rule of
:class:`repro.engine.packed.FilteredPackedSweep` but applies it
*per point* instead of per block: a lane skips node ``t`` for its own
point whenever ``closure(potential) ⊆ F`` (one bit probe — ``F`` is
down-closed), where the numpy sweep only skips nodes every block point
agrees on.  Finer skipping, same containment argument, same bits.

This module imports :mod:`numba` at top level *by design* — it is only
ever imported after the registry's availability probe succeeds
(skylint SKY701 confines such imports to ``repro.engine.jit``).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numba
import numpy as np
from numba import njit, prange

from repro.core.dominance import rank_columns
from repro.engine import packed
from repro.engine.jit.base import KernelBackend
from repro.instrument.counters import Counters

__all__ = ["NumbaBackend", "NumbaSweep", "NumbaFilteredSweep"]

#: Per-lane presence tables (``4**d`` bytes) are used up to this many
#: code bits; beyond it (``d > 11`` → over 4 MiB per lane) the kernels
#: dedup through a sort instead.
_PRESENCE_BITS = 22

#: Rows per sweep block when the caller does not pin one.  The plain
#: kernel launches once over the whole range regardless; the block only
#: sizes the filtered sweep's ``(block, nodes)`` label batches, where
#: compiled lanes amortise the numpy label broadcast over more points
#: than the numpy sweep could.
_NUMBA_BLOCK = 1024


@njit(cache=True, parallel=True)
def _sweep_presence(
    ranks: np.ndarray,
    table: np.ndarray,
    start: int,
    end: int,
    d: int,
    words: int,
) -> np.ndarray:  # pragma: no cover - exercised only where numba installs
    n = ranks.shape[0]
    b = end - start
    out = np.zeros((b, words), dtype=np.uint64)
    for ii in prange(b):
        i = start + ii
        seen = np.zeros(1 << (2 * d), dtype=np.uint8)
        for j in range(n):
            le = 0
            eq = 0
            for k in range(d):
                rj = ranks[j, k]
                ri = ranks[i, k]
                if rj <= ri:
                    le |= 1 << k
                    if rj == ri:
                        eq |= 1 << k
            code = le | (eq << d)
            if seen[code] == 0:
                seen[code] = 1
                if le != 0:
                    for w in range(words):
                        out[ii, w] |= table[le, w] & ~table[eq, w]
    return out


@njit(cache=True, parallel=True)
def _sweep_sorted(
    ranks: np.ndarray,
    table: np.ndarray,
    start: int,
    end: int,
    d: int,
    words: int,
) -> np.ndarray:  # pragma: no cover - exercised only where numba installs
    n = ranks.shape[0]
    b = end - start
    out = np.zeros((b, words), dtype=np.uint64)
    low = (1 << d) - 1
    for ii in prange(b):
        i = start + ii
        codes = np.empty(n, dtype=np.int64)
        for j in range(n):
            le = 0
            eq = 0
            for k in range(d):
                rj = ranks[j, k]
                ri = ranks[i, k]
                if rj <= ri:
                    le |= 1 << k
                    if rj == ri:
                        eq |= 1 << k
            codes[j] = le | (eq << d)
        codes.sort()
        previous = np.int64(-1)
        for j in range(n):
            code = codes[j]
            if code == previous:
                continue
            previous = code
            le = code & low
            eq = code >> d
            if le != 0:
                for w in range(words):
                    out[ii, w] |= table[le, w] & ~table[eq, w]
    return out


@njit(cache=True, parallel=True)
def _sweep_filtered(
    ranks: np.ndarray,
    table: np.ndarray,
    node_start: np.ndarray,
    node_end: np.ndarray,
    strict: np.ndarray,
    prune: np.ndarray,
    start: int,
    d: int,
    words: int,
) -> Tuple[
    np.ndarray, np.ndarray
]:  # pragma: no cover - exercised only where numba installs
    b = strict.shape[0]
    nodes = strict.shape[1]
    full_local = (1 << d) - 1
    out = np.zeros((b, words), dtype=np.uint64)
    skipped = np.zeros(b, dtype=np.int64)
    for ii in prange(b):
        i = start + ii
        # Filter phase: fold the point's distinct node strict masks
        # into the packed, down-closed evidence row F.
        seen_t = np.zeros(1 << d, dtype=np.uint8)
        filtered = np.zeros(words, dtype=np.uint64)
        for t_index in range(nodes):
            t = strict[ii, t_index]
            if seen_t[t] == 0:
                seen_t[t] = 1
                if t != 0:
                    for w in range(words):
                        filtered[w] |= table[t, w]
        # Skip + refine: one bit probe per node, exact codes for the
        # survivors, first-seen dedup shared across surviving nodes.
        seen = np.zeros(1 << (2 * d), dtype=np.uint8)
        for t_index in range(nodes):
            potential = prune[ii, t_index] ^ full_local
            if potential == 0:
                skipped[ii] += node_end[t_index] - node_start[t_index]
                continue
            probe = potential - 1
            bit = (
                filtered[probe >> 6] >> np.uint64(probe & 63)
            ) & np.uint64(1)
            if bit != np.uint64(0):
                skipped[ii] += node_end[t_index] - node_start[t_index]
                continue
            for j in range(node_start[t_index], node_end[t_index]):
                le = 0
                eq = 0
                for k in range(d):
                    rj = ranks[j, k]
                    ri = ranks[i, k]
                    if rj <= ri:
                        le |= 1 << k
                        if rj == ri:
                            eq |= 1 << k
                code = le | (eq << d)
                if seen[code] == 0:
                    seen[code] = 1
                    if le != 0:
                        for w in range(words):
                            out[ii, w] |= table[le, w] & ~table[eq, w]
        for w in range(words):
            out[ii, w] |= filtered[w]
    return out, skipped


@njit(cache=True, parallel=True)
def _classify_kernel(
    ranks: np.ndarray,
) -> Tuple[
    np.ndarray, np.ndarray
]:  # pragma: no cover - exercised only where numba installs
    n, d = ranks.shape
    dominated = np.zeros(n, dtype=np.bool_)
    strict = np.zeros(n, dtype=np.bool_)
    for i in prange(n):
        found_dominated = False
        for j in range(n):
            all_le = True
            all_lt = True
            any_lt = False
            for k in range(d):
                rj = ranks[j, k]
                ri = ranks[i, k]
                if rj > ri:
                    all_le = False
                    all_lt = False
                    break
                if rj < ri:
                    any_lt = True
                else:
                    all_lt = False
            if all_le and any_lt:
                found_dominated = True
                if all_lt:
                    strict[i] = True
                    break
        dominated[i] = found_dominated
    return dominated, strict


def _validated_rows(rows: np.ndarray) -> np.ndarray:
    rows = np.asarray(rows)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValueError(
            f"expected a non-empty 2-D S+ array, got shape {rows.shape}"
        )
    d = rows.shape[1]
    if not 1 <= d <= packed.PACKED_MAX_D:
        raise ValueError(
            f"packed engine supports d in [1, {packed.PACKED_MAX_D}], got {d}"
        )
    return rows


class NumbaSweep:
    """Compiled :class:`~repro.engine.packed.PackedSweep` equivalent."""

    def __init__(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> None:
        rows = _validated_rows(rows)
        self.n, self.d = rows.shape
        self.block = _NUMBA_BLOCK if block is None else block
        if self.block < 1:
            raise ValueError(f"block must be positive, got {self.block}")
        self.table = packed.closure_table(self.d) if table is None else table
        # uint32 caps the lane width while preserving every comparison
        # (dense ranks are < n); one dtype also bounds the number of
        # kernel specialisations numba compiles.
        self.ranks = np.ascontiguousarray(rank_columns(rows).astype(np.uint32))

    def masks(self, start: int, end: int) -> np.ndarray:
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        words = packed.words_for(self.d)
        if 2 * self.d <= _PRESENCE_BITS:
            return _sweep_presence(
                self.ranks, self.table, start, end, self.d, words
            )
        return _sweep_sorted(self.ranks, self.table, start, end, self.d, words)

    def range_masks(self, start: int, end: int) -> np.ndarray:
        # One launch covers the whole range: every point is its own
        # parallel lane, so there is no numpy-style memory cliff to
        # block against.
        return self.masks(start, end)


class NumbaFilteredSweep(NumbaSweep):
    """Compiled filtered sweep with per-point leaf skipping.

    Same self-gating policy as the numpy
    :class:`~repro.engine.packed.FilteredPackedSweep` (node-fraction
    static gate, observed-prune-rate dynamic gate), with per-point skip
    granularity: the pruning tallies count ``(point, leaf)`` pairs
    avoided, so ``pairs_pruned == leaves_skipped`` here.
    """

    def __init__(
        self,
        rows: np.ndarray,
        labels: Any,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        super().__init__(rows, block=block, table=table)
        if len(labels) != self.n:
            raise ValueError(
                f"labels cover {len(labels)} points but rows have {self.n}"
            )
        if labels.k != self.d:
            raise ValueError(
                f"labels are {labels.k}-dimensional but rows have d={self.d}"
            )
        self.labels = labels
        self.counters = counters if counters is not None else Counters()
        gate = packed.FilteredPackedSweep.MAX_NODE_FRACTION
        self.filter_active = (
            2 * self.d <= _PRESENCE_BITS
            and labels.node_count <= max(1.0, gate * self.n)
        )
        self._swept = 0
        self._pairs_seen = 0
        self._pairs_pruned = 0

    def masks(self, start: int, end: int) -> np.ndarray:
        if not self.filter_active:
            return super().masks(start, end)
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        b = end - start
        strict = np.ascontiguousarray(
            self.labels.block_node_strict(start, end)
        )
        prune = np.ascontiguousarray(self.labels.block_node_prune(start, end))
        self.counters.label_bytes += strict.nbytes + prune.nbytes
        words = packed.words_for(self.d)
        out, skipped = _sweep_filtered(
            self.ranks,
            self.table,
            self.labels.node_start,
            self.labels.node_end,
            strict,
            prune,
            start,
            self.d,
            words,
        )
        pruned = int(skipped.sum())
        self.counters.leaves_skipped += pruned
        self.counters.pairs_pruned += pruned
        self._pairs_pruned += pruned
        self._pairs_seen += b * self.n
        self._swept += b
        minimum = packed.FilteredPackedSweep.MIN_PRUNE_RATE
        if (
            self._swept >= 8 * self.block
            and self._pairs_pruned < minimum * self._pairs_seen
        ):
            self.filter_active = False
        return out

    def range_masks(self, start: int, end: int) -> np.ndarray:
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid range [{start}, {end}) over {self.n} rows"
            )
        out = np.empty(
            (end - start, packed.words_for(self.d)), dtype=np.uint64
        )
        for lo in range(start, end, self.block):
            hi = min(end, lo + self.block)
            out[lo - start : hi - start] = self.masks(lo, hi)
        return out


class NumbaBackend(KernelBackend):
    """``@njit(parallel=True, cache=True)`` CPU kernels (the ``accel`` extra)."""

    name = "numba"
    device = "cpu"
    requires = "install the accel extra: pip install 'repro[accel]'"

    def _probe(self) -> str:
        return (
            f"numba {numba.__version__} "
            "(@njit parallel CPU kernels, compiled lazily on first sweep)"
        )

    def preferred_block(self, d: int) -> int:
        return _NUMBA_BLOCK

    def sweep(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> NumbaSweep:
        return NumbaSweep(rows, block=block, table=table)

    def filtered_sweep(
        self,
        rows: np.ndarray,
        labels: Any,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> NumbaFilteredSweep:
        return NumbaFilteredSweep(
            rows, labels, block=block, table=table, counters=counters
        )

    def classify(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        ranks = np.ascontiguousarray(
            rank_columns(np.asarray(rows, dtype=np.float64)).astype(np.uint32)
        )
        dominated, strict = _classify_kernel(ranks)
        return np.asarray(dominated), np.asarray(strict)
