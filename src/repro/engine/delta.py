"""Delta sweeps for incremental skycube maintenance (packed form).

A single mutation cannot move most masks: inserting a point ``x`` only
adds dominated-bits to points ``x`` strictly beats somewhere, and
deleting ``x`` only *clears* bits of exactly those points (the ones it
may have contributed to).  Points that dominate ``x`` are unaffected in
both directions.  This module supplies the two pieces that turn that
observation into an O(affected) update on the packed uint64
representation of :mod:`repro.engine.packed`:

* :class:`DeltaIndex` — affected-point *detection*.  A
  :class:`~repro.partitioning.static_tree.StaticTree` over the live
  rows stores global median/quartile pivots; labelling the mutation
  point against those pivots and reusing the batch
  ``block_node_strict`` label arithmetic proves, per top-two-level
  node, on which dimensions *every* point of the node is strictly
  better than the mutation point.  A node whose strict mask covers all
  ``d`` dimensions cannot contain a point the mutation beats anywhere,
  so the whole node drops out before any coordinate is touched — the
  same evidence the read-path filter uses (Section 5.2), pointed at
  the write path.  Rows appended after the last rebuild (the *tail*)
  are always candidates; the exact vectorised comparison then prunes
  the survivors to the true affected set.

* fold helpers — the delta analogues of the
  :class:`~repro.engine.packed.PackedSweep` refine phase.
  :func:`fold_codes` folds the distinct ``le + (eq << d)`` codes of
  "everyone versus the new point" into the new point's own packed
  ``B_{p∉S}`` row; :func:`contribution_rows` gathers the closure
  contribution of the *one* mutation point against each affected row
  (deduplicated, one table gather per distinct pair);
  :func:`recompute_rows` re-derives affected masks from scratch after
  a delete by reordering the live rows so the affected block comes
  first and running an ordinary :class:`~repro.engine.packed.PackedSweep`
  (``PairCoder`` codes + closure-table fold) over just that block.

Everything here is bit-identical to a full recompute by construction:
the index only ever *excludes* provably-unaffected points, and the
folds reuse the exact closure table the batch engines use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.engine.packed import (
    PackedSweep,
    closure_table,
    words_for,
)
from repro.partitioning.static_tree import StaticTree

__all__ = [
    "DeltaIndex",
    "fold_codes",
    "contribution_rows",
    "recompute_rows",
]


def fold_codes(codes: np.ndarray, d: int, table: Optional[np.ndarray] = None) -> np.ndarray:
    """One packed ``B_{p∉S}`` row from flat ``le + (eq << d)`` codes.

    The single-point fold: ``codes`` holds one comparison code per
    (potential) dominator of the same target point; the distinct codes
    each contribute ``closure(le) & ~closure(eq)`` (Definition 1 over
    the whole lattice) and the contributions OR into one row.  An empty
    code array folds to the all-zero row (no dominators anywhere).
    """
    table = closure_table(d) if table is None else table
    if len(codes) == 0:
        return np.zeros(words_for(d), dtype=np.uint64)
    unique = np.unique(codes)
    low = (1 << d) - 1
    contributions = table[unique & low] & ~table[unique >> d]
    return np.bitwise_or.reduce(contributions, axis=0)


def contribution_rows(
    ge: np.ndarray,
    eq: np.ndarray,
    d: int,
    table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-row closure contributions of one dominator, deduplicated.

    ``ge[i]``/``eq[i]`` encode the relation of the mutation point to
    affected row ``i`` (bit ``j`` of ``ge`` set iff the mutation point
    is ``<=`` on dimension ``j``).  Returns an ``(len(ge), words)``
    uint64 array whose row ``i`` is ``closure(ge[i]) & ~closure(eq[i])``
    — the bits the mutation point adds to row ``i``'s mask.  Distinct
    ``(ge, eq)`` pairs are gathered from the closure table exactly once
    (the duplicate-mask skipping of the batch sweep, applied to the
    one-point case).
    """
    table = closure_table(d) if table is None else table
    codes = ge | (eq << d)
    unique, inverse = np.unique(codes, return_inverse=True)
    low = (1 << d) - 1
    contributions = table[unique & low] & ~table[unique >> d]
    return contributions[np.asarray(inverse).ravel()]


def recompute_rows(
    matrix: np.ndarray,
    affected: np.ndarray,
    rest: np.ndarray,
    table: Optional[np.ndarray] = None,
    block: Optional[int] = None,
) -> np.ndarray:
    """Exact packed masks of ``matrix[affected]`` vs all live rows.

    The delete-side delta sweep: after a removal, the affected rows'
    masks must be re-derived against the surviving set (masks carry no
    provenance, so bits the removed point contributed cannot simply be
    cleared).  The live rows are reordered so the affected block comes
    first, then one ordinary :class:`~repro.engine.packed.PackedSweep`
    — ``PairCoder`` comparison codes, presence-table dedup,
    closure-table fold — computes just that block's masks.  Every
    affected row compares against itself, so the sweep's group-cover
    invariant holds by construction.

    ``affected`` and ``rest`` must partition the live row indices.
    Returns ``(len(affected), words)`` rows aligned with ``affected``.
    """
    ordered = np.concatenate([affected, rest])
    sweep = PackedSweep(matrix[ordered], block=block, table=table)
    return sweep.range_masks(0, len(affected))


#: Build / rebuild the node prefilter only past this many live rows —
#: below it one vectorised exact pass beats maintaining a tree.
INDEX_MIN_ROWS = 512

#: Rebuild when the unindexed tail outgrows this fraction of the
#: indexed base (stale pivots stop pruning long before this).
TAIL_FRACTION = 0.25


class DeltaIndex:
    """Node-level affected-point prefilter over one set of live rows.

    Wraps a :class:`~repro.partitioning.static_tree.StaticTree` built
    over the maintainer's live rows at construction time.  The tree's
    stored pivots (medians, Q1/Q3) label an *external* mutation point
    exactly like a dataset row, so the batch node strict-mask
    arithmetic applies unchanged: bit ``b`` of a node's strict mask is
    set iff every point of the node is provably ``< point`` on
    dimension ``b`` (below the median while the point is not, or below
    the same-half reference quartile while the point is not).  A node
    with all ``d`` bits set contains no point the mutation point beats
    on any dimension — the whole node is skipped without loading a
    coordinate.

    Rows appended after construction go into :attr:`tail` and are
    always candidates; the owner rebuilds once the tail outgrows
    :data:`TAIL_FRACTION` of the base (see :meth:`stale`).
    """

    def __init__(self, matrix: np.ndarray, live_rows: np.ndarray) -> None:
        base = np.ascontiguousarray(matrix[live_rows])
        self.d = base.shape[1]
        self._tree = StaticTree(base, levels=2)
        # Leaf position -> maintainer row index (tree ids are positions
        # into ``live_rows``, already permuted into leaf order).
        self._row_at = np.asarray(live_rows, dtype=np.intp)[self._tree.ids]
        self._labels = self._tree.labels()
        self._weights = 1 << np.arange(self.d, dtype=np.int64)
        self._full = (1 << self.d) - 1
        self.base_size = len(base)
        self.tail: List[int] = []
        #: Pruning-effectiveness tallies (rows skipped before the exact
        #: pass / rows the index was asked about).
        self.rows_skipped = 0
        self.rows_seen = 0

    def add(self, row: int) -> None:
        """Register a row appended after this index was built."""
        self.tail.append(row)

    def stale(self) -> bool:
        """Whether the unindexed tail warrants a rebuild."""
        return len(self.tail) > max(64, int(TAIL_FRACTION * self.base_size))

    def _point_labels(self, point: np.ndarray) -> Tuple[int, int]:
        """``(med, quart)`` path masks of an external point.

        The same labelling `_path_labels` applies to dataset rows —
        below-median bits, then below-reference-quartile bits with Q1
        as the reference in the better half and Q3 in the worse half —
        evaluated against this tree's stored pivots.
        """
        below_med = point < self._tree.medians
        pm = int(below_med @ self._weights)
        quart_ref = np.where(below_med, self._tree.q1, self._tree.q3)
        below_quart = point < quart_ref
        pq = int(below_quart @ self._weights)
        return pm, pq

    def _gather(self, keep: np.ndarray) -> np.ndarray:
        """Surviving base rows (maintainer indices) plus the whole tail.

        The surviving nodes' ``[start, end)`` leaf ranges are expanded
        into one position array with the cumsum-of-steps trick — a
        per-node python loop of small slices costs more than the whole
        exact pass it feeds.
        """
        labels = self._labels
        starts = np.asarray(labels.node_start)[keep]
        ends = np.asarray(labels.node_end)[keep]
        lengths = ends - starts
        nonempty = lengths > 0
        starts, ends, lengths = (
            starts[nonempty], ends[nonempty], lengths[nonempty]
        )
        total = int(lengths.sum())
        if total:
            steps = np.ones(total, dtype=np.intp)
            steps[0] = starts[0]
            bounds = np.cumsum(lengths[:-1])
            steps[bounds] = starts[1:] - ends[:-1] + 1
            kept = self._row_at[np.cumsum(steps)]
        else:
            kept = np.empty(0, dtype=np.intp)
        self.rows_seen += self.base_size + len(self.tail)
        self.rows_skipped += self.base_size - len(kept)
        if self.tail:
            kept = np.concatenate(
                [kept, np.asarray(self.tail, dtype=np.intp)]
            )
        return kept

    def candidates(self, point: np.ndarray) -> np.ndarray:
        """Maintainer rows possibly strictly beaten by ``point`` somewhere.

        Sound, not exact: the survivors still need the vectorised
        ``(point < row).any`` check (and a liveness filter — deleted
        base rows stay in the leaf arrays until the next rebuild).
        """
        labels = self._labels
        pm, pq = self._point_labels(point)
        # block_node_strict with the external point as the target row:
        # bit b set iff every node point is provably < point on dim b.
        # All d bits set means no node point can be beaten by the point
        # anywhere, so its mask cannot change.
        t1 = labels.node_med & ~pm
        same_half = ~(labels.node_med ^ pm)
        strict = t1 | ((labels.node_quart & ~pq) & same_half)
        return self._gather(np.flatnonzero(strict != self._full))

    def dominator_candidates(self, point: np.ndarray) -> np.ndarray:
        """Maintainer rows possibly ``<= point`` on some dimension.

        The prune-mask mirror of :meth:`candidates`, for the insert
        path's own-mask fold: bit ``b`` of a node's prune mask is set
        iff every node point is provably strictly *worse* than the
        point on dim ``b``; all ``d`` bits set means no node point has
        any coordinate ``<=`` the point's, so the node contributes
        nothing to the new point's ``B_{p∉S}``.
        """
        labels = self._labels
        pm, pq = self._point_labels(point)
        t1 = pm & ~labels.node_med
        same_half = ~(labels.node_med ^ pm)
        prune = t1 | ((pq & ~labels.node_quart) & same_half)
        return self._gather(np.flatnonzero(prune != self._full))

    def stats(self) -> Tuple[int, int]:
        """``(rows_skipped, rows_seen)`` since construction."""
        return self.rows_skipped, self.rows_seen

    def __repr__(self) -> str:
        return (
            f"DeltaIndex(base={self.base_size}, tail={len(self.tail)}, "
            f"nodes={len(self._tree.nodes)})"
        )
