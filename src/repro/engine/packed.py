"""Packed-bitset point-bitmask engine (the array-at-a-time MDMC sweep).

The loop engine in :mod:`repro.engine.kernels` follows MDMC's structure
one point at a time: a vectorised comparison against all of ``S+``, a
Python ``set`` to deduplicate the ``(le, eq)`` mask pairs, and big-int
ORs over memoised down-closures.  Correct, but the O(n²) pair work runs
at interpreter speed.  This module removes the per-point loop entirely
by changing the data representation:

* **Word layout** — every subspace bitset (a ``2**d - 1`` bit integer
  elsewhere in the library) becomes a row of ``ceil((2**d - 1) / 64)``
  ``np.uint64`` words, bit ``δ - 1`` living at word ``(δ-1) // 64``,
  bit ``(δ-1) % 64``.  Rows OR/AND/invert elementwise, so a whole block
  of points folds in a handful of numpy calls.

* **Closure table** — the full down-closure map of the subspace
  lattice, the packed analogue of
  :class:`repro.core.closures.SubspaceClosures`, is one ``(2**d, words)``
  array built by a vectorised submask DP (see :func:`closure_table`)
  and cached per ``d``, reusable across runs.

* **Code packing + blocked dedup** — a block of ``b`` points against
  all ``n`` rows of ``S+`` yields ``b × n`` integer codes
  ``le + (eq << d)`` (:class:`repro.core.dominance.PairCoder`, which
  rank-encodes the rows once so the sweeps compare small uints).
  Prefixing the block-row index gives keys whose sorted unique set is
  exactly "the distinct pairs of each point"; one dedup per block (an
  ``np.unique`` sort, or an O(1)-per-key presence table when the key
  space is small) replaces ``b`` Python ``set`` constructions.

* **Grouped fold** — each unique pair contributes
  ``closure[le] & ~closure[eq]`` (Definition 1 over the whole lattice);
  ``np.bitwise_or.reduceat`` at the block-row boundaries folds the
  contributions into one packed ``B_{p∉S}`` row per point.  ``le = 0``
  pairs need no special-casing: row 0 of the table is all zeros.

Results are bit-identical to the loop engine and the instrumented MDMC
reference; :class:`repro.core.hashcube.HashCube.from_masks` consumes
the mask rows without ever widening them back into Python ints per
point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.dominance import PairCoder
from repro.instrument.counters import Counters

if TYPE_CHECKING:
    from repro.partitioning.static_tree import LeafLabels

__all__ = [
    "PACKED_MAX_D",
    "WORD_BITS",
    "words_for",
    "closure_table",
    "relevant_row",
    "unmaterialised_row",
    "row_to_int",
    "rows_to_ints",
    "row_from_int",
    "PackedSweep",
    "FilteredPackedSweep",
    "block_masks",
    "leaf_ordered",
    "packed_point_masks",
    "filtered_point_masks",
]

#: Bits per packed word.
WORD_BITS = 64

#: Largest dimensionality the packed engine materialises a closure
#: table for: ``(2**14, 256)`` uint64 is 32 MiB.  Beyond it the table
#: (and the O(n²) pair sweep itself) stops being sensible; callers fall
#: back to the lazy big-int loop engine.
PACKED_MAX_D = 14

#: Default rows per pair-sweep block.  Peak memory is a few
#: ``block × |S+|`` byte arrays plus the ``block × 4**d`` presence
#: table; 256 keeps the latter L2/L3-resident up to ``d = 9``, which
#: measures slightly faster than larger blocks.
DEFAULT_BLOCK = 256

#: Presence-table dedup is used instead of an ``np.unique`` sort while
#: the ``block * 4**d`` key space stays under this many booleans.
_PRESENCE_LIMIT = 1 << 26

_TABLE_CACHE: Dict[int, np.ndarray] = {}


def words_for(d: int) -> int:
    """Packed words per subspace bitset: ``ceil((2**d - 1) / 64)``."""
    if d < 1:
        raise ValueError(f"dimensionality must be positive, got {d}")
    return -(-((1 << d) - 1) // WORD_BITS)


def _shift_rows_left(rows: np.ndarray, shift: int) -> np.ndarray:
    """Every packed row shifted left by ``shift`` bit positions."""
    words = rows.shape[1]
    word_shift, bit_shift = divmod(shift, WORD_BITS)
    out = np.zeros_like(rows)
    if word_shift < words:
        out[:, word_shift:] = rows[:, : words - word_shift]
    if bit_shift:
        carry = out[:, :-1] >> np.uint64(WORD_BITS - bit_shift)
        out <<= np.uint64(bit_shift)
        out[:, 1:] |= carry
    return out


def closure_table(d: int) -> np.ndarray:
    """The full down-closure table: row ``m`` is ``closure(m)``, packed.

    Row ``m`` of the ``(2**d, words)`` result has bit ``δ - 1`` set for
    every non-empty ``δ ⊆ m`` — elementwise equal to
    :meth:`repro.core.closures.SubspaceClosures.closure` over all
    ``2**d`` masks at once.  Built by a submask DP grouped on the
    lowest set bit: with ``b = lowbit(m)`` and ``r = m ^ b``,

        ``closure(m) = closure(r) | (closure(r) << b) | bit(b - 1)``

    (submasks without ``b``, submasks with ``b`` — whose bitset
    positions shift by exactly ``b`` — and the singleton ``{b}``).
    Every mask in a group shares the same shift, so each group is a few
    whole-array ops; the table is built once per ``d`` and cached
    read-only.
    """
    if not 1 <= d <= PACKED_MAX_D:
        raise ValueError(
            f"d must be in [1, {PACKED_MAX_D}] for a packed closure "
            f"table, got {d}"
        )
    cached = _TABLE_CACHE.get(d)
    if cached is not None:
        return cached
    words = words_for(d)
    table = np.zeros((1 << d, words), dtype=np.uint64)
    # Descending j: the DP source ``m ^ (1 << j)`` has a *higher*
    # lowest bit, so its row is already final.
    for j in reversed(range(d)):
        bit = 1 << j
        group = np.arange(bit, 1 << d, 2 * bit)  # masks with lowbit 2**j
        source = table[group - bit]
        combined = source | _shift_rows_left(source, bit)
        word_index, bit_index = divmod(bit - 1, WORD_BITS)
        combined[:, word_index] |= np.uint64(1 << bit_index)
        table[group] = combined
    table.setflags(write=False)
    _TABLE_CACHE[d] = table
    return table


def _popcounts(d: int) -> np.ndarray:
    """``popcount(m)`` for every ``m < 2**d``, by doubling."""
    counts = np.zeros(1 << d, dtype=np.uint8)
    for j in range(d):
        counts[1 << j : 1 << (j + 1)] = counts[: 1 << j] + 1
    return counts


def relevant_row(d: int, max_level: Optional[int]) -> np.ndarray:
    """Packed row with bit ``δ - 1`` set iff ``popcount(δ) <= max_level``.

    The level filter shared by both skycube engines: the loop engine
    widens it to an int (:func:`row_to_int`), the packed engine ORs its
    complement straight into the mask rows.  ``max_level`` of ``None``
    (or ``>= d``) selects every subspace.
    """
    if not 1 <= d <= 24:
        raise ValueError(f"d must be in [1, 24] for a level row, got {d}")
    num_subspaces = (1 << d) - 1
    words = words_for(d)
    row = np.zeros(words, dtype=np.uint64)
    if max_level is None or max_level >= d:
        bits = np.arange(num_subspaces, dtype=np.int64)
    else:
        if max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {max_level}")
        # Index i of the popcount table below is subspace δ = i + 1, so
        # the selected indices are already bit positions.
        bits = np.flatnonzero(_popcounts(d)[1:] <= max_level)
    np.bitwise_or.at(
        row,
        bits >> 6,
        np.uint64(1) << (bits & 63).astype(np.uint64),
    )
    return row


def unmaterialised_row(d: int, max_level: Optional[int]) -> np.ndarray:
    """Complement of :func:`relevant_row` within the valid bit range.

    ORing it into a mask row marks every above-``max_level`` subspace
    dominated, which is how partial cubes compress the unmaterialised
    levels away (Appendix A.2); all zeros when nothing is restricted.
    """
    full = relevant_row(d, None)
    return full & ~relevant_row(d, max_level)


def row_to_int(row: np.ndarray) -> int:
    """Widen one packed row back into a Python subspace bitset."""
    return int.from_bytes(
        np.ascontiguousarray(row, dtype="<u8").tobytes(), "little"
    )


def rows_to_ints(rows: np.ndarray) -> "list[int]":
    """Widen packed rows into Python ints (diagnostics and tests)."""
    return [row_to_int(row) for row in rows]


def row_from_int(mask: int, d: int) -> np.ndarray:
    """Pack a Python subspace bitset into a ``(words,)`` uint64 row."""
    words = words_for(d)
    if not 0 <= mask < (1 << ((1 << d) - 1)):
        raise ValueError(f"mask {mask:#x} out of range for d={d}")
    raw = mask.to_bytes(words * (WORD_BITS // 8), "little")
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


class PackedSweep:
    """The blocked pair sweep over one ``S+`` row set.

    Binds a :class:`~repro.core.dominance.PairCoder` (rank-encoded
    comparisons), the closure table and the dedup scratch buffers, so a
    multi-block sweep — whether the whole of ``S+`` or one worker's
    slice of it — pays the setup cost once.  Per block:

    1. ``coder.codes`` — the ``(b, n)`` packed ``le + (eq << d)``
       comparison codes of the block versus every row;
    2. dedup to each block row's distinct codes: a presence-table
       scatter (``(b, 4**d)`` booleans, O(1) per key, reset by writing
       back only the found keys) while that table stays under
       :data:`_PRESENCE_LIMIT`, one ``np.unique`` sort otherwise;
    3. gather ``closure[le] & ~closure[eq]`` per distinct pair
       (Definition 1 over the whole lattice; ``le = 0`` rows are
       all-zero) and fold groups with one ``np.bitwise_or.reduceat``.

    ``rows`` must be the extended skyline ``S+``: each point compares
    against itself, so every block row owns at least one code group.
    """

    def __init__(
        self,
        rows: np.ndarray,
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
    ) -> None:
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D S+ array, got shape {rows.shape}"
            )
        self.n, self.d = rows.shape
        if not 1 <= self.d <= PACKED_MAX_D:
            raise ValueError(
                f"packed engine supports d in [1, {PACKED_MAX_D}], got {self.d}"
            )
        self.block = DEFAULT_BLOCK if block is None else block
        if self.block < 1:
            raise ValueError(f"block must be positive, got {self.block}")
        self.table = closure_table(self.d) if table is None else table
        self.coder = PairCoder(rows)
        self._present: Optional[np.ndarray] = None

    def _distinct(self, codes: np.ndarray, b: int) -> np.ndarray:
        """Sorted distinct ``(row << 2d) | code`` keys of one block."""
        shift = 2 * self.d
        if (b << shift) <= _PRESENCE_LIMIT:
            if self._present is None or len(self._present) < b:
                self._present = np.zeros((b, 1 << shift), dtype=bool)
            present = self._present[:b]
            present[np.arange(b)[:, None], codes] = True
            unique = np.flatnonzero(present)
            present.reshape(-1)[unique] = False
            return unique
        keys = (np.arange(b, dtype=np.int64)[:, None] << shift) | codes
        return np.unique(keys)

    def _fold(self, codes: np.ndarray, b: int) -> np.ndarray:
        """Dedup + closure-gather + grouped OR of one block's codes."""
        d = self.d
        unique = self._distinct(codes, b)
        shift = 2 * d
        row_of = unique >> shift
        code = unique & ((1 << shift) - 1)
        contributions = self.table[code & ((1 << d) - 1)] & ~self.table[code >> d]
        group_starts = np.flatnonzero(np.r_[True, row_of[1:] != row_of[:-1]])
        if len(group_starts) != b:
            raise AssertionError(
                "pair groups do not cover the block; rows must include "
                "the block itself (compute over S+, not a projection)"
            )
        return np.bitwise_or.reduceat(contributions, group_starts, axis=0)

    def masks(self, start: int, end: int) -> np.ndarray:
        """Packed ``B_{p∉S}`` rows of ``rows[start:end]`` vs all rows."""
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        b = end - start
        codes = self.coder.codes(start, end)
        return self._fold(codes, b)

    def range_masks(self, start: int, end: int) -> np.ndarray:
        """Block-by-block :meth:`masks` over ``[start, end)``."""
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid range [{start}, {end}) over {self.n} rows"
            )
        out = np.empty((end - start, words_for(self.d)), dtype=np.uint64)
        for lo in range(start, end, self.block):
            hi = min(end, lo + self.block)
            out[lo - start : hi - start] = self.masks(lo, hi)
        return out


class FilteredPackedSweep(PackedSweep):
    """The packed pair sweep with the static-tree filter phase fused in.

    The MDMC filter/refine split (Sections 4.3 and 5.2) applied to the
    array-at-a-time sweep.  ``rows`` must be the extended skyline in
    *leaf order* and ``labels`` the matching
    :class:`repro.partitioning.static_tree.LeafLabels`; per block the
    sweep then runs three phases, all of them whole-array ops:

    1. **filter** — batch node strict masks
       (:meth:`~repro.partitioning.static_tree.LeafLabels.block_node_strict`)
       dedup through a presence table and fold into packed rows ``F``:
       bit ``δ - 1`` of ``F[i]`` is set when the labels *alone* prove
       the block point dominated in ``δ`` (the paper's
       filter-sets-bits-without-touching-coordinates property — these
       bits never see a coordinate, only ``closure(t)`` gathers);
    2. **skip** — a node whose batch prune mask says it cannot beat a
       point anywhere outside ``closure(potential) ⊆ F`` is skipped.
       ``F`` is down-closed (a union of down-closures), so the
       containment test is one gathered word and one bit probe per
       ``(point, node)`` pair — O(1), no subspace enumeration.  Nodes
       skippable for *every* block point drop out of the candidate
       set, shrinking the pair work handed to the coder
       (:meth:`~repro.core.dominance.PairCoder.codes_at`);
    3. **refine** — the ordinary dedup + closure fold over the
       surviving candidate columns, ORed with ``F``.

    Every filter bit is provably a subset of the exact pair
    contribution it stands in for (a node strict mask ``t`` means some
    ``q`` has ``lt ⊇ t`` and ``eq ∩ t = ∅``), and every skipped node's
    contribution is contained in ``closure(potential) ⊆ F`` — so the
    result is bit-identical to :class:`PackedSweep` by construction,
    not by luck.  Filtering self-disables where it cannot pay: when the
    node directory is nearly one-node-per-point (anticorrelated data),
    and dynamically when the observed prune rate stays negligible.

    ``counters`` (optional) accumulates the pruning-effectiveness trio
    ``pairs_pruned`` / ``leaves_skipped`` / ``label_bytes``.
    """

    #: Node filtering only runs while ``nodes <= n * MAX_NODE_FRACTION``
    #: — beyond that the directory carries almost no aggregate evidence
    #: and the (block × nodes) label pass would outweigh its pruning.
    MAX_NODE_FRACTION = 0.25

    #: Dynamic shut-off: after ``8 × block`` points, stop filtering if
    #: fewer than this fraction of pair comparisons has been pruned.
    MIN_PRUNE_RATE = 0.05

    #: Column-subset coding only pays while the surviving candidate set
    #: is meaningfully smaller than all rows: the subset coder sweeps
    #: ``==`` densely (it cannot reuse the CSR equal-run index), which
    #: roughly doubles the per-column cost of the plain ``le``-only
    #: dense sweep — break-even at half the rows.
    MAX_SUBSET_FRACTION = 0.5

    def __init__(
        self,
        rows: np.ndarray,
        labels: "LeafLabels",
        block: Optional[int] = None,
        table: Optional[np.ndarray] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        super().__init__(rows, block=block, table=table)
        if len(labels) != self.n:
            raise ValueError(
                f"labels cover {len(labels)} points but rows have {self.n}"
            )
        if labels.k != self.d:
            raise ValueError(
                f"labels are {labels.k}-dimensional but rows have d={self.d}"
            )
        self.labels = labels
        self.counters = counters if counters is not None else Counters()
        self.filter_active = (
            labels.node_count <= max(1.0, self.MAX_NODE_FRACTION * self.n)
        )
        self._swept = 0
        self._pairs_seen = 0
        self._pairs_pruned = 0
        self._label_present: Optional[np.ndarray] = None

    def filter_rows(self, start: int, end: int) -> np.ndarray:
        """Packed filter-phase rows ``F`` of block ``[start, end)``.

        Label evidence only: bit ``δ - 1`` of row ``i`` is set iff some
        node's aggregate strict mask ``t`` has ``δ ⊆ t``.  Always a
        subset of the final :meth:`masks` bits (the property the test
        suite asserts), independent of :attr:`filter_active`.
        """
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        b = end - start
        d = self.d
        strict = self.labels.block_node_strict(start, end)
        self.counters.label_bytes += strict.nbytes
        if (b << d) <= _PRESENCE_LIMIT:
            if self._label_present is None or len(self._label_present) < b:
                self._label_present = np.zeros((b, 1 << d), dtype=bool)
            present = self._label_present[:b]
            present[np.arange(b)[:, None], strict] = True
            unique = np.flatnonzero(present)
            present.reshape(-1)[unique] = False
        else:
            keys = (np.arange(b, dtype=np.int64)[:, None] << d) | strict
            unique = np.unique(keys)
        row_of = unique >> d
        contributions = self.table[unique & ((1 << d) - 1)]
        group_starts = np.flatnonzero(np.r_[True, row_of[1:] != row_of[:-1]])
        # Every row owns at least one key (t = 0 folds the all-zero
        # closure row), so the groups always cover the block.
        return np.bitwise_or.reduceat(contributions, group_starts, axis=0)

    def masks(self, start: int, end: int) -> np.ndarray:
        """Filtered packed ``B_{p∉S}`` rows — bit-identical to the base."""
        if not self.filter_active:
            return super().masks(start, end)
        if not 0 <= start < end <= self.n:
            raise ValueError(
                f"invalid block [{start}, {end}) over {self.n} rows"
            )
        b = end - start
        d = self.d
        labels = self.labels
        full_local = (1 << d) - 1

        filtered = self.filter_rows(start, end)
        prune = labels.block_node_prune(start, end)
        self.counters.label_bytes += prune.nbytes

        # A node can only contribute bits inside closure(potential)
        # (its prune dims can never appear in a dominating subspace).
        # F is down-closed, so closure(potential) ⊆ F reduces to one
        # bit probe at position potential - 1 — O(1) per (point, node).
        potential = prune ^ full_local
        index = np.maximum(potential, 1) - 1
        word = (index >> 6).astype(np.intp)
        gathered = np.take_along_axis(filtered, word, axis=1)
        covered = (gathered >> (index & 63).astype(np.uint64)) & np.uint64(1)
        skippable = covered.astype(bool)
        skippable |= potential == 0
        node_skip = skippable.all(axis=0)

        sizes = labels.node_end - labels.node_start
        leaves_skipped = int(sizes[node_skip].sum())
        self._pairs_seen += b * self.n

        if self.n - leaves_skipped > self.MAX_SUBSET_FRACTION * self.n:
            # Too few leaves skipped to beat the plain coder's sparse
            # paths: fall back, and credit *nothing* to the pruning
            # tallies — the skip analysis avoided no work this block,
            # and under-crediting is what lets the dynamic gate turn a
            # filter off when it keeps analysing without ever paying.
            codes = self.coder.codes(start, end)
        else:
            surviving = np.flatnonzero(~node_skip)
            starts = labels.node_start[surviving]
            lengths = sizes[surviving]
            total = int(lengths.sum())
            stops = np.cumsum(lengths)
            cols = (
                np.arange(total)
                - np.repeat(stops - lengths, lengths)
                + np.repeat(starts, lengths)
            )
            codes = self.coder.codes_at(start, end, cols)
            self.counters.leaves_skipped += leaves_skipped
            self.counters.pairs_pruned += b * leaves_skipped
            self._pairs_pruned += b * leaves_skipped
        out = self._fold(codes, b)
        out |= filtered

        self._swept += b
        if (
            self._swept >= 8 * self.block
            and self._pairs_pruned < self.MIN_PRUNE_RATE * self._pairs_seen
        ):
            self.filter_active = False
        return out


def leaf_ordered(rows: np.ndarray) -> "tuple[np.ndarray, LeafLabels]":
    """``(leaf-ordered rows, labels)`` — the filtered sweeps' layout.

    The shared seam between the numpy filtered sweep below and the
    accelerated backends (:mod:`repro.engine.jit`): every filtered
    engine sweeps the same leaf-ordered rows against the same label
    directory, so their mask rows scatter back through the same
    ``labels.order`` permutation.
    """
    from repro.partitioning.static_tree import LeafLabels

    rows = np.asarray(rows)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValueError(
            f"expected a non-empty 2-D S+ array, got shape {rows.shape}"
        )
    labels = LeafLabels.build(rows)
    return np.ascontiguousarray(rows[labels.order]), labels


def filtered_point_masks(
    rows: np.ndarray,
    block: Optional[int] = None,
    table: Optional[np.ndarray] = None,
    counters: Optional[Counters] = None,
) -> np.ndarray:
    """Packed ``B_{p∉S}`` of every row of ``rows`` via the label filter.

    The filtered counterpart of :func:`packed_point_masks`: builds the
    leaf-ordered label arrays, sweeps in leaf order (sequential label
    traffic, exactly the Section 4.3 layout) and scatters the mask rows
    back into the input row order.  Bit-identical to
    :func:`packed_point_masks`; ``counters`` receives the pruning-
    effectiveness tallies.
    """
    ordered, labels = leaf_ordered(rows)
    sweep = FilteredPackedSweep(
        ordered, labels, block=block, table=table, counters=counters
    )
    leaf_masks = sweep.range_masks(0, sweep.n)
    out = np.empty_like(leaf_masks)
    out[labels.order] = leaf_masks
    return out


def block_masks(
    rows: np.ndarray,
    start: int,
    end: int,
    table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One-shot :meth:`PackedSweep.masks` (tests and small sweeps).

    Builds a fresh sweep per call; loops over many blocks of the same
    rows should construct one :class:`PackedSweep` instead.
    """
    return PackedSweep(rows, block=max(end - start, 1), table=table).masks(
        start, end
    )


def packed_point_masks(
    rows: np.ndarray,
    block: Optional[int] = None,
    table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Packed ``B_{p∉S}`` of every row of ``rows`` (the ``S+`` subset).

    The drop-in packed replacement for the loop engine's per-point
    sweep: returns an ``(n, words)`` uint64 array in row order, ready
    for :meth:`repro.core.hashcube.HashCube.from_masks`.  ``block``
    bounds peak memory (default :data:`DEFAULT_BLOCK` rows per sweep).
    """
    sweep = PackedSweep(rows, block=block, table=table)
    return sweep.range_masks(0, sweep.n)
