"""Vectorized skyline/skycube kernels.

The instrumented algorithms in :mod:`repro.skyline` and
:mod:`repro.templates` are deliberately structured like the paper's
code so their operation counts drive the hardware simulation.  This
module is the opposite trade-off: pure-numpy kernels (the Python
analogue of the paper's AVX2 lanes) with no instrumentation, usable at
tens of thousands of points.  Examples and property tests lean on it;
results are bit-identical to the reference implementations.

Two skycube engines share the MDMC structure (restrict to ``S+``,
fold each point's distinct comparison-mask pairs over the lattice):

* ``engine="packed"`` (default) — the array-at-a-time sweep of
  :mod:`repro.engine.packed`: uint64 closure-table rows, blocked pair
  dedup, grouped OR folds; no per-point Python loop, no big ints.
* ``engine="loop"`` — the original per-point sweep over big-int
  closures; slower, but unbounded by the packed table's ``d`` cap.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.bitmask import dims_of, full_space
from repro.core.closures import SubspaceClosures
from repro.core.dominance import (
    dominance_masks_vs_all,
    dominance_matrix,
    dominated_mask,
    rank_columns,
)
from repro.core.hashcube import HashCube
from repro.core.skycube import Skycube
from repro.engine import packed

__all__ = [
    "fast_skyline",
    "fast_extended_skyline",
    "fast_skycube",
    "SKYCUBE_ENGINES",
]

#: Default rows compared per vectorized block (bounds peak memory to
#: ``block × |candidates|`` booleans).  Overridable per call via the
#: ``block`` keyword or globally via ``REPRO_KERNEL_BLOCK`` for bench
#: tuning.
BLOCK = 512

#: Environment override consulted when no ``block`` keyword is given.
BLOCK_ENV = "REPRO_KERNEL_BLOCK"

#: The point-bitmask engines :func:`fast_skycube` accepts.
SKYCUBE_ENGINES = ("packed", "loop")


def _block_size(block: Optional[int], default: int = BLOCK) -> int:
    """Resolve a block size: keyword > environment > ``default``.

    The packed sweep's default
    (:data:`repro.engine.packed.DEFAULT_BLOCK`) differs from the
    filter's :data:`BLOCK`; both honour the same keyword/env override.
    """
    if block is None:
        env = os.environ.get(BLOCK_ENV, "").strip()
        if env:
            try:
                block = int(env)
            except ValueError:
                raise ValueError(
                    f"{BLOCK_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            return default
    if block < 1:
        raise ValueError(f"block size must be positive, got {block}")
    return block


def _validated(
    data: np.ndarray, delta: Optional[int]
) -> Tuple[np.ndarray, int]:
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError(f"expected a non-empty 2-D dataset, got shape {data.shape}")
    d = data.shape[1]
    delta = full_space(d) if delta is None else delta
    if not 0 < delta <= full_space(d):
        raise ValueError(f"invalid subspace {delta} for d={d}")
    return data, delta


def _sorted_filter(
    rows: np.ndarray, strict: bool, block: Optional[int] = None
) -> np.ndarray:
    """SFS-style kept mask over monotone-sorted rows.

    ``strict`` selects extended-skyline semantics (drop only strictly
    dominated points).  Returns a boolean keep-mask in *sorted* order.

    Within a block, a row survives iff no *earlier* row of the sorted
    order dominates it.  That is the same set the sequential
    survivor-only sweep keeps: dominance is transitive and strictly
    decreases the monotone sort key, so any eliminated dominator is
    itself dominated by an earlier survivor.  One pairwise dominance
    matrix masked to the strict lower triangle therefore replaces the
    old O(block²) per-row Python loop.
    """
    n = len(rows)
    block = _block_size(block)
    keep = np.ones(n, dtype=bool)
    kept_rows = np.empty_like(rows)
    kept_count = 0
    for start in range(0, n, block):
        end = min(n, start + block)
        chunk = rows[start:end]
        alive = np.ones(end - start, dtype=bool)
        if kept_count:
            # window[j] eliminates chunk[i] if it dominates it.
            alive = ~dominated_mask(chunk, kept_rows[:kept_count], strict)
        within = dominance_matrix(chunk, chunk, strict)
        within &= np.tri(len(chunk), k=-1, dtype=bool)
        alive &= ~within.any(axis=1)
        keep[start:end] = alive
        newly = chunk[alive]
        kept_rows[kept_count:kept_count + len(newly)] = newly
        kept_count += len(newly)
    return keep


def _monotone_order(rows: np.ndarray) -> np.ndarray:
    return np.argsort(rows.sum(axis=1), kind="stable")


def _filtered_ids(
    data: np.ndarray, delta: int, strict: bool, block: Optional[int]
) -> np.ndarray:
    """Shared skyline/extended-skyline pipeline: project, rank, filter.

    Rank-encoding (:func:`repro.core.dominance.rank_columns`) preserves
    every per-column comparison while the filter streams 2-byte lanes;
    rank sums are as valid a monotone sort key as value sums (dominance
    still strictly decreases it).
    """
    dims = dims_of(delta)
    ranks = rank_columns(data[:, dims])
    order = _monotone_order(ranks)
    keep_sorted = _sorted_filter(ranks[order], strict=strict, block=block)
    return np.sort(order[keep_sorted])


def fast_skyline(
    data: np.ndarray,
    delta: Optional[int] = None,
    block: Optional[int] = None,
) -> np.ndarray:
    """Sorted ids of ``S_δ(data)``; vectorized, uninstrumented."""
    data, delta = _validated(data, delta)
    return _filtered_ids(data, delta, strict=False, block=block)


def fast_extended_skyline(
    data: np.ndarray,
    delta: Optional[int] = None,
    block: Optional[int] = None,
) -> np.ndarray:
    """Sorted ids of ``S+_δ(data)``; vectorized, uninstrumented."""
    data, delta = _validated(data, delta)
    return _filtered_ids(data, delta, strict=True, block=block)


def _loop_cube(
    rows: np.ndarray,
    splus: np.ndarray,
    d: int,
    max_level: Optional[int],
    word_width: int,
    bit_order: str,
) -> HashCube:
    """The original per-point big-int sweep (``engine="loop"``)."""
    closures = SubspaceClosures(d)
    unmaterialised = 0
    if max_level is not None and max_level < d:
        unmaterialised = packed.row_to_int(
            packed.unmaterialised_row(d, max_level)
        )
    cube = HashCube(d, word_width, bit_order)
    # Cache of (le, eq) -> dominated-subspace bitset, shared across
    # points: there are at most 3**d distinct pairs in total.
    pair_bits: Dict[tuple, int] = {}
    for j, pid in enumerate(splus):
        le, _, eq = dominance_masks_vs_all(rows, rows[j])
        not_in_s = 0
        for pair in set(zip(le.tolist(), eq.tolist())):
            if pair[0] == 0:
                continue
            bits = pair_bits.get(pair)
            if bits is None:
                bits = closures.dominated_update(pair[0], pair[1])
                pair_bits[pair] = bits
            not_in_s |= bits
        cube.insert(int(pid), not_in_s | unmaterialised)
    return cube


def fast_skycube(
    data: np.ndarray,
    max_level: Optional[int] = None,
    word_width: int = HashCube.DEFAULT_WORD_WIDTH,
    bit_order: str = "numeric",
    engine: str = "packed",
    block: Optional[int] = None,
) -> Skycube:
    """The exact skycube via the point-bitmask paradigm, vectorized.

    Follows MDMC's structure — restrict to ``S+(P)``, compute each
    point's ``B_{p∉S}`` from its distinct comparison-mask pairs, expand
    over the subspace lattice with memoised closures — but with the
    per-point comparisons fully vectorized and no filtering tree.

    ``engine`` picks the sweep: ``"packed"`` (default) runs the
    :mod:`repro.engine.packed` uint64 path and bulk-loads the HashCube
    through :meth:`~repro.core.hashcube.HashCube.from_masks`;
    ``"loop"`` keeps the per-point big-int sweep (required beyond
    ``d = 14``, where no packed closure table is materialised).  Both
    engines produce bit-identical cubes for either ``bit_order``.
    """
    data, _ = _validated(data, None)
    d = data.shape[1]
    if max_level is not None and not 1 <= max_level <= d:
        raise ValueError(f"max_level must be in [1, {d}], got {max_level}")
    if engine not in SKYCUBE_ENGINES:
        raise ValueError(
            f"engine must be one of {SKYCUBE_ENGINES}, got {engine!r}"
        )
    if engine == "packed" and d > packed.PACKED_MAX_D:
        raise ValueError(
            f"engine='packed' supports d <= {packed.PACKED_MAX_D}, got "
            f"d={d}; use engine='loop'"
        )
    splus = fast_extended_skyline(data, block=block)
    rows = np.ascontiguousarray(data[splus])
    if engine == "packed":
        mask_rows = packed.packed_point_masks(
            rows, block=_block_size(block, packed.DEFAULT_BLOCK)
        )
        if max_level is not None and max_level < d:
            mask_rows |= packed.unmaterialised_row(d, max_level)
        cube = HashCube.from_masks(
            d, splus, mask_rows, word_width=word_width, bit_order=bit_order
        )
    else:
        cube = _loop_cube(rows, splus, d, max_level, word_width, bit_order)
    return Skycube(cube, data=data, max_level=max_level)
