"""Vectorized skyline/skycube kernels.

The instrumented algorithms in :mod:`repro.skyline` and
:mod:`repro.templates` are deliberately structured like the paper's
code so their operation counts drive the hardware simulation.  This
module is the opposite trade-off: pure-numpy kernels (the Python
analogue of the paper's AVX2 lanes) with no instrumentation, usable at
tens of thousands of points.  Examples and property tests lean on it;
results are bit-identical to the reference implementations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.bitmask import dims_of, full_space
from repro.core.closures import SubspaceClosures
from repro.core.dominance import dominance_masks_vs_all, dominated_mask
from repro.core.hashcube import HashCube
from repro.core.skycube import Skycube

__all__ = ["fast_skyline", "fast_extended_skyline", "fast_skycube"]

#: Rows compared per vectorized block (bounds peak memory to
#: ``block × |candidates|`` booleans).
BLOCK = 512


def _validated(
    data: np.ndarray, delta: Optional[int]
) -> Tuple[np.ndarray, int]:
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError(f"expected a non-empty 2-D dataset, got shape {data.shape}")
    d = data.shape[1]
    delta = full_space(d) if delta is None else delta
    if not 0 < delta <= full_space(d):
        raise ValueError(f"invalid subspace {delta} for d={d}")
    return data, delta


def _sorted_filter(rows: np.ndarray, strict: bool) -> np.ndarray:
    """SFS-style kept mask over monotone-sorted rows.

    ``strict`` selects extended-skyline semantics (drop only strictly
    dominated points).  Returns a boolean keep-mask in *sorted* order.
    """
    n = len(rows)
    keep = np.ones(n, dtype=bool)
    kept_rows = np.empty_like(rows)
    kept_count = 0
    for start in range(0, n, BLOCK):
        end = min(n, start + BLOCK)
        block = rows[start:end]
        alive = np.ones(end - start, dtype=bool)
        if kept_count:
            # window[j] eliminates block[i] if it dominates it.
            alive = ~dominated_mask(block, kept_rows[:kept_count], strict)
        # Within-block elimination must respect sorted order: compare
        # each survivor only against earlier survivors of the block.
        for i in np.flatnonzero(alive):
            earlier = np.flatnonzero(alive[:i])
            if earlier.size:
                hit = bool(
                    dominated_mask(block[i : i + 1], block[earlier], strict)[0]
                )
                if hit:
                    alive[i] = False
        keep[start:end] = alive
        newly = block[alive]
        kept_rows[kept_count:kept_count + len(newly)] = newly
        kept_count += len(newly)
    return keep


def _monotone_order(rows: np.ndarray) -> np.ndarray:
    return np.argsort(rows.sum(axis=1), kind="stable")


def fast_skyline(data: np.ndarray, delta: Optional[int] = None) -> np.ndarray:
    """Sorted ids of ``S_δ(data)``; vectorized, uninstrumented."""
    data, delta = _validated(data, delta)
    dims = dims_of(delta)
    rows = data[:, dims]
    order = _monotone_order(rows)
    keep_sorted = _sorted_filter(rows[order], strict=False)
    return np.sort(order[keep_sorted])


def fast_extended_skyline(
    data: np.ndarray, delta: Optional[int] = None
) -> np.ndarray:
    """Sorted ids of ``S+_δ(data)``; vectorized, uninstrumented."""
    data, delta = _validated(data, delta)
    dims = dims_of(delta)
    rows = data[:, dims]
    order = _monotone_order(rows)
    keep_sorted = _sorted_filter(rows[order], strict=True)
    return np.sort(order[keep_sorted])


def fast_skycube(
    data: np.ndarray,
    max_level: Optional[int] = None,
    word_width: int = HashCube.DEFAULT_WORD_WIDTH,
) -> Skycube:
    """The exact skycube via the point-bitmask paradigm, vectorized.

    Follows MDMC's structure — restrict to ``S+(P)``, compute each
    point's ``B_{p∉S}`` from its distinct comparison-mask pairs, expand
    over the subspace lattice with memoised closures — but with the
    per-point comparisons fully vectorized and no filtering tree.
    """
    data, _ = _validated(data, None)
    d = data.shape[1]
    if max_level is not None and not 1 <= max_level <= d:
        raise ValueError(f"max_level must be in [1, {d}], got {max_level}")
    splus = fast_extended_skyline(data)
    rows = data[splus]
    closures = SubspaceClosures(d)
    all_bits = (1 << full_space(d)) - 1

    relevant = all_bits
    if max_level is not None and max_level < d:
        relevant = 0
        for delta in range(1, full_space(d) + 1):
            if bin(delta).count("1") <= max_level:
                relevant |= 1 << (delta - 1)

    cube = HashCube(d, word_width)
    # Cache of (le, eq) -> dominated-subspace bitset, shared across
    # points: there are at most 3**d distinct pairs in total.
    pair_bits: Dict[tuple, int] = {}
    for j, pid in enumerate(splus):
        le, _, eq = dominance_masks_vs_all(rows, rows[j])
        not_in_s = 0
        for pair in set(zip(le.tolist(), eq.tolist())):
            if pair[0] == 0:
                continue
            bits = pair_bits.get(pair)
            if bits is None:
                bits = closures.dominated_update(pair[0], pair[1])
                pair_bits[pair] = bits
            not_in_s |= bits
        if max_level is not None:
            not_in_s |= all_bits & ~relevant
        cube.insert(int(pid), not_in_s)
    return Skycube(cube, data=data, max_level=max_level)
