"""Vectorized skyline/skycube kernels.

The instrumented algorithms in :mod:`repro.skyline` and
:mod:`repro.templates` are deliberately structured like the paper's
code so their operation counts drive the hardware simulation.  This
module is the opposite trade-off: pure-numpy kernels (the Python
analogue of the paper's AVX2 lanes) with no instrumentation, usable at
tens of thousands of points.  Examples and property tests lean on it;
results are bit-identical to the reference implementations.

Three skycube engines share the MDMC structure (restrict to ``S+``,
fold each point's distinct comparison-mask pairs over the lattice):

* ``engine="packed"`` (default) — the array-at-a-time sweep of
  :mod:`repro.engine.packed`: uint64 closure-table rows, blocked pair
  dedup, grouped OR folds; no per-point Python loop, no big ints.
* ``engine="packed-filtered"`` — the packed sweep with the paper's
  static-tree filter phase fused in (Sections 4.3/5.2): an octant-path
  label prefilter shrinks the exact ``S+`` computation, and the sweep
  itself skips leaves / sets subspace bits from leaf-ordered label
  arrays before touching coordinates.  Bit-identical to ``"packed"``.
* ``engine="loop"`` — the original per-point sweep over big-int
  closures; slower, but unbounded by the packed table's ``d`` cap.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.bitmask import dims_of, full_space
from repro.core.closures import SubspaceClosures
from repro.core.dominance import (
    dominance_masks_vs_all,
    dominance_matrix,
    dominated_mask,
    rank_columns,
)
from repro.core.hashcube import HashCube
from repro.core.skycube import Skycube
from repro.engine import packed
from repro.instrument.counters import Counters
from repro.partitioning.static_tree import octant_matrix

__all__ = [
    "fast_skyline",
    "fast_extended_skyline",
    "fast_skycube",
    "label_prefilter",
    "splus_ids_for_engine",
    "SKYCUBE_ENGINES",
    "ENGINE_HELP",
]

#: Default rows compared per vectorized block (bounds peak memory to
#: ``block × |candidates|`` booleans).  Overridable per call via the
#: ``block`` keyword or globally via ``REPRO_KERNEL_BLOCK`` for bench
#: tuning.
BLOCK = 512

#: Environment override consulted when no ``block`` keyword is given.
BLOCK_ENV = "REPRO_KERNEL_BLOCK"

#: The point-bitmask engines :func:`fast_skycube` accepts.  This tuple
#: is the single source of truth for every ``--engine`` CLI knob.
SKYCUBE_ENGINES = ("packed", "packed-filtered", "loop")

#: Shared ``--engine`` help text for the CLI entry points.
ENGINE_HELP = (
    "point-bitmask sweep: 'packed' (uint64 array-at-a-time, default), "
    "'packed-filtered' (packed plus the static-tree label filter; "
    "bit-identical, fastest on clustered/correlated data), or 'loop' "
    "(per-point big-int reference, required beyond d = 14)"
)

#: The octant-path prefilter only runs when paths collapse: above this
#: fraction of distinct paths per point the path-level SFS approaches
#: the full point-level filter and would cost more than it saves.
PREFILTER_MAX_PATHS = 0.25

#: Below this many rows the prefilter's quantile scan is not worth the
#: setup; the plain ``S+`` filter is already sub-millisecond.
PREFILTER_MIN_ROWS = 512


def _env_block() -> Optional[int]:
    """The validated :data:`BLOCK_ENV` override, or ``None`` if unset.

    Validation happens here, once, naming the variable — a bad value
    must fail the call immediately rather than crash (or silently
    misbehave) deep inside a sweep.
    """
    env = os.environ.get(BLOCK_ENV, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{BLOCK_ENV} must be an integer number of rows, got {env!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{BLOCK_ENV} must be a positive number of rows, got {env!r}"
        )
    return value


def _block_size(block: Optional[int], default: int = BLOCK) -> int:
    """Resolve a block size: keyword > environment > ``default``.

    ``default`` varies by caller — the filter kernels use
    :data:`BLOCK`, the packed sweeps ask the selected kernel backend
    for its :meth:`~repro.engine.jit.KernelBackend.preferred_block` —
    and all of them honour the same keyword/env override.
    """
    if block is None:
        block = _env_block()
        if block is None:
            return default
    if block < 1:
        raise ValueError(f"block size must be positive, got {block}")
    return block


def _validated(
    data: np.ndarray, delta: Optional[int]
) -> Tuple[np.ndarray, int]:
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError(f"expected a non-empty 2-D dataset, got shape {data.shape}")
    d = data.shape[1]
    delta = full_space(d) if delta is None else delta
    if not 0 < delta <= full_space(d):
        raise ValueError(f"invalid subspace {delta} for d={d}")
    return data, delta


def _sorted_filter(
    rows: np.ndarray, strict: bool, block: Optional[int] = None
) -> np.ndarray:
    """SFS-style kept mask over monotone-sorted rows.

    ``strict`` selects extended-skyline semantics (drop only strictly
    dominated points).  Returns a boolean keep-mask in *sorted* order.

    Within a block, a row survives iff no *earlier* row of the sorted
    order dominates it.  That is the same set the sequential
    survivor-only sweep keeps: dominance is transitive and strictly
    decreases the monotone sort key, so any eliminated dominator is
    itself dominated by an earlier survivor.  One pairwise dominance
    matrix masked to the strict lower triangle therefore replaces the
    old O(block²) per-row Python loop.
    """
    n = len(rows)
    block = _block_size(block)
    keep = np.ones(n, dtype=bool)
    kept_rows = np.empty_like(rows)
    kept_count = 0
    for start in range(0, n, block):
        end = min(n, start + block)
        chunk = rows[start:end]
        alive = np.ones(end - start, dtype=bool)
        if kept_count:
            # window[j] eliminates chunk[i] if it dominates it.
            alive = ~dominated_mask(chunk, kept_rows[:kept_count], strict)
        within = dominance_matrix(chunk, chunk, strict)
        within &= np.tri(len(chunk), k=-1, dtype=bool)
        alive &= ~within.any(axis=1)
        keep[start:end] = alive
        newly = chunk[alive]
        kept_rows[kept_count:kept_count + len(newly)] = newly
        kept_count += len(newly)
    return keep


def _monotone_order(rows: np.ndarray) -> np.ndarray:
    return np.argsort(rows.sum(axis=1), kind="stable")


def _filtered_ids(
    data: np.ndarray, delta: int, strict: bool, block: Optional[int]
) -> np.ndarray:
    """Shared skyline/extended-skyline pipeline: project, rank, filter.

    Rank-encoding (:func:`repro.core.dominance.rank_columns`) preserves
    every per-column comparison while the filter streams 2-byte lanes;
    rank sums are as valid a monotone sort key as value sums (dominance
    still strictly decreases it).
    """
    dims = dims_of(delta)
    ranks = rank_columns(data[:, dims])
    order = _monotone_order(ranks)
    keep_sorted = _sorted_filter(ranks[order], strict=strict, block=block)
    return np.sort(order[keep_sorted])


def fast_skyline(
    data: np.ndarray,
    delta: Optional[int] = None,
    block: Optional[int] = None,
) -> np.ndarray:
    """Sorted ids of ``S_δ(data)``; vectorized, uninstrumented."""
    data, delta = _validated(data, delta)
    return _filtered_ids(data, delta, strict=False, block=block)


def fast_extended_skyline(
    data: np.ndarray,
    delta: Optional[int] = None,
    block: Optional[int] = None,
) -> np.ndarray:
    """Sorted ids of ``S+_δ(data)``; vectorized, uninstrumented."""
    data, delta = _validated(data, delta)
    return _filtered_ids(data, delta, strict=True, block=block)


def label_prefilter(
    data: np.ndarray,
    block: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> Optional[np.ndarray]:
    """Boolean candidate mask covering ``S+(data)``, or ``None`` if gated.

    Octant-path dominance: each point's per-dimension octant index
    (:func:`repro.partitioning.static_tree.octant_matrix`) packs into a
    single int64 path key, 3 bits per dimension.  If an occupied path is
    strictly below another occupied path on *every* dimension, each of
    its points strictly dominates each point on the other path — octant
    index ``o(v)`` counts pivots ``<= v``, so ``o(u) < o(v)`` on a
    dimension forces ``u < v`` there.  Running the extended-skyline
    filter over *paths* therefore yields an exact superset of ``S+``
    while comparing at most ``#paths`` rows instead of ``n``.

    The pass is profitable only when paths collapse (clustered,
    correlated, or duplicate-heavy data); with near-distinct paths it
    degenerates into a second full filter.  Returns ``None`` without
    filtering when ``n`` is small, the 3-bit packing would overflow the
    key, or distinct paths exceed :data:`PREFILTER_MAX_PATHS` of ``n``.
    """
    n, d = data.shape
    if n < PREFILTER_MIN_ROWS or 3 * d > 62:
        return None
    index = octant_matrix(data)
    weights = np.int64(1) << (3 * np.arange(d, dtype=np.int64))
    keys = index.astype(np.int64) @ weights
    paths, inverse = np.unique(keys, return_inverse=True)
    if counters is not None:
        counters.label_bytes += index.nbytes + keys.nbytes
    if len(paths) > PREFILTER_MAX_PATHS * n:
        return None
    decoded = (paths[:, None] >> (3 * np.arange(d, dtype=np.int64))) & 7
    order = _monotone_order(decoded)
    keep_sorted = _sorted_filter(decoded[order], strict=True, block=block)
    alive = np.empty(len(paths), dtype=bool)
    alive[order] = keep_sorted
    mask = alive[inverse.reshape(-1)]
    if counters is not None:
        dropped = int(n - np.count_nonzero(mask))
        counters.extra["prefilter_dropped"] = (
            counters.extra.get("prefilter_dropped", 0) + dropped
        )
    return mask


def splus_ids_for_engine(
    data: np.ndarray,
    engine: str,
    block: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> np.ndarray:
    """Sorted ``S+(data)`` ids, prefiltered for the filtered engine.

    ``engine="packed-filtered"`` first runs :func:`label_prefilter` and
    computes the exact extended skyline over the surviving candidates
    only; every other engine (and a gated-off prefilter) falls back to
    the plain :func:`fast_extended_skyline`.  The result is identical
    either way — the prefilter drops only strictly dominated points.
    """
    if engine == "packed-filtered":
        candidates = label_prefilter(data, block=block, counters=counters)
        if candidates is not None:
            ids = np.flatnonzero(candidates)
            keep = fast_extended_skyline(data[ids], block=block)
            return ids[keep]
    return fast_extended_skyline(data, block=block)


def _loop_cube(
    rows: np.ndarray,
    splus: np.ndarray,
    d: int,
    max_level: Optional[int],
    word_width: int,
    bit_order: str,
) -> HashCube:
    """The original per-point big-int sweep (``engine="loop"``)."""
    closures = SubspaceClosures(d)
    unmaterialised = 0
    if max_level is not None and max_level < d:
        unmaterialised = packed.row_to_int(
            packed.unmaterialised_row(d, max_level)
        )
    cube = HashCube(d, word_width, bit_order)
    # Cache of (le, eq) -> dominated-subspace bitset, shared across
    # points: there are at most 3**d distinct pairs in total.
    pair_bits: Dict[tuple, int] = {}
    for j, pid in enumerate(splus):
        le, _, eq = dominance_masks_vs_all(rows, rows[j])
        not_in_s = 0
        for pair in set(zip(le.tolist(), eq.tolist())):
            if pair[0] == 0:
                continue
            bits = pair_bits.get(pair)
            if bits is None:
                bits = closures.dominated_update(pair[0], pair[1])
                pair_bits[pair] = bits
            not_in_s |= bits
        cube.insert(int(pid), not_in_s | unmaterialised)
    return cube


def fast_skycube(
    data: np.ndarray,
    max_level: Optional[int] = None,
    word_width: int = HashCube.DEFAULT_WORD_WIDTH,
    bit_order: str = "numeric",
    engine: str = "packed",
    block: Optional[int] = None,
    counters: Optional[Counters] = None,
    backend: Optional[str] = None,
) -> Skycube:
    """The exact skycube via the point-bitmask paradigm, vectorized.

    Follows MDMC's structure — restrict to ``S+(P)``, compute each
    point's ``B_{p∉S}`` from its distinct comparison-mask pairs, expand
    over the subspace lattice with memoised closures — but with the
    per-point comparisons fully vectorized and no filtering tree.

    ``engine`` picks the sweep: ``"packed"`` (default) runs the
    :mod:`repro.engine.packed` uint64 path and bulk-loads the HashCube
    through :meth:`~repro.core.hashcube.HashCube.from_masks`;
    ``"packed-filtered"`` adds the static-tree label filter in front of
    both phases (see :func:`label_prefilter` and
    :class:`repro.engine.packed.FilteredPackedSweep`); ``"loop"`` keeps
    the per-point big-int sweep (required beyond ``d = 14``, where no
    packed closure table is materialised).  All engines produce
    bit-identical cubes for either ``bit_order``.

    ``backend`` selects the packed-kernel implementation (any of
    :data:`repro.engine.jit.BACKEND_CHOICES`): ``None``/``"numpy"``
    keep the stdlib+numpy sweep, ``"numba"``/``"cupy"`` run the
    compiled kernels of :mod:`repro.engine.jit` when importable (an
    unavailable backend degrades to numpy with a warning — all
    backends are bit-identical), ``"auto"`` picks the fastest probed
    one.  The ``"loop"`` engine is numpy-only.

    ``counters``, when given, accumulates the filter-effectiveness
    tallies (``pairs_pruned`` / ``leaves_skipped`` / ``label_bytes`` and
    the ``prefilter_dropped`` extra); the vectorized kernels record no
    per-operation counts.
    """
    from repro.engine.jit import resolve_backend

    data, _ = _validated(data, None)
    d = data.shape[1]
    if max_level is not None and not 1 <= max_level <= d:
        raise ValueError(f"max_level must be in [1, {d}], got {max_level}")
    if engine not in SKYCUBE_ENGINES:
        raise ValueError(
            f"engine must be one of {SKYCUBE_ENGINES}, got {engine!r}"
        )
    if engine != "loop" and d > packed.PACKED_MAX_D:
        raise ValueError(
            f"engine={engine!r} supports d <= {packed.PACKED_MAX_D}, got "
            f"d={d}; use engine='loop'"
        )
    if engine == "loop" and backend not in (None, "auto", "numpy"):
        raise ValueError(
            f"backend={backend!r} applies to the packed engines only; "
            "engine='loop' is numpy-only (drop backend= or pick a packed "
            "engine)"
        )
    splus = splus_ids_for_engine(data, engine, block=block, counters=counters)
    rows = np.ascontiguousarray(data[splus])
    if engine == "loop":
        cube = _loop_cube(rows, splus, d, max_level, word_width, bit_order)
    else:
        kernel_backend = resolve_backend(backend)
        sweep_block = _block_size(block, kernel_backend.preferred_block(d))
        if engine == "packed-filtered":
            mask_rows = kernel_backend.filtered_point_masks(
                rows, block=sweep_block, counters=counters
            )
        else:
            mask_rows = kernel_backend.point_masks(rows, block=sweep_block)
        if max_level is not None and max_level < d:
            mask_rows |= packed.unmaterialised_row(d, max_level)
        cube = HashCube.from_masks(
            d, splus, mask_rows, word_width=word_width, bit_order=bit_order
        )
    return Skycube(cube, data=data, max_level=max_level)
