"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.experiments fig05
    python -m repro.experiments table03 ablations
    python -m repro.experiments all          # everything (slow)

Tables are printed and also written to ``results/`` (override with the
``REPRO_RESULTS_DIR`` environment variable).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.report import results_dir


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment ids (or 'all')",
    )
    parser.add_argument(
        "--no-save",
        action="store_true",
        help="print only; do not write results/ files",
    )
    args = parser.parse_args(argv)

    selected = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    directory = results_dir()
    for name in selected:
        module = EXPERIMENTS[name]
        started = time.time()
        tables = module.run(quick=True)
        elapsed = time.time() - started
        for index, table in enumerate(tables):
            print(table.format())
            if not args.no_save:
                suffix = "" if len(tables) == 1 else f"_{chr(ord('a') + index)}"
                table.save(f"{name}{suffix}.txt", directory)
        print(f"[{name}: regenerated in {elapsed:.1f} s]\n")
    if not args.no_save:
        print(f"tables written to {directory}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
