"""Ablation studies of the design choices DESIGN.md calls out.

Each function isolates one decision the paper makes and quantifies it
with the library's own counters:

* ``tree_depth`` — the third (octile) level added to SkyAlign's static
  tree for skycubes (Section 4.3): filter strength and refine DTs of
  MDMC with 2- vs 3-level trees;
* ``mask_tests_vs_dts`` — the MT-for-DT trade of point-based
  partitioning (Appendix B.2) against plain BNL;
* ``mask_memoization`` — the duplicate-bitmask skip in MDMC's refine
  (Algorithm 3, lines 10–11): distinct masks processed vs leaf DTs;
* ``hashcube_word_width`` — compression vs word width w (App. B.1);
* ``level_ordered_hashcube`` — the Appendix A.2 future-work bit layout
  on partial skycubes;
* ``parent_selection`` — Algorithm 1 line 5's argmin parent against
  taking any parent: total reduced-input sizes;
* ``traversal_direction`` — top-down (QSkycube) vs bottom-up (BUS).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.hashcube import HashCube
from repro.data.generator import generate
from repro.experiments.report import Table
from repro.instrument.counters import Counters
from repro.partitioning.static_tree import StaticTree
from repro.skycube.bottom_up import BottomUpSkycube
from repro.skycube.qskycube import QSkycube
from repro.skycube.topdown import top_down_lattice
from repro.skyline.bnl import BlockNestedLoops
from repro.skyline.bskytree import BSkyTree
from repro.skyline.hybrid import Hybrid

__all__ = [
    "tree_depth",
    "mask_tests_vs_dts",
    "mask_memoization",
    "hashcube_word_width",
    "level_ordered_hashcube",
    "parent_selection",
    "traversal_direction",
    "run",
]

ABLATION_N = 500
ABLATION_D = 8
SEED = 13


def _data(distribution: str = "independent") -> np.ndarray:
    return generate(distribution, ABLATION_N, ABLATION_D, seed=SEED)


def tree_depth() -> Table:
    """2-level vs 3-level static tree: filter strength for MDMC."""
    data = _data()
    table = Table(
        "Ablation: static tree depth (Section 4.3's third level)",
        ["levels", "avg strict dims provable / point", "label bytes"],
        notes=["the octile level doubles the per-dim information carried"],
    )
    for levels in (2, 3):
        tree = StaticTree(data, levels=levels)
        provable = 0
        for pos in range(len(tree)):
            masks = tree.leaf_strict_masks(pos)
            provable += bin(int(np.bitwise_or.reduce(masks))).count("1")
        table.add_row(levels, provable / len(tree), tree.label_bytes())
    return table


def mask_tests_vs_dts() -> Table:
    """The MT-for-DT trade of point-based partitioning."""
    data = _data()
    table = Table(
        "Ablation: mask tests vs dominance tests (Appendix B.2)",
        ["algorithm", "DTs", "MTs", "values loaded"],
        notes=["MTs load one integer; DTs load up to 2|δ| floats"],
    )
    for algorithm in (BlockNestedLoops(), BSkyTree(), Hybrid()):
        counters = Counters()
        algorithm.compute(data, counters=counters)
        table.add_row(
            algorithm.name,
            counters.dominance_tests,
            counters.mask_tests,
            counters.values_loaded,
        )
    return table


def mask_memoization() -> Table:
    """Duplicate-bitmask skipping in MDMC's refine."""
    from repro.core.closures import SubspaceClosures
    from repro.templates.mdmc import CPUPointEngine

    data = _data()
    tree = StaticTree(data, levels=3)
    closures = SubspaceClosures(ABLATION_D)
    engine = CPUPointEngine()
    counters = Counters()
    full_bits = (1 << ((1 << ABLATION_D) - 1)) - 1
    distinct_updates = 0
    for pos in range(len(tree)):
        before = counters.bitmask_ops
        engine.process_point(tree, pos, closures, counters, full_bits)
        distinct_updates += counters.bitmask_ops - before
    table = Table(
        "Ablation: mask memoization in MDMC refine (Alg. 3 lines 10-12)",
        ["quantity", "value"],
        notes=[
            "without memoization every DT would expand its submasks: "
            "the expansions column would equal the DT column",
        ],
    )
    table.add_row("points processed", len(tree))
    table.add_row("leaf DTs executed", counters.dominance_tests)
    table.add_row("closure expansions (word ops)", distinct_updates)
    table.add_row("distinct masks cached globally", closures.cache_size())
    return table


def hashcube_word_width() -> Table:
    """HashCube compression as the word width varies (Appendix B.1)."""
    data = _data()
    lattice = QSkycube().materialise(data).skycube.as_lattice()
    table = Table(
        "Ablation: HashCube word width vs compression (Appendix B.1)",
        ["word width", "ids stored", "hash keys", "lattice ids / hashcube ids"],
    )
    for width in (4, 8, 16, 32, 64):
        cube = HashCube.from_lattice(lattice, word_width=width)
        table.add_row(
            width,
            cube.total_ids_stored(),
            cube.num_keys(),
            cube.compression_ratio_vs(lattice),
        )
    return table


def level_ordered_hashcube() -> Table:
    """Appendix A.2 future work: level-ordered HashCube bits.

    On partial skycubes, grouping same-level subspaces into words lets
    the omission rule drop the all-set upper-level words wholesale.
    """
    from repro.templates.mdmc import MDMC

    data = _data()
    table = Table(
        "Extension: level-ordered HashCube bits on partial skycubes",
        ["levels d'", "numeric-order ids", "level-order ids", "saving %"],
        notes=["implements the bit reorganisation Appendix A.2 proposes"],
    )
    for max_level in (2, 3, 4):
        numeric = MDMC("cpu", word_width=8).materialise(
            data, max_level=max_level
        ).skycube.store
        level = HashCube(ABLATION_D, word_width=8, bit_order="level")
        for pid in numeric.point_ids():
            level.insert(pid, numeric.membership_mask(pid))
        saved = numeric.total_ids_stored() - level.total_ids_stored()
        table.add_row(
            max_level,
            numeric.total_ids_stored(),
            level.total_ids_stored(),
            100.0 * saved / max(1, numeric.total_ids_stored()),
        )
    return table


def parent_selection() -> Table:
    """Smallest-parent rule vs first-parent (Alg. 1 line 5)."""
    data = _data("anticorrelated")
    table = Table(
        "Ablation: parent-selection rule in the top-down traversal",
        ["rule", "dominance tests", "values loaded"],
        notes=["the argmin parent shrinks every cuboid's reduced input"],
    )
    for rule in ("smallest", "first"):
        counters = Counters()
        top_down_lattice(data, BSkyTree(), counters, parent_rule=rule)
        table.add_row(rule, counters.dominance_tests, counters.values_loaded)
    return table


def traversal_direction() -> Table:
    """Top-down vs bottom-up lattice traversal (Section 3)."""
    data = _data()
    table = Table(
        "Ablation: lattice traversal direction",
        ["strategy", "dominance tests", "peak memory (bytes)"],
        notes=["bottom-up rescans the full dataset for every cuboid"],
    )
    for label, builder in (("top-down", QSkycube()), ("bottom-up", BottomUpSkycube())):
        run_trace = builder.materialise(data)
        table.add_row(
            label,
            run_trace.counters.dominance_tests,
            run_trace.peak_memory_bytes(),
        )
    return table


def run(quick: bool = True) -> List[Table]:
    """All ablations, in DESIGN.md order."""
    return [
        tree_depth(),
        mask_tests_vs_dts(),
        mask_memoization(),
        hashcube_word_width(),
        level_ordered_hashcube(),
        parent_selection(),
        traversal_direction(),
    ]
