"""Figure 6 — CPU execution times across workloads.

Six panels in the paper: execution time against cardinality (left
column) and dimensionality (right column) for anticorrelated,
independent and correlated data, with every algorithm under its
optimal thread configuration.  The shape to reproduce: MD fastest
almost everywhere, then ST, then SD, then PQ — with SD slipping behind
PQ on correlated data, and PQ degrading hardest as d grows.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import Table, format_seconds
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    D_SWEEP,
    D_SWEEP_N,
    DISTRIBUTIONS,
    N_SWEEP,
    OPTIMAL_THREADS,
    scaled_cpu,
)
from repro.hardware.simulate import simulate_cpu

__all__ = ["run", "cpu_seconds", "ALGORITHMS"]

ALGORITHMS = ("pqskycube", "stsc", "sdsc-cpu", "mdmc-cpu")
LABELS = {"pqskycube": "PQ", "stsc": "ST", "sdsc-cpu": "SD", "mdmc-cpu": "MD"}

#: The d used in the cardinality sweep (the paper uses its default 12).
N_SWEEP_D = 8


def cpu_seconds(algorithm: str, distribution: str, n: int, d: int) -> float:
    """Execution time under the algorithm's optimal thread config."""
    base_key = algorithm.split("-", 1)[0]
    threads, sockets = OPTIMAL_THREADS[base_key]
    run_trace = build_run(algorithm, distribution, n, d)
    return simulate_cpu(
        run_trace, scaled_cpu(), threads=threads, sockets=sockets
    ).seconds


def run(quick: bool = True) -> List[Table]:
    """Regenerate all six panels of Figure 6."""
    tables: List[Table] = []
    for distribution in DISTRIBUTIONS:
        by_n = Table(
            f"Figure 6: CPU times vs n ({distribution}, d={N_SWEEP_D})",
            ["n"] + [LABELS[a] for a in ALGORITHMS],
        )
        for n in N_SWEEP:
            by_n.add_row(
                n,
                *(
                    format_seconds(cpu_seconds(a, distribution, n, N_SWEEP_D))
                    for a in ALGORITHMS
                ),
            )
        tables.append(by_n)

        by_d = Table(
            f"Figure 6: CPU times vs d ({distribution}, n={D_SWEEP_N})",
            ["d"] + [LABELS[a] for a in ALGORITHMS],
        )
        for d in D_SWEEP:
            by_d.add_row(
                d,
                *(
                    format_seconds(cpu_seconds(a, distribution, D_SWEEP_N, d))
                    for a in ALGORITHMS
                ),
            )
        tables.append(by_d)
    return tables
