"""Plain-text result tables for the experiment harness."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = ["Table", "format_seconds", "results_dir"]

Cell = Union[str, int, float]


def format_seconds(seconds: float) -> str:
    """Engineering-style time rendering (ms below 100 s)."""
    if seconds < 0.1:
        return f"{seconds * 1000:.2f} ms"
    if seconds < 100:
        return f"{seconds:.2f} s"
    return f"{seconds:.0f} s"


def results_dir() -> str:
    """Directory experiment tables are written to (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class Table:
    """A titled, monospace-aligned result table with footnotes."""

    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        """All values of a named column."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def cell(self, row_key: Cell, column: str) -> Cell:
        """Value at (first column == row_key, column)."""
        index = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[index]
        raise KeyError(f"no row keyed {row_key!r}")

    def format(self) -> str:
        rendered = [
            [self._render(cell) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in rendered))
            if rendered
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title), ""]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines) + "\n"

    def save(self, filename: str, directory: Optional[str] = None) -> str:
        """Write the formatted table under the results directory."""
        directory = directory if directory is not None else results_dir()
        path = os.path.join(directory, filename)
        with open(path, "w") as handle:
            handle.write(self.format())
        return path

    @staticmethod
    def _render(cell: Cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e5 or abs(cell) < 1e-3:
                return f"{cell:.2e}"
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return str(cell)
