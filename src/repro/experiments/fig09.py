"""Figure 9 — cycles stalled on pending L2/L3 loads.

Paper shape: the stall counts track the CPI differences of Figure 11 —
PQ stalls dramatically (NUMA-amplified), ST/SD moderately, MD least;
latencies that L3 hits absorb for MD/ST turn into memory stalls for PQ.
"""

from __future__ import annotations

from typing import List

from repro.experiments.hwcounters import ALGORITHMS, LABELS, counter_simulations
from repro.experiments.report import Table

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    sims = counter_simulations()
    l2 = Table(
        "Figure 9a: stall cycles, load pending at L2 (10 cores)",
        ["algorithm", "1 socket", "2 sockets"],
    )
    l3 = Table(
        "Figure 9b: stall cycles, load pending at L3/memory (10 cores)",
        ["algorithm", "1 socket", "2 sockets"],
        notes=["paper: PQ dramatically NUMA-affected, MD minorly"],
    )
    for algorithm in ALGORITHMS:
        one, two = sims[(algorithm, 1)], sims[(algorithm, 2)]
        l2.add_row(
            LABELS[algorithm],
            one.hardware.l2_stall_cycles,
            two.hardware.l2_stall_cycles,
        )
        l3.add_row(
            LABELS[algorithm],
            one.hardware.l3_stall_cycles,
            two.hardware.l3_stall_cycles,
        )
    return [l2, l3]
