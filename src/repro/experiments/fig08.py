"""Figure 8 — L2 and L3 cache misses (default workload, 10 cores).

Paper shape: MD suffers orders of magnitude fewer L2 misses than the
lattice methods; at L3, PQ suffers most and jumps hard when split over
two sockets, ST *benefits* from the second socket's extra L3, MD stays
lowest throughout.
"""

from __future__ import annotations

from typing import List

from repro.experiments.hwcounters import ALGORITHMS, LABELS, counter_simulations
from repro.experiments.report import Table

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    sims = counter_simulations()
    l2 = Table(
        "Figure 8a: L2 misses (10 cores; 1 vs 2 sockets)",
        ["algorithm", "1 socket", "2 sockets"],
        notes=["paper: MD has orders of magnitude fewer misses"],
    )
    l3 = Table(
        "Figure 8b: L3 misses (10 cores; 1 vs 2 sockets)",
        ["algorithm", "1 socket", "2 sockets", "2s/1s"],
        notes=["paper: PQ jumps ~7x with the 2nd socket; ST improves"],
    )
    for algorithm in ALGORITHMS:
        one, two = sims[(algorithm, 1)], sims[(algorithm, 2)]
        l2.add_row(LABELS[algorithm], one.hardware.l2_misses, two.hardware.l2_misses)
        l3.add_row(
            LABELS[algorithm],
            one.hardware.l3_misses,
            two.hardware.l3_misses,
            two.hardware.l3_misses / max(one.hardware.l3_misses, 1e-9),
        )
    return [l2, l3]
