"""Figure 11 — cycles per instruction (default workload, 10 cores).

Paper shape: PQ's CPI is by far the worst and nearly doubles with the
second socket; the templates stay comparatively stable, with the
data-parallel MD sustaining the best compute throughput.  The paper
also reports PQ's CPI creeping up with the core count on one socket
(compute-bound sequentially, memory-bound in parallel) — reproduced in
the second table.
"""

from __future__ import annotations

from typing import List

from repro.experiments.hwcounters import ALGORITHMS, LABELS, counter_simulations
from repro.experiments.report import Table
from repro.experiments.runner import build_run
from repro.experiments.workloads import DEFAULT_D, DEFAULT_DIST, DEFAULT_N, scaled_cpu
from repro.hardware.simulate import simulate_cpu

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    sims = counter_simulations()
    cpi = Table(
        "Figure 11: cycles per instruction (10 cores; 1 vs 2 sockets)",
        ["algorithm", "1 socket", "2 sockets"],
        notes=["paper: PQ ~2.5 and doubling across sockets; templates <1"],
    )
    for algorithm in ALGORITHMS:
        cpi.add_row(
            LABELS[algorithm],
            sims[(algorithm, 1)].cpi,
            sims[(algorithm, 2)].cpi,
        )

    creep = Table(
        "Section 7.2: PQ CPI vs thread count (one socket)",
        ["threads", "PQ CPI", "MD CPI"],
        notes=["paper: PQ grows 0.92 -> 2.46 over t=1..10; MD flat"],
    )
    cpu = scaled_cpu()
    pq = build_run("pqskycube", DEFAULT_DIST, DEFAULT_N, DEFAULT_D)
    md = build_run("mdmc-cpu", DEFAULT_DIST, DEFAULT_N, DEFAULT_D)
    for threads in (1, 2, 4, 6, 8, 10):
        creep.add_row(
            threads,
            simulate_cpu(pq, cpu, threads=threads, sockets=1).cpi,
            simulate_cpu(md, cpu, threads=threads, sockets=1).cpi,
        )
    return [cpi, creep]
