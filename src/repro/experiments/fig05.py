"""Figure 5 — parallel scalability of the CPU specialisations.

Speedup of PQ, ST, SD and MD relative to their own single-threaded
execution, as threads are pinned to one socket (left panel; the last
point hyper-threaded) or spread over two (right panel).  The paper's
shape: ST and MD scale well (MD keeps scaling under HT), SD scales
less and degrades under HT, PQ flattens early and loses its speedup
the moment a second socket is involved.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.report import Table
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DEFAULT_D,
    DEFAULT_DIST,
    DEFAULT_N,
    scaled_cpu,
)
from repro.hardware.simulate import simulate_cpu

__all__ = ["run", "speedups"]

ALGORITHMS = ("pqskycube", "stsc", "sdsc-cpu", "mdmc-cpu")
LABELS = {"pqskycube": "PQ", "stsc": "ST", "sdsc-cpu": "SD", "mdmc-cpu": "MD"}

ONE_SOCKET = [1, 2, 5, 10, 20]           # 20 = hyper-threaded
TWO_SOCKETS = [10, 20, 40]               # 40 = hyper-threaded


def speedups(algorithm: str) -> Tuple[Dict[int, float], Dict[int, float]]:
    """(one-socket, two-socket) speedup maps for one algorithm."""
    cpu = scaled_cpu()
    run_trace = build_run(algorithm, DEFAULT_DIST, DEFAULT_N, DEFAULT_D)
    base = simulate_cpu(run_trace, cpu, threads=1, sockets=1).seconds
    one = {
        t: base / simulate_cpu(run_trace, cpu, threads=t, sockets=1).seconds
        for t in ONE_SOCKET
    }
    two = {
        t: base / simulate_cpu(run_trace, cpu, threads=t, sockets=2).seconds
        for t in TWO_SOCKETS
    }
    return one, two


def run(quick: bool = True) -> List[Table]:
    """Regenerate both panels of Figure 5."""
    left = Table(
        "Figure 5 (left): speedup vs threads, one socket "
        f"((I), n={DEFAULT_N}, d={DEFAULT_D}; t=20 is HT)",
        ["algorithm"] + [f"t={t}" for t in ONE_SOCKET],
        notes=[
            "paper: MD/ST scale best, SD degrades with HT, PQ flattens",
        ],
    )
    right = Table(
        "Figure 5 (right): speedup vs threads, two sockets (t=40 is HT)",
        ["algorithm"] + [f"t={t}" for t in TWO_SOCKETS],
        notes=["paper: PQ gains almost nothing once a 2nd socket is used"],
    )
    for algorithm in ALGORITHMS:
        one, two = speedups(algorithm)
        left.add_row(LABELS[algorithm], *(one[t] for t in ONE_SOCKET))
        right.add_row(LABELS[algorithm], *(two[t] for t in TWO_SOCKETS))
    return [left, right]
