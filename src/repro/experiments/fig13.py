"""Figure 13 / Appendix A.2 — partial skycube computation.

Execution time when only lattice levels ≤ d' are required.  Paper
shape: the lattice-based methods gain substantially when d' ≤ d/2
(they skip whole levels, trading a larger input at the start level);
MD's savings are modest — its filter cannot skip the work, only the
refine list shrinks — so on correlated data one may as well compute
the full cube.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import Table, format_seconds
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DISTRIBUTIONS,
    OPTIMAL_THREADS,
    scaled_cpu,
    scaled_gpu,
)
from repro.hardware.simulate import simulate_cpu, simulate_gpu

__all__ = ["run", "partial_cpu_seconds"]

#: Workload for the partial sweep (paper: 16d; scaled to 8d).
PARTIAL_N = 400
PARTIAL_D = 8
LEVELS = [2, 4, 6, 8]

CPU_ALGOS = ("pqskycube", "stsc", "sdsc-cpu", "mdmc-cpu")
LABELS = {"pqskycube": "PQ", "stsc": "ST", "sdsc-cpu": "SD", "mdmc-cpu": "MD"}


def partial_cpu_seconds(
    algorithm: str, distribution: str, max_level: int
) -> float:
    base_key = algorithm.split("-", 1)[0]
    threads, sockets = OPTIMAL_THREADS[base_key]
    level = None if max_level >= PARTIAL_D else max_level
    run_trace = build_run(
        algorithm, distribution, PARTIAL_N, PARTIAL_D, max_level=level
    )
    return simulate_cpu(
        run_trace, scaled_cpu(), threads=threads, sockets=sockets
    ).seconds


def run(quick: bool = True) -> List[Table]:
    tables: List[Table] = []
    for distribution in DISTRIBUTIONS:
        cpu_table = Table(
            f"Figure 13 (CPU): partial skycube times vs levels computed "
            f"({distribution}, n={PARTIAL_N}, d={PARTIAL_D})",
            ["levels d'"] + [LABELS[a] for a in CPU_ALGOS],
            notes=["paper: lattice methods gain for d' <= d/2; MD modest"],
        )
        for level in LEVELS:
            cpu_table.add_row(
                level,
                *(
                    format_seconds(partial_cpu_seconds(a, distribution, level))
                    for a in CPU_ALGOS
                ),
            )
        tables.append(cpu_table)

        gpu_table = Table(
            f"Figure 13 (GPU): partial skycube times ({distribution})",
            ["levels d'", "SD-GPU", "MD-GPU"],
        )
        gpu = scaled_gpu()
        for level in LEVELS:
            opt_level = None if level >= PARTIAL_D else level
            sd = simulate_gpu(
                build_run(
                    "sdsc-gpu", distribution, PARTIAL_N, PARTIAL_D,
                    max_level=opt_level,
                ),
                gpu,
            )
            md = simulate_gpu(
                build_run(
                    "mdmc-gpu", distribution, PARTIAL_N, PARTIAL_D,
                    max_level=opt_level,
                ),
                gpu,
            )
            gpu_table.add_row(
                level, format_seconds(sd.seconds), format_seconds(md.seconds)
            )
        tables.append(gpu_table)
    return tables
