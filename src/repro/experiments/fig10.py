"""Figure 10 — data-TLB behaviour (STLB miss rate, page-walk cycles).

Paper shape: ST and SD miss the shared TLB far more often than MD
(whose static-tree scans have near-perfect spatial locality); PQ's
*rate* is moderate only because it issues ~4x fewer load µops — the
absolute miss counts are comparable; page-walk time mirrors the rates.
"""

from __future__ import annotations

from typing import List

from repro.experiments.hwcounters import ALGORITHMS, LABELS, counter_simulations
from repro.experiments.report import Table

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    sims = counter_simulations()
    rate = Table(
        "Figure 10a: % of load uops missing the STLB (10 cores)",
        ["algorithm", "1 socket %", "2 sockets %", "abs misses (1s)"],
        notes=["paper: ST/SD highest rate, MD lowest; PQ low rate but "
               "comparable absolute misses (fewer loads)"],
    )
    walk = Table(
        "Figure 10b: % of cycles spent in page walks (10 cores)",
        ["algorithm", "1 socket %", "2 sockets %"],
    )
    for algorithm in ALGORITHMS:
        one, two = sims[(algorithm, 1)], sims[(algorithm, 2)]
        rate.add_row(
            LABELS[algorithm],
            100 * one.stlb_miss_rate,
            100 * two.stlb_miss_rate,
            one.hardware.tlb_misses,
        )
        walk.add_row(
            LABELS[algorithm],
            100 * one.page_walk_fraction,
            100 * two.page_walk_fraction,
        )
    return [rate, walk]
