"""Figure 7 — GPU and cross-device execution times across workloads.

Same grid as Figure 6, but for the GPU specialisations of SDSC and
MDMC (solid lines in the paper) and their heterogeneous runs over
2 CPU sockets + 3 GPUs (dashed, the "-All" series).  Shapes: MD-GPU
beats SD-GPU, converging as n grows; the -All runs gain roughly the
combined throughput of the devices, except where the workload exposes
too few tasks (correlated data).
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import Table, format_seconds
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    D_SWEEP,
    D_SWEEP_N,
    DISTRIBUTIONS,
    N_SWEEP,
    scaled_gpu,
    scaled_platform,
)
from repro.hardware.simulate import simulate_gpu, simulate_heterogeneous

__all__ = ["run", "gpu_seconds", "all_seconds"]

ALGORITHMS = ("sdsc-gpu", "mdmc-gpu")
LABELS = {"sdsc-gpu": "SD-GPU", "mdmc-gpu": "MD-GPU"}
N_SWEEP_D = 8


def gpu_seconds(algorithm: str, distribution: str, n: int, d: int) -> float:
    """Single-GPU execution time."""
    run_trace = build_run(algorithm, distribution, n, d)
    return simulate_gpu(run_trace, scaled_gpu()).seconds


def all_seconds(algorithm: str, distribution: str, n: int, d: int) -> float:
    """Cross-device execution time over the full platform."""
    run_trace = build_run(algorithm, distribution, n, d)
    return simulate_heterogeneous(run_trace, scaled_platform()).seconds


def run(quick: bool = True) -> List[Table]:
    """Regenerate all six panels of Figure 7."""
    tables: List[Table] = []
    for distribution in DISTRIBUTIONS:
        by_n = Table(
            f"Figure 7: GPU/cross-device times vs n ({distribution}, "
            f"d={N_SWEEP_D})",
            ["n", "SD-GPU", "MD-GPU", "SD-All", "MD-All"],
        )
        for n in N_SWEEP:
            by_n.add_row(
                n,
                format_seconds(gpu_seconds("sdsc-gpu", distribution, n, N_SWEEP_D)),
                format_seconds(gpu_seconds("mdmc-gpu", distribution, n, N_SWEEP_D)),
                format_seconds(all_seconds("sdsc-gpu", distribution, n, N_SWEEP_D)),
                format_seconds(all_seconds("mdmc-gpu", distribution, n, N_SWEEP_D)),
            )
        tables.append(by_n)

        by_d = Table(
            f"Figure 7: GPU/cross-device times vs d ({distribution}, "
            f"n={D_SWEEP_N})",
            ["d", "SD-GPU", "MD-GPU", "SD-All", "MD-All"],
        )
        for d in D_SWEEP:
            by_d.add_row(
                d,
                format_seconds(gpu_seconds("sdsc-gpu", distribution, D_SWEEP_N, d)),
                format_seconds(gpu_seconds("mdmc-gpu", distribution, D_SWEEP_N, d)),
                format_seconds(all_seconds("sdsc-gpu", distribution, D_SWEEP_N, d)),
                format_seconds(all_seconds("mdmc-gpu", distribution, D_SWEEP_N, d)),
            )
        tables.append(by_d)
    return tables
