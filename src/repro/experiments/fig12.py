"""Figure 12 — share of parallel work per device (cross-device runs).

Paper shape: on the default workload, every processor (two 980s, one
Titan, two CPU sockets) takes at least ~20% of SD's cuboids / MD's
points, within a ~10-point range — near-linear use of heterogeneous
co-processors.  MD draws a little more of its work through the CPU.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import Table
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DEFAULT_D,
    DEFAULT_DIST,
    DEFAULT_N,
    scaled_platform,
)
from repro.hardware.simulate import simulate_heterogeneous

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    platform = scaled_platform()
    table = Table(
        "Figure 12: % of parallel tasks per device (default workload)",
        ["device", "SD %", "MD %"],
        notes=["paper: every device contributes ≥ ~20%, range ≈ 10 pts"],
    )
    sd = simulate_heterogeneous(
        build_run("sdsc-gpu", DEFAULT_DIST, DEFAULT_N, DEFAULT_D), platform
    )
    md = simulate_heterogeneous(
        build_run("mdmc-gpu", DEFAULT_DIST, DEFAULT_N, DEFAULT_D), platform
    )

    def combined(shares):
        # The paper's Figure 12 legend reports the CPU (both chips) as
        # one device next to the three GPU cards.
        out = {"cpu (2 sockets)": 0.0}
        for device, share in shares.items():
            if device.startswith("cpu-socket"):
                out["cpu (2 sockets)"] += share
            else:
                out[device] = share
        return out

    sd_shares, md_shares = combined(sd.device_shares), combined(md.device_shares)
    for device in sd_shares:
        table.add_row(
            device,
            100 * sd_shares[device],
            100 * md_shares.get(device, 0.0),
        )
    return [table]
