"""Shared materialisation cache for the experiment suite.

Building a skycube run is by far the dominant cost of an experiment
(pure Python at thousands of points); simulating it on a device
configuration is cheap.  Every figure/table module therefore obtains
runs through :func:`build_run`, which memoises per
``(algorithm, distribution, n, d, seed, max_level)`` for the lifetime
of the process — one pytest session reuses runs across all benchmark
files.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.config import Profile

from repro.data.generator import generate
from repro.data.realistic import load_real
from repro.skycube import (
    BottomUpSkycube,
    DistributedSkycube,
    PQSkycube,
    QSkycube,
)
from repro.skycube.base import SkycubeRun
from repro.templates import MDMC, SDSC, STSC

__all__ = ["build_run", "build_real_run", "ALGORITHM_KEYS"]

ALGORITHM_KEYS = (
    "qskycube",
    "pqskycube",
    "bottomup",
    "distributed",
    "stsc",
    "sdsc-cpu",
    "sdsc-gpu",
    "mdmc-cpu",
    "mdmc-gpu",
)


def _builder(
    key: str,
    executor: str = "serial",
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    backend: Optional[str] = None,
):
    if engine is not None and not key.startswith("mdmc"):
        raise ValueError(
            f"engine={engine!r} only applies to the point-bitmask "
            f"template (mdmc), not {key!r}"
        )
    if backend is not None and not key.startswith("mdmc"):
        raise ValueError(
            f"backend={backend!r} only applies to the point-bitmask "
            f"template (mdmc), not {key!r}"
        )
    if key == "stsc":
        return STSC(executor=executor, workers=workers)
    if key.startswith("sdsc"):
        return SDSC(key.split("-", 1)[1], executor=executor, workers=workers)
    if key.startswith("mdmc"):
        return MDMC(
            key.split("-", 1)[1],
            executor=executor,
            workers=workers,
            engine=engine,
            backend=backend,
        )
    if executor != "serial":
        raise ValueError(
            f"executor={executor!r} only applies to the template "
            f"algorithms (stsc/sdsc/mdmc), not {key!r}"
        )
    if key == "qskycube":
        return QSkycube()
    if key == "pqskycube":
        return PQSkycube()
    if key == "bottomup":
        return BottomUpSkycube()
    if key == "distributed":
        return DistributedSkycube()
    raise KeyError(f"unknown algorithm key {key!r}; known: {ALGORITHM_KEYS}")


@lru_cache(maxsize=None)
def build_run(
    algorithm: str,
    distribution: str,
    n: int,
    d: int,
    seed: int = 0,
    max_level: Optional[int] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    backend: Optional[str] = None,
    profile: Optional["Profile"] = None,
) -> SkycubeRun:
    """Materialise (once) the named algorithm on a synthetic workload.

    ``profile`` (a frozen :class:`repro.config.Profile`, so the memo
    key stays hashable) supplies the ``[engine]`` backend knobs for
    any of ``executor``/``workers``/``engine`` left as ``None`` —
    explicit arguments always win, mirroring the serve CLI's
    flag-beats-profile precedence.  All three knobs use a ``None``
    sentinel so an *explicit* ``executor="serial"`` beats a profile
    that says ``"process"`` (it used to be indistinguishable from the
    default and silently lose).  Its ``[filter]`` gates are applied
    before materialisation.
    """
    if profile is not None:
        from repro.config import apply_filter_gates

        apply_filter_gates(profile)
        if executor is None:
            executor = profile.engine.executor
        if workers is None:
            workers = profile.engine.workers
        if engine is None:
            engine = profile.engine.engine
        if backend is None:
            backend = profile.engine.backend
    if executor is None:
        executor = "serial"
    data = generate(distribution, n, d, seed=seed)
    return _builder(algorithm, executor, workers, engine, backend).materialise(
        data, max_level=max_level
    )


@lru_cache(maxsize=None)
def build_real_run(
    algorithm: str,
    dataset: str,
    scale: float,
    seed: int = 0,
    max_dims: Optional[int] = None,
) -> SkycubeRun:
    """Materialise (once) the named algorithm on a real-data stand-in.

    ``max_dims`` truncates the widest datasets (WE has d=15; a
    32767-cuboid lattice is out of pure-Python reach — the truncation
    is recorded in EXPERIMENTS.md).
    """
    data = load_real(dataset, scale=scale, seed=seed)
    if max_dims is not None and data.shape[1] > max_dims:
        data = np.ascontiguousarray(data[:, :max_dims])
    return _builder(algorithm).materialise(data)
