"""Experiment harness: one module per figure/table of the paper."""

from repro.experiments import (
    ablations,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    table02,
    table03,
)
from repro.experiments.report import Table, format_seconds, results_dir
from repro.experiments.runner import build_real_run, build_run

__all__ = [
    "ablations",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table02",
    "table03",
    "Table",
    "format_seconds",
    "results_dir",
    "build_run",
    "build_real_run",
]

#: Experiment registry: id -> module with a ``run(quick)`` entry point.
EXPERIMENTS = {
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "table02": table02,
    "table03": table03,
    "ablations": ablations,
}
