"""Table 3 — execution times on the real datasets.

Every algorithm on every dataset stand-in, on the architecture(s) it
supports: CPU (optimal thread config), one GPU, and all devices.
Paper shapes to hold: MD is the overall winner on every dataset; the
tiny NBA/HH inputs make the GPU *worse* than the CPU for SD (too few
threads to occupy the card, expensive synchronisation) and give the
cross-device runs nothing to distribute; the big duplicate-heavy CT
and wide WE reward the GPU and the heterogeneous runs handsomely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.report import Table, format_seconds
from repro.experiments.runner import build_real_run
from repro.experiments.workloads import (
    OPTIMAL_THREADS,
    scaled_cpu,
    scaled_gpu,
    scaled_platform,
)
from repro.hardware.simulate import (
    simulate_cpu,
    simulate_gpu,
    simulate_heterogeneous,
)

__all__ = ["run", "real_seconds", "DATASET_SCALES", "DATASET_MAX_DIMS"]

DATASETS = ("NBA", "HH", "CT", "WE")

#: Size scaling per dataset (fraction of the paper's n) — chosen so
#: every stand-in lands near 10^3 points, pure-Python territory.
DATASET_SCALES: Dict[str, float] = {
    "NBA": 0.05,
    "HH": 0.008,
    "CT": 0.002,
    "WE": 0.002,
}

#: WE has 15 dimensions; a 32767-cuboid lattice is out of reach for the
#: pure-Python traversals, so the stand-in is truncated to its 3
#: coordinates + 6 months (recorded in EXPERIMENTS.md).
DATASET_MAX_DIMS: Dict[str, Optional[int]] = {
    "NBA": None,
    "HH": None,
    "CT": None,
    "WE": 9,
}

CPU_ROWS = (
    ("QSkycube", "qskycube"),
    ("PQSkycube", "pqskycube"),
    ("STSC", "stsc"),
    ("SDSC", "sdsc-cpu"),
    ("MDMC", "mdmc-cpu"),
)
GPU_ROWS = (("SDSC", "sdsc-gpu"), ("MDMC", "mdmc-gpu"))


def _run_for(algorithm: str, dataset: str):
    return build_real_run(
        algorithm,
        dataset,
        DATASET_SCALES[dataset],
        max_dims=DATASET_MAX_DIMS[dataset],
    )


def real_seconds(algorithm: str, dataset: str, where: str) -> float:
    """Execution time of one (algorithm, dataset) cell of Table 3."""
    run_trace = _run_for(algorithm, dataset)
    if where == "cpu":
        base_key = algorithm.split("-", 1)[0]
        threads, sockets = OPTIMAL_THREADS[base_key]
        return simulate_cpu(
            run_trace, scaled_cpu(), threads=threads, sockets=sockets
        ).seconds
    if where == "gpu":
        return simulate_gpu(run_trace, scaled_gpu()).seconds
    if where == "all":
        return simulate_heterogeneous(run_trace, scaled_platform()).seconds
    raise ValueError(f"unknown location {where!r}")


def run(quick: bool = True) -> List[Table]:
    table = Table(
        "Table 3: execution time on real-data stand-ins",
        ["arch", "algorithm"] + list(DATASETS),
        notes=[
            "paper: MD best everywhere; GPUs lose on the tiny NBA/HH; "
            "cross-device pays off only on CT/WE",
        ],
    )
    for label, key in CPU_ROWS:
        table.add_row(
            "CPU",
            label,
            *(
                format_seconds(real_seconds(key, dataset, "cpu"))
                for dataset in DATASETS
            ),
        )
    for label, key in GPU_ROWS:
        table.add_row(
            "GPU",
            label,
            *(
                format_seconds(real_seconds(key, dataset, "gpu"))
                for dataset in DATASETS
            ),
        )
    for label, key in GPU_ROWS:
        table.add_row(
            "All",
            label,
            *(
                format_seconds(real_seconds(key, dataset, "all"))
                for dataset in DATASETS
            ),
        )
    return [table]
