"""Table 2 — the real datasets (stand-in statistics).

Reports n, d and |S+| of each synthesized stand-in next to the paper's
figures for the original data, so the per-dataset character (tiny S+
for NBA/HH, ~74% for CT, moderate for WE) is auditable.
"""

from __future__ import annotations

from typing import List

from repro.data.realistic import dataset_summary
from repro.experiments.report import Table
from repro.experiments.table03 import DATASET_SCALES

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    table = Table(
        "Table 2: real dataset stand-ins vs the paper's originals",
        ["dataset", "n", "d", "|S+|", "|S+|/n", "paper |S+|/n"],
        notes=[
            "stand-ins are seeded synthesizers matching each dataset's "
            "structure (repro.data.realistic); sizes scaled per Table 3",
        ],
    )
    for name in ("NBA", "HH", "CT", "WE"):
        summary = dataset_summary(name, scale=DATASET_SCALES[name])
        table.add_row(
            name,
            summary["n"],
            summary["d"],
            summary["extended_skyline"],
            summary["extended_fraction"],
            summary["paper_extended_fraction"],
        )
    return [table]
