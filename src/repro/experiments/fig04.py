"""Figure 4 — QSkycube vs our PQSkycube parallelisation, single-threaded.

The point of the paper's Figure 4: the baseline parallelisation
introduces no overhead over the authors' QSkycube code (and gains a
little from freeing dead structures early).  We replay both runs
single-threaded against the scaled machine across the n and d sweeps.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import Table, format_seconds
from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    D_SWEEP,
    D_SWEEP_N,
    DEFAULT_DIST,
    N_SWEEP,
    scaled_cpu,
)
from repro.hardware.simulate import simulate_cpu

__all__ = ["run"]


def run(quick: bool = True) -> List[Table]:
    """Regenerate both panels of Figure 4 (vs n; vs d)."""
    cpu = scaled_cpu()
    sweep_d = 6  # keeps the n-sweep lattice narrow, as a baseline probe

    by_n = Table(
        "Figure 4 (left): single-threaded QSkycube vs PQSkycube vs n "
        f"((I), d={sweep_d})",
        ["n", "qskycube", "pqskycube", "pq/q ratio"],
        notes=["paper: the curves coincide (PQ adds no overhead)"],
    )
    for n in N_SWEEP:
        q = simulate_cpu(
            build_run("qskycube", DEFAULT_DIST, n, sweep_d), cpu, threads=1
        )
        pq = simulate_cpu(
            build_run("pqskycube", DEFAULT_DIST, n, sweep_d), cpu, threads=1
        )
        by_n.add_row(
            n,
            format_seconds(q.seconds),
            format_seconds(pq.seconds),
            pq.seconds / q.seconds,
        )

    by_d = Table(
        "Figure 4 (right): single-threaded QSkycube vs PQSkycube vs d "
        f"((I), n={D_SWEEP_N})",
        ["d", "qskycube", "pqskycube", "pq/q ratio"],
        notes=["paper: the curves coincide (PQ adds no overhead)"],
    )
    for d in D_SWEEP:
        q = simulate_cpu(
            build_run("qskycube", DEFAULT_DIST, D_SWEEP_N, d), cpu, threads=1
        )
        pq = simulate_cpu(
            build_run("pqskycube", DEFAULT_DIST, D_SWEEP_N, d), cpu, threads=1
        )
        by_d.add_row(
            d,
            format_seconds(q.seconds),
            format_seconds(pq.seconds),
            pq.seconds / q.seconds,
        )
    return [by_n, by_d]
