"""Standard experiment workloads and the global scale factor.

The paper's synthetic defaults are (I), n = 500 000, d = 12 on a
machine with 25 MB of L3 per socket.  Pure Python cannot traverse a
4096-cuboid lattice over half a million points in reasonable time, so
every experiment here runs at ``1/SCALE`` of the paper's cardinality
against a machine miniaturised by the same factor
(:meth:`repro.hardware.config.CPUConfig.scaled`): working-set to
capacity ratios — the quantity every contention effect depends on —
match the paper's regime.  EXPERIMENTS.md records this translation per
experiment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hardware.config import (
    CPUConfig,
    GPUConfig,
    PlatformConfig,
    gtx_titan,
)

__all__ = [
    "SCALE",
    "DEFAULT_DIST",
    "DEFAULT_N",
    "DEFAULT_D",
    "N_SWEEP",
    "D_SWEEP",
    "DISTRIBUTIONS",
    "scaled_cpu",
    "scaled_gpu",
    "scaled_platform",
    "OPTIMAL_THREADS",
    "D_SWEEP_N",
]

#: Workload and machine miniaturisation factor (paper n=500k → 2000).
SCALE = 250

#: The paper's default workload, scaled: (I), n = 500k/SCALE, d below.
DEFAULT_DIST = "independent"
DEFAULT_N = 500_000 // SCALE
#: The paper defaults to d=12; we use d=8 so that n ≫ 2**d still holds
#: at the scaled cardinality (the regime in which the static trees'
#: path labels collide and prune, as they do at paper scale).
DEFAULT_D = 8

#: Cardinality sweep (paper: 1..10 × 10^5, scaled by 1/SCALE).
N_SWEEP: List[int] = [400, 1000, 2000]

#: Dimensionality sweep (paper: 4..16; ≥ 10 is impractical for the
#: lattice methods in pure Python — EXPERIMENTS.md notes the cut).
D_SWEEP: List[int] = [4, 6, 8]

#: Cardinality used for the dimensionality sweep (paper: 500 000).
D_SWEEP_N = 500

DISTRIBUTIONS = ("anticorrelated", "independent", "correlated")

#: Per-algorithm optimal thread configuration (Section 7.2, Figure 5):
#: (threads, sockets) used for the workload-scalability experiments.
OPTIMAL_THREADS: Dict[str, Tuple[int, int]] = {
    "pqskycube": (20, 1),   # 20 HT on one socket
    "qskycube": (1, 1),
    "bottomup": (20, 1),
    "stsc": (40, 2),
    "sdsc": (20, 2),
    "mdmc": (40, 2),
}


def scaled_cpu() -> CPUConfig:
    """The miniaturised dual-socket Xeon."""
    return CPUConfig().scaled(SCALE)


def scaled_gpu(name: str = "gtx-980") -> GPUConfig:
    """A miniaturised GTX 980 (or Titan with ``name='gtx-titan'``)."""
    if name == "gtx-titan":
        return gtx_titan().scaled(SCALE)
    return GPUConfig(name=name).scaled(SCALE)


def scaled_platform() -> PlatformConfig:
    """The full heterogeneous ecosystem, miniaturised."""
    return PlatformConfig(
        cpu=scaled_cpu(),
        gpus=[
            scaled_gpu(),
            scaled_gpu("gtx-980-b"),
            scaled_gpu("gtx-titan"),
        ],
    )
