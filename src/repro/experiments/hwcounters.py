"""Shared hardware-counter simulations behind Figures 8–11.

The four counter figures of the paper all come from the same setup:
the default workload on 10 physical cores, once packed onto one socket
and once split evenly over two.  This module runs (and caches) those
eight simulations; the per-figure modules format slices of them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.experiments.runner import build_run
from repro.experiments.workloads import (
    DEFAULT_D,
    DEFAULT_DIST,
    DEFAULT_N,
    scaled_cpu,
)
from repro.hardware.simulate import CPUSimulation, simulate_cpu

__all__ = ["counter_simulations", "ALGORITHMS", "LABELS"]

ALGORITHMS = ("pqskycube", "stsc", "sdsc-cpu", "mdmc-cpu")
LABELS = {"pqskycube": "PQ", "stsc": "ST", "sdsc-cpu": "SD", "mdmc-cpu": "MD"}

#: Figures 8–11 use 10 cores (no HT) — one socket vs two.
THREADS = 10


@lru_cache(maxsize=None)
def counter_simulations() -> Dict[Tuple[str, int], CPUSimulation]:
    """``{(algorithm, sockets): simulation}`` for the default workload."""
    cpu = scaled_cpu()
    simulations: Dict[Tuple[str, int], CPUSimulation] = {}
    for algorithm in ALGORITHMS:
        run_trace = build_run(algorithm, DEFAULT_DIST, DEFAULT_N, DEFAULT_D)
        for sockets in (1, 2):
            simulations[(algorithm, sockets)] = simulate_cpu(
                run_trace, cpu, threads=THREADS, sockets=sockets
            )
    return simulations
