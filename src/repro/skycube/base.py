"""Common interface and execution traces of skycube algorithms.

A skycube algorithm materialises the full (or partial) skycube and, in
doing so, produces an *execution trace*: the phases it went through
(lattice levels, filter/refine sweeps), the parallel tasks within each
phase and the counters/memory profile of each task.  The simulated
hardware layer replays the trace against a device configuration to
obtain makespans and hardware counters; the result itself is always the
real, exact skycube.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.skycube import Skycube
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile

__all__ = ["TaskTrace", "PhaseTrace", "SkycubeRun", "SkycubeAlgorithm"]


@dataclass
class TaskTrace:
    """One parallel work item: a cuboid computation or a point task."""

    label: str
    counters: Counters
    profile: MemoryProfile = field(default_factory=MemoryProfile)
    #: For device-parallel tasks (SDSC): per-subtask work units from
    #: which a device simulator derives the intra-task makespan.
    subtask_units: Optional[List[int]] = None


@dataclass
class PhaseTrace:
    """A group of tasks separated from the next group by a barrier."""

    name: str
    tasks: List[TaskTrace] = field(default_factory=list)

    def total_counters(self) -> Counters:
        total = Counters()
        for task in self.tasks:
            total.merge(task.counters)
        return total


@dataclass
class SkycubeRun:
    """A materialised skycube plus the trace that produced it."""

    skycube: Skycube
    counters: Counters
    phases: List[PhaseTrace] = field(default_factory=list)
    algorithm: str = ""

    def total_tasks(self) -> int:
        return sum(len(phase.tasks) for phase in self.phases)

    def peak_memory_bytes(self) -> int:
        """Largest simultaneous working set across phases."""
        peak = 0
        for phase in self.phases:
            total = MemoryProfile()
            for task in phase.tasks:
                total.merge(task.profile)
            peak = max(peak, total.total_working_set())
        return peak + self.skycube.memory_bytes()


class SkycubeAlgorithm(ABC):
    """Base class: materialise the skycube of a dataset."""

    name: str = "abstract"

    def materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int] = None,
        counters: Optional[Counters] = None,
    ) -> SkycubeRun:
        """Compute the skycube (levels ≤ ``max_level`` if given)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"data must be a non-empty 2-D array, got shape {data.shape}"
            )
        if np.isnan(data).any():
            raise ValueError(
                "data contains NaN: dominance is undefined for NaN values"
            )
        d = data.shape[1]
        if max_level is not None and not 1 <= max_level <= d:
            raise ValueError(f"max_level must be in [1, {d}], got {max_level}")
        counters = counters if counters is not None else Counters()
        run = self._materialise(data, max_level, counters)
        run.algorithm = self.name
        return run

    @abstractmethod
    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        """Algorithm body; inputs validated."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
