"""QSkycube and PQSkycube — the sequential state of the art + baseline.

QSkycube (Lee & Hwang) is the top-down lattice traversal with BSkyTree
point-based partitioning per cuboid.  PQSkycube is the paper's baseline
parallelisation (Section 7.1): a parallel pragma over the cuboids of
each lattice level — structurally identical work, but the per-cuboid
pointer-based quad trees are kept alive across levels and shared
between threads, which is exactly what makes it memory-bound as cores
scale (Figures 5, 8–11).

Both classes produce identical skycubes; they differ in the execution
trace handed to the hardware simulator:

* QSkycube's trace is replayed single-threaded and frees each tree as
  soon as the cuboid finishes (small resident set);
* PQSkycube's trace marks one task per cuboid with the retained parent
  trees as *shared pointer* bytes and the thread-private trees as
  private pointer bytes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.skycube import Skycube
from repro.instrument.counters import Counters
from repro.skycube.base import SkycubeAlgorithm, SkycubeRun
from repro.skycube.topdown import top_down_lattice
from repro.skyline.bskytree import BSkyTree

__all__ = ["QSkycube", "PQSkycube"]


class QSkycube(SkycubeAlgorithm):
    """Sequential top-down skycube with BSkyTree cuboid computation."""

    name = "qskycube"
    #: Trees of finished cuboids are freed immediately when running
    #: sequentially; the parallel baseline overrides this.
    retain_parent_trees = False

    def __init__(self, leaf_threshold: int = 8):
        self._hook = BSkyTree(leaf_threshold)

    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        lattice, phases = top_down_lattice(
            data, self._hook, counters, max_level
        )
        if self.retain_parent_trees:
            self._mark_shared_trees(data.shape[1], phases)
        skycube = Skycube(lattice, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, phases)

    def _mark_shared_trees(self, d: int, phases) -> None:
        """Attribute retained parent trees as shared pointer bytes.

        PQSkycube keeps the quad trees of the previous lattice level
        resident so children can reuse them; every task of a level
        therefore shares read access to all trees built one level up.
        """
        previous_tree_bytes = 0
        for phase in phases:
            level_tree_bytes = sum(
                task.profile.pointer_bytes for task in phase.tasks
            )
            for task in phase.tasks:
                task.profile.shared_pointer_bytes = previous_tree_bytes
            previous_tree_bytes = level_tree_bytes


class PQSkycube(QSkycube):
    """The paper's baseline: QSkycube with parallel per-level pragmas.

    Identical per-cuboid work (Figure 4 shows it introduces no overhead
    and a minor speed-up from earlier memory freeing); the hardware
    simulator parallelises each level's tasks across threads, where the
    retained, pointer-based, cross-thread-shared trees become the
    bottleneck the paper dissects.
    """

    name = "pqskycube"
    retain_parent_trees = True
