"""Bottom-up skycube construction (BUS/Orion-style baseline).

The strategy the top-down algorithms superseded (Section 3): traverse
the lattice from single-dimension subspaces upward.  Skylines of child
subspaces seed each cuboid's candidate window, but — unlike top-down —
every cuboid must still scan the *full dataset*, because a point
dominated in every child subspace can reappear in the parent skyline.
That ``2**d - 1`` full scans is exactly the cost profile the paper
cites to motivate top-down traversal; we keep this implementation as
the historical baseline and for the traversal-direction ablation bench.

Duplicate accommodation: child skylines are only *seeds* for the BNL
window (never assumed final), so ties in attribute values — which break
the classic ``S_δ′ ⊆ S_δ`` containment — cannot corrupt results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bitmask import (
    format_mask,
    immediate_subspaces,
    subspaces_at_level,
)
from repro.core.lattice import Lattice
from repro.core.skycube import Skycube
from repro.instrument.counters import Counters
from repro.skycube.base import PhaseTrace, SkycubeAlgorithm, SkycubeRun, TaskTrace
from repro.skyline.bnl import BlockNestedLoops

__all__ = ["BottomUpSkycube"]


class BottomUpSkycube(SkycubeAlgorithm):
    """Breadth-first bottom-up traversal with child-seeded BNL."""

    name = "bottomup"

    def __init__(self):
        self._bnl = BlockNestedLoops()

    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        d = data.shape[1]
        top = d if max_level is None else max_level
        lattice = Lattice(d)
        phases = []
        all_ids = list(range(len(data)))

        for level in range(1, top + 1):
            phase = PhaseTrace(f"level-{level}")
            for delta in subspaces_at_level(d, level):
                # Seed the scan order with child skylines: likely
                # survivors enter the window first and reject the rest
                # of the full scan quickly.
                seeds = []
                seen = set()
                for child in immediate_subspaces(delta):
                    for pid in lattice.skyline(child):
                        if pid not in seen:
                            seen.add(pid)
                            seeds.append(pid)
                ordered = seeds + [pid for pid in all_ids if pid not in seen]
                task_counters = Counters()
                result = self._bnl.compute(data, ordered, delta, task_counters)
                counters.merge(task_counters)
                lattice.set_cuboid(delta, result.skyline, result.extended_only)
                phase.tasks.append(
                    TaskTrace(
                        label=f"δ={format_mask(delta, d)}",
                        counters=task_counters,
                        profile=result.profile,
                    )
                )
            counters.sync_points += 1
            phases.append(phase)

        skycube = Skycube(lattice, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, phases)
