"""Distributed skycube construction (Veloso et al., simulated).

Before this paper, the only parallel skycube algorithm was a
distributed version of the bottom-up Orion algorithm on the Anthill
dataflow framework (Section 3) — designed for a cluster, "not designed
for a single node".  This module simulates that design point so the
shared-memory templates have their historical baseline:

* the dataset is horizontally partitioned across ``workers``;
* every cuboid (bottom-up, as Orion requires) is computed as a
  filter/aggregate dataflow: each worker computes the *local* skyline
  and extended skyline of its partition, ships them to an aggregator,
  and the aggregator merges — sound because any global dominator
  survives its own partition's local skyline;
* communication volume and message counts are recorded in the run's
  counters (``messages``, ``bytes_shipped``), the quantities a
  cluster deployment pays that shared memory does not.

The execution trace marks worker computations as parallel tasks and
the aggregation as a serial task per cuboid, so the CPU simulator can
replay it; the communication costs are reported, not simulated (no
network model is pretended).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.bitmask import format_mask, subspaces_at_level
from repro.core.lattice import Lattice
from repro.core.skycube import Skycube
from repro.instrument.counters import Counters
from repro.skycube.base import PhaseTrace, SkycubeAlgorithm, SkycubeRun, TaskTrace
from repro.skyline.sfs import SortFilterSkyline

__all__ = ["DistributedSkycube"]


class DistributedSkycube(SkycubeAlgorithm):
    """Bottom-up distributed skycube (filter/aggregate dataflow)."""

    name = "distributed"

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._local = SortFilterSkyline()

    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        d = data.shape[1]
        top = d if max_level is None else max_level
        n = len(data)
        workers = min(self.workers, n)
        partitions = [
            [int(i) for i in chunk]
            for chunk in np.array_split(np.arange(n), workers)
        ]
        lattice = Lattice(d)
        phases: List[PhaseTrace] = []

        for level in range(1, top + 1):
            phase = PhaseTrace(f"level-{level}")
            for delta in subspaces_at_level(d, level):
                k = bin(delta).count("1")
                locals_: List = []
                for worker, partition in enumerate(partitions):
                    task_counters = Counters()
                    result = self._local.compute(
                        data, partition, delta, task_counters
                    )
                    counters.merge(task_counters)
                    locals_.append(result)
                    phase.tasks.append(
                        TaskTrace(
                            label=f"δ={format_mask(delta, d)}@w{worker}",
                            counters=task_counters,
                            profile=result.profile,
                        )
                    )
                # Ship local results to the aggregator.
                shipped_ids = sum(len(r.extended) for r in locals_)
                counters.extra["messages"] = (
                    counters.extra.get("messages", 0) + len(locals_)
                )
                counters.extra["bytes_shipped"] = (
                    counters.extra.get("bytes_shipped", 0)
                    + shipped_ids * 8 * k
                )
                # Aggregate: the skyline of the union of local results.
                merge_counters = Counters()
                union = sorted(
                    {pid for result in locals_ for pid in result.extended}
                )
                merged = self._local.compute(data, union, delta, merge_counters)
                counters.merge(merge_counters)
                phase.tasks.append(
                    TaskTrace(
                        label=f"δ={format_mask(delta, d)}@agg",
                        counters=merge_counters,
                        profile=merged.profile,
                    )
                )
                lattice.set_cuboid(delta, merged.skyline, merged.extended_only)
            counters.sync_points += 1
            phases.append(phase)

        skycube = Skycube(lattice, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, phases)
