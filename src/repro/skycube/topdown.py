"""Shared top-down lattice traversal (Algorithms 1 and 2, lines 1–6).

QSkycube, PQSkycube, STSC and SDSC all follow the same control flow:
materialise the full space first, then walk the lattice level by level,
computing each cuboid δ from the smallest immediate superspace's
``S ∪ S+`` instead of from the raw dataset.  What differs between them
is *which skyline algorithm* runs per cuboid and *how tasks map onto
hardware* — both of which this helper leaves to the caller via the
per-cuboid hook and the returned per-level traces.

Partial skycubes (Appendix A.2): when ``max_level < d`` the traversal
starts at level ``max_level``, feeding every cuboid of that level the
full-space *extended skyline* as reduced input (computing the skipped
upper levels would be wasted work, but the extended skyline of the full
space still contains every lower skyline).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.bitmask import (
    format_mask,
    full_space,
    immediate_superspaces,
    subspaces_at_level,
)
from repro.core.lattice import Lattice
from repro.instrument.counters import Counters
from repro.skycube.base import PhaseTrace, TaskTrace
from repro.skyline.base import SkylineAlgorithm

__all__ = ["top_down_lattice", "select_parent"]

#: Hook signature: (data, input_ids, delta) -> SkylineResult.
CuboidHook = Callable[[np.ndarray, List[int], int], "object"]


def select_parent(
    lattice: Lattice, delta: int, d: int, rule: str = "smallest"
) -> int:
    """Line 5 of Algorithms 1/2: choose the parent cuboid to read from.

    ``rule="smallest"`` is the paper's argmin over ``|L| + |L+|``;
    ``rule="first"`` takes the first materialised superspace (the
    ablation bench quantifies what the argmin buys).  Ties break
    towards the numerically smallest superspace so runs are
    deterministic.
    """
    best = None
    best_size = None
    for parent in immediate_superspaces(delta, d):
        if not lattice.has_cuboid(parent):
            continue
        if rule == "first":
            return parent
        size = lattice.input_size(parent)
        if best_size is None or size < best_size:
            best, best_size = parent, size
    if best is None:
        raise ValueError(
            f"no materialised parent for subspace {delta:#b}; "
            "was the previous level computed?"
        )
    return best


def top_down_lattice(
    data: np.ndarray,
    algorithm: SkylineAlgorithm,
    counters: Counters,
    max_level: Optional[int] = None,
    free_finished_levels: bool = True,
    parent_rule: str = "smallest",
) -> Tuple[Lattice, List[PhaseTrace]]:
    """Materialise a lattice top-down with ``algorithm`` per cuboid.

    Returns the complete (or partial) lattice plus one
    :class:`PhaseTrace` per synchronisation region: the initial
    full-space computation and then one per lattice level.
    ``free_finished_levels`` drops the construction-only extended ids
    two levels behind the frontier (PQSkycube's memory optimisation).
    """
    d = data.shape[1]
    top = d if max_level is None else max_level
    lattice = Lattice(d)
    phases: List[PhaseTrace] = []

    # Phase 0: the root input.  For a full skycube this is the top
    # cuboid itself; for a partial one, just the full-space extended
    # skyline used as reduced input for level `top`.
    all_ids = list(range(len(data)))
    root_counters = Counters()
    root_result = algorithm.compute(data, all_ids, full_space(d), root_counters)
    counters.merge(root_counters)
    root_phase = PhaseTrace("root")
    root_phase.tasks.append(
        TaskTrace(
            label=f"δ={format_mask(full_space(d), d)}",
            counters=root_counters,
            profile=root_result.profile,
            subtask_units=root_result.task_units,
        )
    )
    counters.sync_points += 1
    phases.append(root_phase)

    if top == d:
        lattice.set_cuboid(full_space(d), root_result.skyline, root_result.extended_only)
        start_level = d - 1
    else:
        # Partial skycube: stash the reduced input under the full-space
        # key for parent selection, then remove it afterwards.
        lattice.set_cuboid(full_space(d), root_result.skyline, root_result.extended_only)
        start_level = top

    levels_computed: List[int] = []
    for level in range(start_level, 0, -1):
        phase = PhaseTrace(f"level-{level}")
        for delta in subspaces_at_level(d, level):
            if top < d and level == top:
                parent = full_space(d)
            else:
                parent = select_parent(lattice, delta, d, parent_rule)
            input_ids = list(lattice.skyline(parent)) + list(
                lattice.extended_only(parent)
            )
            task_counters = Counters()
            result = algorithm.compute(data, input_ids, delta, task_counters)
            counters.merge(task_counters)
            lattice.set_cuboid(delta, result.skyline, result.extended_only)
            phase.tasks.append(
                TaskTrace(
                    label=f"δ={format_mask(delta, d)}",
                    counters=task_counters,
                    profile=result.profile,
                    subtask_units=result.task_units,
                )
            )
        counters.sync_points += 1
        phases.append(phase)
        levels_computed.append(level)
        if free_finished_levels and len(levels_computed) >= 2:
            for old in subspaces_at_level(d, levels_computed[-2] + 1):
                if lattice.has_cuboid(old):
                    lattice.drop_extended(old)

    if top < d:
        # A partial build stashed the reduced root input under the
        # full-space key for parent selection; remove it again.
        lattice.remove_cuboid(full_space(d))

    return lattice, phases
