"""Skycube algorithms: baselines and shared traversal machinery."""

from repro.skycube.base import (
    PhaseTrace,
    SkycubeAlgorithm,
    SkycubeRun,
    TaskTrace,
)
from repro.skycube.bottom_up import BottomUpSkycube
from repro.skycube.distributed import DistributedSkycube
from repro.skycube.qskycube import PQSkycube, QSkycube
from repro.skycube.topdown import select_parent, top_down_lattice

__all__ = [
    "PhaseTrace",
    "SkycubeAlgorithm",
    "SkycubeRun",
    "TaskTrace",
    "BottomUpSkycube",
    "DistributedSkycube",
    "QSkycube",
    "PQSkycube",
    "select_parent",
    "top_down_lattice",
]
