"""Command-line interface to the library.

Examples::

    # one skyline query over a dataset file (text or .npy)
    python -m repro skyline flights.txt --subspace 0b011

    # materialise a skycube and save it, or print chosen subspaces
    python -m repro skycube data.npy --algorithm mdmc-cpu --show 0b101 0b110

    # generate a benchmark dataset
    python -m repro generate anticorrelated 10000 8 --out data.npy

    # dataset statistics (Table-2 style)
    python -m repro stats data.npy

    # serve a skycube over TCP, then query it
    python -m repro serve data.npy --port 7171 --window-ms 2
    python -m repro query skyline --subspace 0b011 --port 7171
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _parse_subspace(text: str, d: int) -> int:
    """CLI wrapper over :func:`repro.core.bitmask.parse_subspace`."""
    from repro.core.bitmask import parse_subspace

    try:
        return parse_subspace(text, d)
    except ValueError as error:
        raise SystemExit(str(error))


def _load(path: str) -> np.ndarray:
    from repro.data.io import load_dataset

    try:
        return load_dataset(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load {path}: {error}")


def cmd_skyline(args) -> int:
    from repro.engine import fast_extended_skyline, fast_skyline

    data = _load(args.dataset)
    delta = (
        _parse_subspace(args.subspace, data.shape[1])
        if args.subspace
        else None
    )
    ids = (
        fast_extended_skyline(data, delta)
        if args.extended
        else fast_skyline(data, delta)
    )
    kind = "extended skyline" if args.extended else "skyline"
    print(f"{kind}: {len(ids)} of {len(data)} points")
    print(" ".join(str(int(i)) for i in ids))
    return 0


def cmd_skycube(args) -> int:
    from repro.experiments.runner import ALGORITHM_KEYS
    from repro.experiments.runner import _builder  # noqa: SLF001

    data = _load(args.dataset)
    if args.algorithm not in ALGORITHM_KEYS:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{', '.join(ALGORITHM_KEYS)}"
        )
    try:
        builder = _builder(
            args.algorithm, args.executor, args.workers, args.engine,
            args.backend,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    run = builder.materialise(data, max_level=args.max_level)
    cube = run.skycube
    subspaces = list(cube.subspaces())
    detail = "" if args.executor == "serial" else f", executor={args.executor}"
    if args.engine is not None:
        detail += f", engine={args.engine}"
    if args.backend is not None:
        detail += f", backend={args.backend}"
    print(
        f"materialised {len(subspaces)} subspace skylines with "
        f"{args.algorithm} ({run.counters.dominance_tests} dominance tests"
        f"{detail})"
    )
    for text in args.show:
        delta = _parse_subspace(text, data.shape[1])
        ids = cube.skyline(delta)
        print(f"S_{delta:#b}: {len(ids)} points: "
              + " ".join(str(i) for i in ids))
    return 0


def cmd_backends(args) -> int:
    """``python -m repro backends`` — probed kernel-backend matrix."""
    from repro.engine.jit import probe_backends

    probes = probe_backends(refresh=args.refresh)
    if args.json:
        import json as _json

        print(_json.dumps([
            {
                "name": probe.name,
                "device": probe.device,
                "available": probe.available,
                "detail": probe.detail,
            }
            for probe in probes
        ], indent=2))
        return 0
    width = max(len(probe.name) for probe in probes)
    for probe in probes:
        status = "available" if probe.available else "unavailable"
        print(
            f"{probe.name:<{width}}  {probe.device:<3}  {status:<11}  "
            f"{probe.detail}"
        )
    return 0


def cmd_generate(args) -> int:
    from repro.data.generator import generate
    from repro.data.io import save_dataset

    data = generate(
        args.distribution, args.n, args.d, seed=args.seed,
        distinct_values=args.distinct_values,
    )
    save_dataset(data, args.out)
    print(f"wrote {args.n} x {args.d} ({args.distribution}) to {args.out}")
    return 0


def cmd_stats(args) -> int:
    from repro.engine import fast_extended_skyline, fast_skyline

    data = _load(args.dataset)
    n, d = data.shape
    skyline = fast_skyline(data)
    extended = fast_extended_skyline(data)
    print(f"n={n} d={d}")
    print(f"|S|  = {len(skyline)} ({100 * len(skyline) / n:.1f} %)")
    print(f"|S+| = {len(extended)} ({100 * len(extended) / n:.1f} %)")
    for j in range(d):
        print(f"dim {j}: {len(np.unique(data[:, j]))} distinct values")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.config import (
        DEFAULT_PROFILE,
        ProfileError,
        apply_filter_gates,
        load_profile,
    )
    from repro.serve import (
        LiveUpdater,
        ServeMetrics,
        ServingSnapshot,
        SkycubeService,
        SnapshotHolder,
        run_server,
    )
    from repro.trace import (
        NULL_TRACER,
        JsonlTracer,
        install_executor_sink,
        uninstall_executor_sink,
    )

    if args.profile:
        try:
            profile = load_profile(args.profile)
        except ProfileError as error:
            raise SystemExit(str(error))
    else:
        profile = DEFAULT_PROFILE
    apply_filter_gates(profile)

    # Precedence: explicit CLI flag > profile > built-in default.  The
    # argparse defaults are None sentinels so "flag was given" is
    # detectable; the profile section defaults ARE the old CLI
    # defaults, so no profile reproduces the old behaviour exactly.
    def knob(flag, section_value):
        return flag if flag is not None else section_value

    host = knob(args.host, profile.serve.host)
    port = knob(args.port, profile.serve.port)
    window_ms = knob(args.window_ms, profile.serve.window_ms)
    max_batch = knob(args.max_batch, profile.serve.max_batch)
    max_pending = knob(args.max_pending, profile.serve.max_pending)
    max_level = knob(args.max_level, profile.serve.max_level)
    # ``engine_choice`` stays None when neither flag nor profile set
    # it, so each tier can apply its own default bootstrap engine.
    engine_choice = knob(args.engine, profile.engine.engine)
    engine = engine_choice if engine_choice is not None else "packed"
    backend = knob(args.backend, profile.engine.backend)
    live = args.live or profile.serve.live
    compact_every = knob(args.compact_every, profile.serve.compact_every)
    trace_path = knob(args.trace, profile.trace.path)
    shards = knob(args.shards, profile.shard.shards)
    partitioner = knob(args.partitioner, profile.shard.partitioner)

    if shards < 0:
        raise SystemExit(f"--shards must be >= 0, got {shards}")
    if shards > 0:
        if live:
            raise SystemExit(
                "--live is not supported with --shards (the sharded "
                "tier serves a static dataset)"
            )
        if args.snapshot:
            raise SystemExit(
                "--snapshot is not supported with --shards (shards "
                "materialise their own local snapshots)"
            )
        return _serve_sharded(
            args, profile, shards=shards, partitioner=partitioner,
            host=host, port=port, window_ms=window_ms,
            max_batch=max_batch, max_pending=max_pending,
            max_level=max_level,
            engine=(
                engine_choice if engine_choice is not None
                else "packed-filtered"
            ),
            backend=backend,
            trace_path=trace_path,
        )

    if args.snapshot:
        from repro.core.serialize import load_skycube

        try:
            skycube = load_skycube(args.snapshot)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot load snapshot {args.snapshot}: {error}")
        data = _load(args.dataset)
        if data.shape[1] != skycube.d:
            raise SystemExit(
                f"snapshot is {skycube.d}-dimensional but dataset has "
                f"{data.shape[1]} columns"
            )
        holder = SnapshotHolder(
            ServingSnapshot(
                skycube.as_hashcube(), data, max_level=skycube.max_level
            )
        )
        updater = None
        if live:
            raise SystemExit(
                "--live rebuilds from the dataset; drop --snapshot"
            )
    # The tracer exists before the updater so the write path's
    # publish/compact spans are traced from the very first mutation.
    tracer = (
        JsonlTracer(trace_path, flush_every=profile.trace.flush_every)
        if trace_path
        else NULL_TRACER
    )
    if tracer.enabled:
        install_executor_sink(tracer.executor_sink())
    if not args.snapshot:
        data = _load(args.dataset)
        if live:
            updater, holder = LiveUpdater.bootstrap(
                data, compact_every=compact_every, tracer=tracer
            )
        else:
            updater = None
            holder = SnapshotHolder(
                ServingSnapshot.build(
                    data, max_level=max_level, engine=engine,
                    backend=backend,
                )
            )
    service = SkycubeService(
        holder,
        window=window_ms / 1000.0,
        max_batch=max_batch,
        max_pending=max_pending,
        metrics=ServeMetrics(),
        updater=updater,
        tracer=tracer,
    )
    if args.profile:
        print(profile.describe())
    print(
        f"serving n={len(holder.current)} d={holder.current.d} "
        f"(window={window_ms}ms, max_batch={max_batch}, "
        f"max_pending={max_pending}, "
        f"live={'on' if updater else 'off'}, "
        f"trace={trace_path or 'off'})"
    )
    try:
        asyncio.run(run_server(service, host=host, port=port))
    finally:
        if tracer.enabled:
            uninstall_executor_sink()
            tracer.close()
    return 0


def _serve_sharded(
    args, profile, *, shards, partitioner, host, port, window_ms,
    max_batch, max_pending, max_level, engine, backend, trace_path,
) -> int:
    """``serve --shards N``: the scatter–gather tier behind the same
    TCP server, client and query CLI as the single-process path."""
    import asyncio

    from repro.serve import ServeMetrics, run_server
    from repro.shard import ShardCoordinator, ShardPlan, ShardService
    from repro.trace import NULL_TRACER, JsonlTracer

    data = _load(args.dataset)
    try:
        plan = ShardPlan.build(data, shards, partitioner=partitioner)
    except ValueError as error:
        raise SystemExit(str(error))
    tracer = (
        JsonlTracer(trace_path, flush_every=profile.trace.flush_every)
        if trace_path
        else NULL_TRACER
    )
    coordinator = ShardCoordinator(
        data, plan, engine=engine, max_level=max_level, backend=backend,
        timeout=profile.shard.worker_timeout_s, tracer=tracer,
    )
    service = ShardService(
        coordinator,
        window=window_ms / 1000.0,
        max_batch=max_batch,
        max_pending=max_pending,
        metrics=ServeMetrics(),
        tracer=tracer,
    )
    if args.profile:
        print(profile.describe())
    print(
        f"serving n={plan.n} d={plan.d} "
        f"(shards={plan.shards}, partitioner={plan.partitioner}, "
        f"sizes={plan.sizes}, window={window_ms}ms, "
        f"max_batch={max_batch}, max_pending={max_pending}, "
        f"trace={trace_path or 'off'})"
    )
    try:
        asyncio.run(run_server(service, host=host, port=port))
    finally:
        if tracer.enabled:
            tracer.close()
    return 0


def cmd_trace(args) -> int:
    from repro.trace import FAILURE_CLASSES
    from repro.trace.analyze import analyze_file, format_report

    try:
        report = analyze_file(args.trace_file)
    except OSError as error:
        raise SystemExit(f"cannot read trace {args.trace_file}: {error}")
    fail_on = []
    if args.fail_on:
        known = set(FAILURE_CLASSES) | {"unclassified"}
        for name in args.fail_on.split(","):
            name = name.strip()
            if not name:
                continue
            if name not in known:
                raise SystemExit(
                    f"unknown failure class {name!r}; known: "
                    + ", ".join(sorted(known))
                )
            fail_on.append(name)
    if args.json:
        import json as _json

        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(format_report(report, top=args.top))
    offending = report.present_classes(fail_on)
    if offending:
        print(
            "trace analyze: failing on "
            + ", ".join(sorted(offending)),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_query(args) -> int:
    from repro.serve import ServeClient, ServeError

    try:
        client = ServeClient(args.host, args.port, timeout=args.timeout)
    except OSError as error:
        raise SystemExit(f"cannot connect to {args.host}:{args.port}: {error}")
    with client:
        try:
            if args.diff is not None:
                if not args.subspace:
                    raise SystemExit("--diff needs --subspace")
                parts = args.diff.split(":")
                try:
                    v_from, v_to = (int(part.lstrip("v")) for part in parts)
                except ValueError:
                    raise SystemExit(
                        f"--diff wants V1:V2 (e.g. 3:7), got {args.diff!r}"
                    )
                changes = client.skyline_diff(args.subspace, v_from, v_to)
                print(
                    f"S_{args.subspace} v{v_from} -> v{v_to}: "
                    f"+{len(changes['entered'])} -{len(changes['left'])}"
                )
                if changes["entered"]:
                    print("entered: " + " ".join(
                        str(i) for i in changes["entered"]))
                if changes["left"]:
                    print("left:    " + " ".join(
                        str(i) for i in changes["left"]))
            elif args.what == "skyline":
                if not args.subspace:
                    raise SystemExit("skyline needs --subspace")
                ids = client.skyline(args.subspace)
                print(f"S_{args.subspace}: {len(ids)} points")
                print(" ".join(str(i) for i in ids))
            elif args.what == "membership":
                if args.point_id is None or not args.subspace:
                    raise SystemExit("membership needs --point-id and --subspace")
                member = client.membership(args.point_id, args.subspace)
                print(
                    f"point {args.point_id} "
                    f"{'in' if member else 'not in'} S_{args.subspace}"
                )
            elif args.what == "topk":
                if not args.q:
                    raise SystemExit("topk needs --q")
                q = [float(part) for part in args.q.split(",")]
                ids = client.topk_dynamic(q, k=args.k, delta=args.subspace)
                print(f"top-{args.k} dynamic: " + " ".join(str(i) for i in ids))
            elif args.what == "metrics":
                import json as _json

                print(_json.dumps(client.metrics(), indent=2))
            else:  # ping
                info = client.ping()
                print(f"ok: n={info['n']} d={info['d']}")
        except ServeError as error:
            raise SystemExit(f"server error — {error}")
        except (ConnectionError, OSError) as error:
            raise SystemExit(f"connection lost: {error}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    from repro.engine.jit import BACKEND_CHOICES, BACKEND_HELP
    from repro.engine.kernels import ENGINE_HELP, SKYCUBE_ENGINES
    from repro.shard.plan import PARTITIONER_NAMES

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Skyline and skycube computation (SIGMOD'17 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    skyline = commands.add_parser("skyline", help="one subspace skyline query")
    skyline.add_argument("dataset")
    skyline.add_argument("--subspace", help="e.g. 0b101, 5, or dims '0,2'")
    skyline.add_argument("--extended", action="store_true")
    skyline.set_defaults(handler=cmd_skyline)

    skycube = commands.add_parser("skycube", help="materialise a skycube")
    skycube.add_argument("dataset")
    skycube.add_argument("--algorithm", default="mdmc-cpu")
    skycube.add_argument("--max-level", type=int, default=None)
    skycube.add_argument("--executor", choices=["serial", "process"],
                         default="serial",
                         help="serial reference or real multicore pool")
    skycube.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: all cores)")
    skycube.add_argument("--engine", choices=SKYCUBE_ENGINES, default=None,
                         help="mdmc only — " + ENGINE_HELP
                              + " (default: instrumented per-point sweep)")
    skycube.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                         help="mdmc only — " + BACKEND_HELP)
    skycube.add_argument("--show", nargs="*", default=[],
                         help="subspaces to print")
    skycube.set_defaults(handler=cmd_skycube)

    backends = commands.add_parser(
        "backends", help="list kernel backends and their probed "
                         "availability"
    )
    backends.add_argument("--json", action="store_true",
                          help="machine-readable probe results")
    backends.add_argument("--refresh", action="store_true",
                          help="re-run the availability probes instead "
                               "of using cached results")
    backends.set_defaults(handler=cmd_backends)

    generate = commands.add_parser("generate", help="synthetic datasets")
    generate.add_argument("distribution",
                          choices=["independent", "correlated",
                                   "anticorrelated"])
    generate.add_argument("n", type=int)
    generate.add_argument("d", type=int)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--distinct-values", type=int, default=None)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=cmd_generate)

    stats = commands.add_parser("stats", help="dataset statistics")
    stats.add_argument("dataset")
    stats.set_defaults(handler=cmd_stats)

    serve = commands.add_parser(
        "serve", help="serve skycube queries over TCP (NDJSON protocol)"
    )
    # Serve knob defaults are None sentinels: the real defaults live in
    # repro.config's profile sections, so that an explicit flag beats
    # the profile, which beats the shipped default.
    serve.add_argument("dataset")
    serve.add_argument("--profile", default=None,
                       help="TOML/YAML deployment profile "
                            "(see docs/OPERATIONS.md); explicit flags "
                            "still win")
    serve.add_argument("--host", default=None,
                       help="default 127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="default 7171; 0 picks an ephemeral port")
    serve.add_argument("--window-ms", type=float, default=None,
                       help="micro-batching window, default 2.0 "
                            "(0 disables coalescing)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="default 64")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="admission bound, default 1024; beyond it "
                            "requests are shed")
    serve.add_argument("--engine", choices=SKYCUBE_ENGINES,
                       default=None,
                       help="snapshot bootstrap, default packed — "
                            + ENGINE_HELP)
    serve.add_argument("--backend", choices=BACKEND_CHOICES,
                       default=None,
                       help="snapshot-build kernel backend — "
                            + BACKEND_HELP)
    serve.add_argument("--max-level", type=int, default=None,
                       help="materialise a partial cube; higher levels "
                            "fall back to ad-hoc kernels")
    serve.add_argument("--live", action="store_true",
                       help="enable insert/delete ops via a background "
                            "SkycubeMaintainer; every mutation publishes "
                            "a copy-on-write delta snapshot and feeds "
                            "the skyline_diff changelog")
    serve.add_argument("--compact-every", type=int, default=None,
                       help="with --live: full snapshot rebuild after "
                            "this many delta generations (default 64)")
    serve.add_argument("--snapshot", default=None,
                       help="serve a pre-materialised .npz skycube "
                            "(save_skycube) instead of building one")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="append jsonl lifecycle trace events to "
                            "PATH (see docs/OPERATIONS.md)")
    serve.add_argument("--shards", type=int, default=None,
                       help="serve through N shard worker processes "
                            "(scatter-gather; default 0 = single "
                            "process, see docs/SHARDING.md)")
    serve.add_argument("--partitioner", choices=PARTITIONER_NAMES,
                       default=None,
                       help="point-to-shard strategy for --shards, "
                            "default grid")
    serve.set_defaults(handler=cmd_serve)

    trace = commands.add_parser(
        "trace", help="inspect jsonl execution traces"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    analyze = trace_commands.add_parser(
        "analyze", help="summarise a trace: taxonomy counts, stage "
                        "latencies, top offenders"
    )
    analyze.add_argument("trace_file")
    analyze.add_argument("--fail-on", default=None,
                         help="comma-separated failure classes (or "
                              "'unclassified') that flip the exit code "
                              "to 1 when present")
    analyze.add_argument("--top", type=int, default=5,
                         help="how many offending subspaces to list")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable report instead of text")
    analyze.set_defaults(handler=cmd_trace)

    query = commands.add_parser(
        "query", help="query a running serve instance"
    )
    query.add_argument("what", nargs="?", default="ping",
                       choices=["skyline", "membership", "topk",
                                "metrics", "ping"])
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7171)
    query.add_argument("--timeout", type=float, default=10.0)
    query.add_argument("--subspace", help="e.g. 0b101, 5, or dims '0,2'")
    query.add_argument("--point-id", type=int, default=None)
    query.add_argument("--q", help="comma-separated query point coordinates")
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--diff", default=None, metavar="V1:V2",
                       help="temporal skyline diff of --subspace between "
                            "two published snapshot versions (serve "
                            "--live only)")
    query.set_defaults(handler=cmd_query)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
