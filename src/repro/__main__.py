"""Command-line interface to the library.

Examples::

    # one skyline query over a dataset file (text or .npy)
    python -m repro skyline flights.txt --subspace 0b011

    # materialise a skycube and save it, or print chosen subspaces
    python -m repro skycube data.npy --algorithm mdmc-cpu --show 0b101 0b110

    # generate a benchmark dataset
    python -m repro generate anticorrelated 10000 8 --out data.npy

    # dataset statistics (Table-2 style)
    python -m repro stats data.npy
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _parse_subspace(text: str, d: int) -> int:
    """Accept '0b101', '5', or comma-separated dims '0,2'."""
    try:
        if text.startswith(("0b", "0B")):
            delta = int(text, 2)
        elif "," in text:
            from repro.core.bitmask import mask_from_dims

            delta = mask_from_dims([int(part) for part in text.split(",")])
        else:
            delta = int(text)
    except ValueError:
        raise SystemExit(f"cannot parse subspace {text!r}")
    if not 0 < delta < (1 << d):
        raise SystemExit(f"subspace {text} out of range for d={d}")
    return delta


def _load(path: str) -> np.ndarray:
    from repro.data.io import load_dataset

    try:
        return load_dataset(path)
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot load {path}: {error}")


def cmd_skyline(args) -> int:
    from repro.engine import fast_extended_skyline, fast_skyline

    data = _load(args.dataset)
    delta = (
        _parse_subspace(args.subspace, data.shape[1])
        if args.subspace
        else None
    )
    ids = (
        fast_extended_skyline(data, delta)
        if args.extended
        else fast_skyline(data, delta)
    )
    kind = "extended skyline" if args.extended else "skyline"
    print(f"{kind}: {len(ids)} of {len(data)} points")
    print(" ".join(str(int(i)) for i in ids))
    return 0


def cmd_skycube(args) -> int:
    from repro.experiments.runner import ALGORITHM_KEYS
    from repro.experiments.runner import _builder  # noqa: SLF001

    data = _load(args.dataset)
    if args.algorithm not in ALGORITHM_KEYS:
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{', '.join(ALGORITHM_KEYS)}"
        )
    try:
        builder = _builder(args.algorithm, args.executor, args.workers)
    except ValueError as error:
        raise SystemExit(str(error))
    run = builder.materialise(data, max_level=args.max_level)
    cube = run.skycube
    subspaces = list(cube.subspaces())
    backend = "" if args.executor == "serial" else f", executor={args.executor}"
    print(
        f"materialised {len(subspaces)} subspace skylines with "
        f"{args.algorithm} ({run.counters.dominance_tests} dominance tests"
        f"{backend})"
    )
    for text in args.show:
        delta = _parse_subspace(text, data.shape[1])
        ids = cube.skyline(delta)
        print(f"S_{delta:#b}: {len(ids)} points: "
              + " ".join(str(i) for i in ids))
    return 0


def cmd_generate(args) -> int:
    from repro.data.generator import generate
    from repro.data.io import save_dataset

    data = generate(
        args.distribution, args.n, args.d, seed=args.seed,
        distinct_values=args.distinct_values,
    )
    save_dataset(data, args.out)
    print(f"wrote {args.n} x {args.d} ({args.distribution}) to {args.out}")
    return 0


def cmd_stats(args) -> int:
    from repro.engine import fast_extended_skyline, fast_skyline

    data = _load(args.dataset)
    n, d = data.shape
    skyline = fast_skyline(data)
    extended = fast_extended_skyline(data)
    print(f"n={n} d={d}")
    print(f"|S|  = {len(skyline)} ({100 * len(skyline) / n:.1f} %)")
    print(f"|S+| = {len(extended)} ({100 * len(extended) / n:.1f} %)")
    for j in range(d):
        print(f"dim {j}: {len(np.unique(data[:, j]))} distinct values")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Skyline and skycube computation (SIGMOD'17 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    skyline = commands.add_parser("skyline", help="one subspace skyline query")
    skyline.add_argument("dataset")
    skyline.add_argument("--subspace", help="e.g. 0b101, 5, or dims '0,2'")
    skyline.add_argument("--extended", action="store_true")
    skyline.set_defaults(handler=cmd_skyline)

    skycube = commands.add_parser("skycube", help="materialise a skycube")
    skycube.add_argument("dataset")
    skycube.add_argument("--algorithm", default="mdmc-cpu")
    skycube.add_argument("--max-level", type=int, default=None)
    skycube.add_argument("--executor", choices=["serial", "process"],
                         default="serial",
                         help="serial reference or real multicore pool")
    skycube.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: all cores)")
    skycube.add_argument("--show", nargs="*", default=[],
                         help="subspaces to print")
    skycube.set_defaults(handler=cmd_skycube)

    generate = commands.add_parser("generate", help="synthetic datasets")
    generate.add_argument("distribution",
                          choices=["independent", "correlated",
                                   "anticorrelated"])
    generate.add_argument("n", type=int)
    generate.add_argument("d", type=int)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--distinct-values", type=int, default=None)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=cmd_generate)

    stats = commands.add_parser("stats", help="dataset statistics")
    stats.add_argument("dataset")
    stats.set_defaults(handler=cmd_stats)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
