"""Template methodology scaffolding (Section 4.1).

A *template* fixes the architecture-oblivious parts of a parallel
skycube algorithm — the shared read-only structures and the overall
control flow — and declares *hooks* for the hot parallel work.  A
*specialisation* fills the hooks for a concrete architecture ("cpu" or
"gpu" here).  A template instance therefore needs both pieces before it
can run; attempting an impossible combination (e.g. STSC on a GPU,
which has no notion of a single-threaded algorithm) raises
:class:`TemplateSpecialisationError` — faithfully to the paper, which
calls this out as a limitation of that template.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.skycube.base import SkycubeAlgorithm

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.parallel import ParallelExecutor
    from repro.instrument.counters import Counters
    from repro.skycube.base import SkycubeRun
    from repro.skyline.base import SkylineAlgorithm

__all__ = ["SkycubeTemplate", "TemplateSpecialisationError", "ARCHITECTURES"]

ARCHITECTURES = ("cpu", "gpu")


class TemplateSpecialisationError(ValueError):
    """A template cannot be specialised for the requested architecture."""


class SkycubeTemplate(SkycubeAlgorithm):
    """Base class of the three parallel skycube templates.

    Besides the architecture *specialisation* (which hooks fill the
    template), every template carries an execution *backend*:
    ``executor="serial"`` runs the instrumented reference
    implementation on one thread (producing the operation counts the
    simulated hardware layer replays), while ``executor="process"``
    runs the same work genuinely in parallel on ``workers`` cores via
    :mod:`repro.engine.parallel` — bit-identical results, real wall
    clock, empty per-task counters.
    """

    #: Architectures this template can be specialised for.
    supported_architectures = ARCHITECTURES

    def __init__(
        self,
        specialisation: str = "cpu",
        executor: str = "serial",
        workers: Optional[int] = None,
    ) -> None:
        from repro.engine.parallel import EXECUTORS

        specialisation = specialisation.lower()
        if specialisation not in ARCHITECTURES:
            raise TemplateSpecialisationError(
                f"unknown architecture {specialisation!r}; "
                f"expected one of {ARCHITECTURES}"
            )
        if specialisation not in self.supported_architectures:
            raise TemplateSpecialisationError(
                f"{type(self).__name__} cannot be specialised for "
                f"{specialisation!r} (supports {self.supported_architectures})"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.specialisation = specialisation
        self.executor = executor
        self.workers = workers

    def _validate_hook(self, hook: "SkylineAlgorithm") -> None:
        """Reject hook/architecture mismatches at construction time.

        A specialisation is only meaningful when its hook actually runs
        on the chosen architecture: hooking, say, the GPU-only SkyAlign
        into a CPU template would silently execute a simulated-GPU cost
        model on CPU counters.  Skyline algorithms default to
        ``architecture="cpu"``; GPU-only ones declare ``"gpu"``.
        """
        hook_arch = getattr(hook, "architecture", "cpu")
        if hook_arch != self.specialisation:
            raise TemplateSpecialisationError(
                f"{type(self).__name__}({self.specialisation!r}) cannot hook "
                f"{type(hook).__name__} ({hook.name!r}): it is a "
                f"{hook_arch}-only algorithm; pick a hook whose "
                f"architecture matches the specialisation"
            )

    def set_hook(
        self,
        hook: "SkylineAlgorithm",
        attr: str = "hook",
        require_parallel: bool = False,
    ) -> "SkylineAlgorithm":
        """Validate and install a hook — the one sanctioned assignment.

        Every hook attribute of a template goes through here (skylint's
        SKY003 rejects bare ``self.hook = ...`` in specialisations), so
        no constructed template can pair a hook with an architecture it
        does not run on.  ``require_parallel`` additionally demands a
        device-parallel algorithm (SDSC's whole-device cuboid hook).
        """
        if require_parallel and not hook.parallel:
            raise TemplateSpecialisationError(
                f"{type(self).__name__} needs a parallel skyline "
                f"algorithm as hook; {hook.name!r} is single-threaded"
            )
        self._validate_hook(hook)
        setattr(self, attr, hook)
        return hook

    def _make_executor(self) -> "ParallelExecutor":
        """The :class:`~repro.engine.parallel.ParallelExecutor` to use."""
        from repro.engine.parallel import ParallelExecutor

        return ParallelExecutor(workers=self.workers)

    def _materialise_process(
        self,
        data: "np.ndarray",
        max_level: Optional[int],
        counters: "Counters",
    ) -> "SkycubeRun":
        """Shared process-backend body of the lattice templates.

        STSC and SDSC differ only in *what runs inside a cuboid task*
        (a single thread vs a whole device); on the real process
        backend both dispatch whole cuboids with the vectorized kernels
        as the in-worker hook, so they share this path.  MDMC overrides
        it with its point-block dispatch.
        """
        from repro.core.skycube import Skycube
        from repro.engine.parallel import parallel_lattice
        from repro.skycube.base import SkycubeRun

        executor = self._make_executor()
        lattice, phases = parallel_lattice(data, executor, max_level)
        counters.tasks += sum(len(phase.tasks) for phase in phases)
        counters.sync_points += len(phases)
        skycube = Skycube(lattice, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, phases)

    def __repr__(self) -> str:
        extra = "" if self.executor == "serial" else f", executor={self.executor!r}"
        return f"{type(self).__name__}(specialisation={self.specialisation!r}{extra})"
