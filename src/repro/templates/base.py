"""Template methodology scaffolding (Section 4.1).

A *template* fixes the architecture-oblivious parts of a parallel
skycube algorithm — the shared read-only structures and the overall
control flow — and declares *hooks* for the hot parallel work.  A
*specialisation* fills the hooks for a concrete architecture ("cpu" or
"gpu" here).  A template instance therefore needs both pieces before it
can run; attempting an impossible combination (e.g. STSC on a GPU,
which has no notion of a single-threaded algorithm) raises
:class:`TemplateSpecialisationError` — faithfully to the paper, which
calls this out as a limitation of that template.
"""

from __future__ import annotations

from repro.skycube.base import SkycubeAlgorithm

__all__ = ["SkycubeTemplate", "TemplateSpecialisationError", "ARCHITECTURES"]

ARCHITECTURES = ("cpu", "gpu")


class TemplateSpecialisationError(ValueError):
    """A template cannot be specialised for the requested architecture."""


class SkycubeTemplate(SkycubeAlgorithm):
    """Base class of the three parallel skycube templates."""

    #: Architectures this template can be specialised for.
    supported_architectures = ARCHITECTURES

    def __init__(self, specialisation: str = "cpu"):
        specialisation = specialisation.lower()
        if specialisation not in ARCHITECTURES:
            raise TemplateSpecialisationError(
                f"unknown architecture {specialisation!r}; "
                f"expected one of {ARCHITECTURES}"
            )
        if specialisation not in self.supported_architectures:
            raise TemplateSpecialisationError(
                f"{type(self).__name__} cannot be specialised for "
                f"{specialisation!r} (supports {self.supported_architectures})"
            )
        self.specialisation = specialisation

    def __repr__(self) -> str:
        return f"{type(self).__name__}(specialisation={self.specialisation!r})"
