"""STSC — single-thread-single-cuboid (Algorithm 1, Section 4.2.1).

The coarsest template: a top-down lattice traversal in which every
cuboid of a level is an *atomic* parallel task computed by a
single-threaded skyline algorithm, with one barrier per level.  The
hook is that per-cuboid algorithm.

CPU specialisation (Section 5.1): Hybrid, run single-threaded — its
compact, fixed two-level array tree keeps concurrently running cuboid
tasks from thrashing the shared L3, which is where hooking BSkyTree
(the QSkycube engine) loses.

GPU specialisation: none exists — there is no single-threaded GPU
algorithm, which the paper names as this template's clear weakness.
Requesting one raises :class:`TemplateSpecialisationError`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.skycube import Skycube
from repro.instrument.counters import Counters
from repro.skycube.base import SkycubeRun
from repro.skycube.topdown import top_down_lattice
from repro.skyline.base import SkylineAlgorithm
from repro.skyline.registry import default_hook
from repro.templates.base import SkycubeTemplate

__all__ = ["STSC"]


class STSC(SkycubeTemplate):
    """Concurrent single-threaded cuboids, one barrier per level."""

    name = "stsc"
    supported_architectures = ("cpu",)

    #: The per-cuboid sequential skyline algorithm (the hook),
    #: installed through the validated setter.
    hook: SkylineAlgorithm

    def __init__(
        self,
        specialisation: str = "cpu",
        hook: Optional[SkylineAlgorithm] = None,
        executor: str = "serial",
        workers: Optional[int] = None,
    ) -> None:
        super().__init__(specialisation, executor, workers)
        self.set_hook(
            hook
            if hook is not None
            else default_hook(self.specialisation, simulate=True)
        )

    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        if self.executor == "process":
            return self._materialise_process(data, max_level, counters)
        lattice, phases = top_down_lattice(data, self.hook, counters, max_level)
        # Cuboid tasks are single-threaded by definition: any intra-task
        # parallelism the hook reported is not exploitable here — except
        # in the root phase, which Algorithm 1 line 2 computes in
        # parallel (there is only one cuboid to occupy all threads).
        for phase in phases:
            if phase.name == "root":
                continue
            for task in phase.tasks:
                task.subtask_units = None
        skycube = Skycube(lattice, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, phases)
