"""SDSC — single-device-single-cuboid (Algorithm 2, Section 4.2.2).

The same top-down lattice traversal as STSC, but each cuboid is handed
to an *entire device* running a parallel skyline algorithm; with k
devices, k cuboids of the same level run concurrently.  The hook is
the per-architecture parallel skyline algorithm:

* CPU (Section 5.1): Hybrid — tiles are the intra-cuboid parallel
  subtasks, the two-level tree is shared by the device's threads;
* GPU (Section 6.1): SkyAlign — orders of magnitude faster than the
  GNL/GGS alternatives on most workloads.

Its cost profile: resource-friendly (one cuboid at a time per device)
but ``2**d - 2`` synchronisation points, and starved for parallelism in
the small cuboids near the bottom of the lattice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.skycube import Skycube
from repro.instrument.counters import Counters
from repro.skycube.base import SkycubeRun
from repro.skycube.topdown import top_down_lattice
from repro.skyline.base import SkylineAlgorithm
from repro.skyline.registry import default_hook
from repro.templates.base import SkycubeTemplate

__all__ = ["SDSC"]


class SDSC(SkycubeTemplate):
    """Serial cuboids, each computed device-parallel."""

    name = "sdsc"
    supported_architectures = ("cpu", "gpu")

    #: The per-cuboid parallel skyline algorithm (the hook),
    #: installed through the validated setter.
    hook: SkylineAlgorithm

    def __init__(
        self,
        specialisation: str = "cpu",
        hook: Optional[SkylineAlgorithm] = None,
        executor: str = "serial",
        workers: Optional[int] = None,
    ) -> None:
        super().__init__(specialisation, executor, workers)
        if hook is None:
            hook = default_hook(
                self.specialisation, parallel=True, simulate=True
            )
        self.set_hook(hook, require_parallel=True)

    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        if self.executor == "process":
            return self._materialise_process(data, max_level, counters)
        lattice, phases = top_down_lattice(data, self.hook, counters, max_level)
        skycube = Skycube(lattice, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, phases)
