"""The paper's parallel skycube templates and their specialisations."""

from repro.templates.base import (
    ARCHITECTURES,
    SkycubeTemplate,
    TemplateSpecialisationError,
)
from repro.templates.mdmc import MDMC, CPUPointEngine, GPUPointEngine
from repro.templates.sdsc import SDSC
from repro.templates.stsc import STSC

__all__ = [
    "ARCHITECTURES",
    "SkycubeTemplate",
    "TemplateSpecialisationError",
    "STSC",
    "SDSC",
    "MDMC",
    "CPUPointEngine",
    "GPUPointEngine",
]
