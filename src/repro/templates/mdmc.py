"""MDMC — multiple-device-multiple-cuboid (Algorithm 3, Section 4.3).

The point-based template: instead of traversing the lattice, spawn one
data-parallel task per point ``p ∈ S+(P)`` that computes the bitmask
``B_{p∉S}`` of *all* subspaces in which ``p`` is dominated, then insert
it into a HashCube.  Tasks never synchronise; the only shared state is
a read-only, three-level static quad tree (Section 4.3's octile
extension of SkyAlign's tree) plus the point data itself.

Each task is a filter-and-refine sweep over the subspace lattice:

* **filter** — set bits using nothing but the tree's path labels
  (transitive strict dominance through virtual pivots);
* **refine** — exact dominance tests against candidate leaves, with
  per-point memoization of already-seen comparison masks and bitset
  down-closures (:mod:`repro.core.closures`) so every distinct mask is
  expanded over the subspace lattice exactly once.

Two engines implement the hooks:

* :class:`CPUPointEngine` (Section 5.2) filters with the L2-resident
  top-two-level node directory and refines node-by-node, skipping
  nodes that are pruned or can contribute no unresolved subspace;
* :class:`GPUPointEngine` (Section 6.2) filters and refines with full
  leaf-order scans in warp-sized chunks — stronger filtering and fully
  coalesced loads at the price of touching every leaf — recording
  branch divergences and warp votes for the GPU cost model.

Implementation note: the CPU refine iterates the tree node-major
(updating all affected subspaces per discovered mask) rather than
subspace-major with per-subspace tree traversals as in the paper's
prose; the two orders produce identical bitmasks, and node-major keeps
the pure-Python inner loop tractable.  DESIGN.md records this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bitmask import full_space, popcount
from repro.core.closures import SubspaceClosures
from repro.core.dominance import dominance_masks_vs_all
from repro.core.hashcube import HashCube
from repro.core.skycube import Skycube
from repro.hardware.config import WARP_SIZE
from repro.instrument.counters import Counters
from repro.instrument.profile import MemoryProfile
from repro.partitioning.static_tree import StaticTree
from repro.skycube.base import PhaseTrace, SkycubeRun, TaskTrace
from repro.skyline.base import SkylineAlgorithm
from repro.skyline.registry import default_hook
from repro.templates.base import SkycubeTemplate

__all__ = ["MDMC", "CPUPointEngine", "GPUPointEngine"]


class CPUPointEngine:
    """Section 5.2: L2-resident label filter + node-pruned refine."""

    name = "cpu"

    def process_point(
        self,
        tree: StaticTree,
        pos: int,
        closures: SubspaceClosures,
        counters: Counters,
        relevant: int,
    ) -> int:
        """``B_{p∉S}`` of the point at leaf position ``pos``."""
        k = tree.k
        full_local = (1 << k) - 1
        not_in_s = 0
        not_in_sp = 0

        # -- filter: top-two-level path labels only (Lines 6-7),
        # scanned depth-first with early exit once every relevant
        # subspace is already ruled out (clustered inputs finish after
        # a handful of nodes).
        words = max(1, (1 << k) >> 6)
        # Best-mask-first scan: strong strict evidence (high path
        # labels) completes the filter early on clustered inputs.
        node_masks = tree.node_strict_masks(pos).tolist()[::-1]
        seen_nodes = set()
        scanned = 0
        complete = False
        for t in node_masks:
            scanned += 1
            if not t or t in seen_nodes:
                continue
            seen_nodes.add(t)
            bits = closures.closure(t)
            counters.bitmask_ops += 2 * words
            not_in_s |= bits
            not_in_sp |= bits
            if (not_in_s & relevant) == relevant:
                complete = True
                break
        counters.mask_tests += 2 * scanned
        counters.values_loaded += 2 * scanned
        counters.sequential_bytes += 16 * scanned

        if complete:
            counters.points_processed += 1
            return not_in_s

        # -- refine: exact DTs per surviving node (Lines 8-12) --------
        point = tree.rows[pos]
        le_all, lt_all, eq_all = dominance_masks_vs_all(tree.rows, point)
        prune = tree.node_prune_masks(pos)
        counters.mask_tests += len(tree.nodes)
        seen = set()
        for node_idx in range(len(tree.nodes)):
            potential = full_local & ~int(prune[node_idx])
            if potential == 0:
                continue  # the whole node is provably worse somewhere
            counters.bitmask_ops += 1
            if closures.closure(potential) & relevant & ~not_in_s == 0:
                continue  # nothing unresolved can come from this node
            start = int(tree.node_start[node_idx])
            end = int(tree.node_end[node_idx])
            count = end - start
            counters.dominance_tests += count
            counters.values_loaded += 2 * k * count
            # Leaves are read as leaf-order slices of the reordered
            # point array: spatially local, prefetchable traffic.
            counters.sequential_bytes += 16 * k * count
            for le, eq in set(
                zip(le_all[start:end].tolist(), eq_all[start:end].tolist())
            ):
                if le == 0 or (le, eq) in seen:
                    continue
                seen.add((le, eq))
                if not_in_sp & (1 << (le - 1)):
                    continue  # strict dominance in `le` already asserted
                lt = le & ~eq
                counters.bitmask_ops += 3 * words
                if lt:
                    not_in_sp |= closures.closure(lt)
                not_in_s |= closures.dominated_update(le, eq)
            if (not_in_s & relevant) == relevant:
                break
        counters.points_processed += 1
        return not_in_s


class GPUPointEngine:
    """Section 6.2: strided leaf scans with warp votes and divergence."""

    name = "gpu"

    def process_point(
        self,
        tree: StaticTree,
        pos: int,
        closures: SubspaceClosures,
        counters: Counters,
        relevant: int,
    ) -> int:
        k = tree.k
        n = len(tree)
        not_in_s = 0
        not_in_sp = 0

        # -- filter: full-tree leaf scan of 3-level composite masks ---
        words = max(1, (1 << k) >> 6)
        strict_masks = tree.leaf_strict_masks(pos)
        counters.mask_tests += 3 * n
        counters.values_loaded += 3 * n
        counters.sequential_bytes += 24 * n
        seen_filter = set()
        for t in strict_masks.tolist():
            if t and t not in seen_filter:
                seen_filter.add(t)
                # Divergence only when a lane sees an unseen composite
                # mask — at most 2**d times per point (Section 6.2).
                counters.branch_divergences += 1
                bits = closures.closure(t)
                counters.bitmask_ops += 2 * words
                not_in_sp |= bits
                not_in_s |= bits

        if (not_in_s & relevant) == relevant:
            counters.points_processed += 1
            return not_in_s

        # -- refine: second strided scan with warp-vote DTs -----------
        point = tree.rows[pos]
        le_all, lt_all, eq_all = dominance_masks_vs_all(tree.rows, point)
        prune = tree.leaf_prune_masks(pos)
        full_local = (1 << k) - 1
        counters.mask_tests += n
        counters.sequential_bytes += 8 * n
        seen = set()
        for chunk_start in range(0, n, WARP_SIZE):
            chunk_end = min(n, chunk_start + WARP_SIZE)
            elect = 0
            lanes = chunk_end - chunk_start
            for leaf in range(chunk_start, chunk_end):
                potential = full_local & ~int(prune[leaf])
                if potential == 0:
                    continue
                if not_in_sp & (1 << (potential - 1)):
                    continue  # already strictly dominated there
                elect += 1
            if elect == 0:
                continue
            if elect < lanes:
                counters.branch_divergences += 1
            # Warp vote true: every lane of the warp performs the DT.
            counters.dominance_tests += lanes
            counters.values_loaded += 2 * k * lanes
            counters.sequential_bytes += 8 * k * lanes
            for le, eq in set(
                zip(
                    le_all[chunk_start:chunk_end].tolist(),
                    eq_all[chunk_start:chunk_end].tolist(),
                )
            ):
                if le == 0 or (le, eq) in seen:
                    continue
                seen.add((le, eq))
                if not_in_sp & (1 << (le - 1)):
                    continue
                lt = le & ~eq
                counters.bitmask_ops += 3 * words
                if lt:
                    not_in_sp |= closures.closure(lt)
                not_in_s |= closures.dominated_update(le, eq)
            if (not_in_s & relevant) == relevant:
                break
        counters.points_processed += 1
        return not_in_s


class MDMC(SkycubeTemplate):
    """One data-parallel task per extended-skyline point → HashCube."""

    name = "mdmc"
    supported_architectures = ("cpu", "gpu")

    #: The device-parallel algorithm computing ``S+(P)`` in the setup
    #: phase (Line 2), installed through the validated setter.
    _extended_hook: SkylineAlgorithm

    def __init__(
        self,
        specialisation: str = "cpu",
        word_width: int = HashCube.DEFAULT_WORD_WIDTH,
        bit_order: str = "numeric",
        executor: str = "serial",
        workers: Optional[int] = None,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(specialisation, executor, workers)
        self.word_width = word_width
        #: "level" activates the Appendix A.2 future-work layout, which
        #: compresses partial skycubes harder (see core.hashcube).
        self.bit_order = bit_order
        #: Explicit sweep-engine override (one of
        #: :data:`repro.engine.kernels.SKYCUBE_ENGINES`).  ``None``
        #: keeps the default behaviour: the instrumented per-point
        #: engines when serial, packed-when-possible when ``process``.
        if engine is not None:
            from repro.engine.kernels import SKYCUBE_ENGINES

            if engine not in SKYCUBE_ENGINES:
                raise ValueError(
                    f"engine must be one of {SKYCUBE_ENGINES}, got {engine!r}"
                )
        self.sweep_engine = engine
        #: Kernel-backend selection for the packed sweeps (one of
        #: :data:`repro.engine.jit.BACKEND_CHOICES`).  ``None`` keeps
        #: the numpy reference; process workers ship this choice with
        #: every task.  An accelerated backend implies the vectorized
        #: engine path, so ``backend=`` requires ``engine=`` when
        #: serial (the instrumented per-point loop has no backends).
        if backend is not None:
            from repro.engine.jit import BACKEND_CHOICES

            if backend not in BACKEND_CHOICES:
                raise ValueError(
                    f"backend must be one of {BACKEND_CHOICES}, "
                    f"got {backend!r}"
                )
            if executor != "process" and engine is None:
                raise ValueError(
                    "backend= selects a packed-kernel backend, which the "
                    "instrumented serial engines do not use; pass engine= "
                    "(e.g. engine='packed-filtered') or executor='process'"
                )
        self.backend = backend
        if self.specialisation == "cpu":
            self.engine: "CPUPointEngine | GPUPointEngine" = CPUPointEngine()
        else:
            self.engine = GPUPointEngine()
        self.set_hook(
            default_hook(self.specialisation, parallel=True, simulate=True),
            attr="_extended_hook",
        )

    def _materialise(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        if self.executor == "process":
            return self._materialise_process(data, max_level, counters)
        if self.sweep_engine is not None:
            return self._materialise_engine(data, max_level, counters)
        d = data.shape[1]
        full = full_space(d)

        # -- Line 2: S+(P) and the shared static tree ------------------
        setup_counters = Counters()
        extended_result = self._extended_hook.compute(
            data, None, full, setup_counters
        )
        splus_ids = extended_result.extended
        tree = StaticTree(data, splus_ids, levels=3, counters=setup_counters)
        counters.merge(setup_counters)
        counters.sync_points += 1
        setup_phase = PhaseTrace("extended+tree")
        setup_phase.tasks.append(
            TaskTrace(
                label="S+(P) + quad tree",
                counters=setup_counters,
                profile=MemoryProfile(
                    data_bytes=8 * data.size,
                    shared_flat_bytes=tree.memory_bytes(),
                ),
                subtask_units=extended_result.task_units,
            )
        )

        closures = SubspaceClosures(d)
        relevant = self._relevant_bits(d, max_level)
        all_bits = (1 << full) - 1

        # -- Lines 3-13: one independent task per point ---------------
        hashcube = HashCube(d, self.word_width, self.bit_order)
        point_phase = PhaseTrace("points")
        state_bytes = 2 * (2**d) // 8  # B∉S + B∉S+ per in-flight point
        shared_profile_bytes = tree.memory_bytes() + 8 * tree.k * len(tree)
        for pos in range(len(tree)):
            pid = int(tree.ids[pos])
            task_counters = Counters()
            not_in_s = self.engine.process_point(
                tree, pos, closures, task_counters, relevant
            )
            if max_level is not None:
                # No correctness guarantee above max_level (App. A.2):
                # mark those subspaces dominated so they compress away.
                not_in_s |= all_bits & ~relevant
            task_counters.extra["state_bytes"] = state_bytes
            counters.merge(task_counters)
            hashcube.insert(pid, not_in_s)
            point_phase.tasks.append(
                TaskTrace(
                    label=f"p={pid}",
                    counters=task_counters,
                    profile=MemoryProfile(
                        flat_bytes=state_bytes,
                        shared_flat_bytes=shared_profile_bytes,
                        output_bytes=state_bytes // 2,
                    ),
                )
            )
        counters.tasks += len(point_phase.tasks)

        skycube = Skycube(hashcube, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, [setup_phase, point_phase])

    def _materialise_engine(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        """Serial fast path for an explicit ``engine=`` override.

        Delegates to :func:`repro.engine.kernels.fast_skycube` — the
        uninstrumented vectorized kernels — so only the task counts and
        the filter-effectiveness tallies land in ``counters``; there are
        no per-operation counts to drive the hardware simulation.  The
        resulting cube is bit-identical to the instrumented sweep.
        """
        from repro.engine.kernels import fast_skycube

        counters.sync_points += 1
        skycube = fast_skycube(
            data,
            max_level=max_level,
            word_width=self.word_width,
            bit_order=self.bit_order,
            engine=self.sweep_engine or "packed",
            counters=counters,
            backend=self.backend,
        )
        point_ids = skycube.store.point_ids()
        counters.tasks += len(point_ids)
        counters.points_processed += len(point_ids)
        setup_phase = PhaseTrace("extended+labels")
        setup_phase.tasks.append(
            TaskTrace(label="S+(P) + path labels", counters=Counters())
        )
        point_phase = PhaseTrace("points")
        for pid in point_ids:
            point_phase.tasks.append(
                TaskTrace(label=f"p={int(pid)}", counters=Counters())
            )
        return SkycubeRun(skycube, counters, [setup_phase, point_phase])

    def _materialise_process(
        self,
        data: np.ndarray,
        max_level: Optional[int],
        counters: Counters,
    ) -> SkycubeRun:
        """Process backend: point-block tasks, parent-side batch merge.

        Lines 3–13 of Algorithm 3 parallelise over points; here blocks
        of ``S+(P)`` points are real pool tasks whose ``B_{p∉S}`` masks
        come back to the parent, which batch-merges them into the
        HashCube — the only write ever performed on shared state, so
        workers stay fully independent, exactly as the paper requires.
        An explicit ``engine=`` override picks the in-worker sweep;
        ``"packed-filtered"`` additionally runs the octant-path label
        prefilter before the exact ``S+`` computation and ships the
        leaf-ordered label columns to the workers.
        """
        from repro.engine import packed
        from repro.engine.kernels import splus_ids_for_engine
        from repro.engine.parallel import (
            parallel_filtered_packed_masks,
            parallel_packed_masks,
            parallel_point_masks,
        )

        d = data.shape[1]
        engine = self.sweep_engine
        if engine is None:
            engine = "packed" if d <= packed.PACKED_MAX_D else "loop"
        elif engine != "loop" and d > packed.PACKED_MAX_D:
            raise ValueError(
                f"engine={engine!r} supports d <= {packed.PACKED_MAX_D}, "
                f"got d={d}; use engine='loop'"
            )
        splus_ids = splus_ids_for_engine(data, engine, counters=counters)
        rows = np.ascontiguousarray(data[splus_ids])

        executor = self._make_executor()
        counters.sync_points += 1
        if engine != "loop":
            # Packed composition: workers return uint64 mask blocks,
            # the parent ORs in the level filter and merges exactly
            # once through the bulk word-splitting constructor.
            if engine == "packed-filtered":
                mask_rows = parallel_filtered_packed_masks(
                    rows, executor, counters=counters, backend=self.backend
                )
            else:
                mask_rows = parallel_packed_masks(
                    rows, executor, backend=self.backend
                )
            if max_level is not None and max_level < d:
                mask_rows = mask_rows | packed.unmaterialised_row(d, max_level)
            hashcube = HashCube.from_masks(
                d,
                splus_ids,
                mask_rows,
                word_width=self.word_width,
                bit_order=self.bit_order,
            )
            inserted = len(splus_ids)
        else:
            masks = parallel_point_masks(rows, executor)
            relevant = self._relevant_bits(d, max_level)
            all_bits = (1 << full_space(d)) - 1
            unmaterialised = all_bits & ~relevant
            hashcube = HashCube(d, self.word_width, self.bit_order)
            inserted = hashcube.insert_batch(
                (int(pid), mask | unmaterialised)
                for pid, mask in zip(splus_ids, masks)
            )
        counters.tasks += inserted
        counters.points_processed += inserted

        setup_phase = PhaseTrace("extended+shm")
        setup_phase.tasks.append(
            TaskTrace(label="S+(P) + shared segment", counters=Counters())
        )
        point_phase = PhaseTrace("points")
        for pid in splus_ids:
            point_phase.tasks.append(
                TaskTrace(label=f"p={int(pid)}", counters=Counters())
            )
        skycube = Skycube(hashcube, data=data, max_level=max_level)
        return SkycubeRun(skycube, counters, [setup_phase, point_phase])

    @staticmethod
    def _relevant_bits(d: int, max_level: Optional[int]) -> int:
        """Bitset of subspaces the result must be exact for."""
        full = full_space(d)
        if max_level is None or max_level >= d:
            return (1 << full) - 1
        bits = 0
        for delta in range(1, full + 1):
            if popcount(delta) <= max_level:
                bits |= 1 << (delta - 1)
        return bits
