"""The sharded query service: the serve front-end over a coordinator.

:class:`ShardService` duck-types the surface
:class:`~repro.serve.server.SkycubeServer` consumes (``d``, ``tracer``,
``metrics``, ``start``/``stop``/``submit``) so the whole NDJSON TCP
tier, the client, and the smoke drivers run unchanged over shards —
only the batch executor differs.  Requests travel the same lifecycle
as the single-process :class:`~repro.serve.service.SkycubeService`:
admission control with typed ``Overloaded`` shedding → micro-batcher
with ``(op, arguments)`` coalescing → batch execution → typed
response, with the same admit/batch/…/respond trace events.

Two sharded twists:

* Batch execution is *async*: each distinct coalescing key becomes one
  coordinator scatter–gather, and distinct keys in one flush fan out
  concurrently (``asyncio.gather``), so one slow subspace does not
  serialise the batch.  The per-shard ``compute`` spans and the
  ``merge`` barrier event are emitted by the coordinator under the
  executing request's id.
* Shard death degrades instead of failing: a query that loses shards
  mid-flight still answers from the survivors, with the typed
  ``partial`` marker (failed shard list + taxonomy class) on the
  response — and the trace carries the matching ``WorkerDeath``
  events.  Only losing *every* shard turns into an ``Internal`` error.

Live updates (``insert``/``delete``) and temporal ``skyline_diff``
queries are a typed ``Unsupported`` here: the sharded tier serves a
static dataset until delta-publish-per-shard lands (the follow-up is
sketched in ``docs/SHARDING.md``).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.service import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INTERNAL,
    NOT_FOUND,
    OVERLOADED,
    QUERY_OPS,
    UNSUPPORTED,
    Request,
    Response,
)
from repro.shard.coordinator import NoLiveShardsError, ShardCoordinator
from repro.trace import (
    BAD_REQUEST as TAXONOMY_BAD_REQUEST,
    DEADLINE_EXCEEDED as TAXONOMY_DEADLINE,
    INTERNAL_ERROR,
    NULL_TRACER,
    SHED,
    WORKER_DEATH,
    TraceEvent,
    Tracer,
    classify_wire_error,
)

__all__ = ["ShardService"]


def _error(
    op: str,
    error: str,
    message: str,
    failure_class: Optional[str] = None,
) -> Response:
    return Response(
        op=op, ok=False, error=error, message=message,
        failure_class=failure_class,
    )


def _partial_marker(failed: List[int]) -> Optional[Dict[str, Any]]:
    """The typed degraded-mode marker attached to partial responses."""
    if not failed:
        return None
    return {
        "degraded": True,
        "failed_shards": sorted(failed),
        "failure_class": WORKER_DEATH,
    }


class ShardService:
    """Routes requests to the coordinator through the micro-batcher."""

    def __init__(
        self,
        coordinator: ShardCoordinator,
        window: float = 0.002,
        max_batch: int = 64,
        max_pending: int = 1024,
        metrics: Optional[ServeMetrics] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.coordinator = coordinator
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_pending = max_pending
        self._pending = 0
        self._batcher: MicroBatcher[Request, Response] = MicroBatcher(
            self._execute_batch, window=window, max_batch=max_batch,
            on_executor_error=self._on_batch_error,
        )
        self.metrics.observe_snapshot(coordinator.version)

    def _on_batch_error(self, batch_size: int, error: Exception) -> None:
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                stage="batch", outcome="failure", failure=INTERNAL_ERROR,
                batch_size=batch_size,
                detail=f"{type(error).__name__}: {error}",
            ))

    # -- lifecycle -----------------------------------------------------

    @property
    def d(self) -> int:
        return self.coordinator.d

    @property
    def pending(self) -> int:
        return self._pending

    async def start(self) -> None:
        await asyncio.to_thread(self.coordinator.start)
        await self._batcher.start()

    async def stop(self) -> None:
        await self._batcher.stop()
        await self.coordinator.aclose()

    # -- submission (same admission/trace flow as SkycubeService) ------

    async def submit(self, request: Request) -> Response:
        op = request.op
        self.metrics.record_request(op)
        loop = asyncio.get_running_loop()
        started = loop.time()
        tracer = self.tracer
        if tracer.enabled:
            request = replace(
                request,
                trace_id=tracer.next_request_id(),
                admit_version=self.coordinator.version,
                admitted_at=started,
            )
        try:
            if op in ("insert", "delete", "skyline_diff"):
                # Typed Unsupported, not BadRequest: the request is
                # well-formed, this deployment just cannot serve it —
                # each shard snapshots independently, so there is no
                # coherent cross-shard version to mutate or diff yet.
                # docs/SHARDING.md sketches the delta-publish-per-shard
                # follow-up that lifts this.  (Checked before QUERY_OPS:
                # skyline_diff is batched on the single-process tier.)
                response = _error(
                    op, UNSUPPORTED,
                    "live updates are not supported on the sharded tier "
                    "(see docs/SHARDING.md: delta publish per shard)",
                    failure_class=TAXONOMY_BAD_REQUEST,
                )
            elif op in QUERY_OPS:
                response = await self._submit_query(request)
            elif op == "metrics":
                payload = self.metrics.as_dict()
                payload["shards"] = self.coordinator.status()
                response = Response(
                    op=op, ok=True, result=payload,
                    snapshot_version=self.coordinator.version,
                )
            elif op == "ping":
                status = self.coordinator.status()
                response = Response(
                    op=op, ok=True,
                    result={
                        "d": self.d,
                        "n": self.coordinator.n,
                        "shards": status["shards"],
                        "alive": sum(1 for a in status["alive"] if a),
                        "partitioner": status["partitioner"],
                    },
                    snapshot_version=self.coordinator.version,
                )
            else:
                response = _error(
                    op, BAD_REQUEST, f"unknown op {op!r}",
                    failure_class=TAXONOMY_BAD_REQUEST,
                )
        except Exception as error:  # never leak a raw traceback
            response = _error(
                op, INTERNAL, f"{type(error).__name__}: {error}",
                failure_class=INTERNAL_ERROR,
            )
        if not response.ok and response.error is not None:
            self.metrics.record_error(op, response.error)
        self.metrics.record_latency(op, loop.time() - started)
        if tracer.enabled:
            failure = response.failure_class
            if failure is None and not response.ok:
                failure = classify_wire_error(
                    response.error, request.admit_version,
                    response.snapshot_version,
                )
            tracer.emit(TraceEvent(
                stage="respond",
                outcome="ok" if response.ok else "failure",
                failure=failure,
                request_id=request.trace_id,
                op=op,
                delta=request.delta,
                snapshot_version=response.snapshot_version,
                duration_ms=1000.0 * (loop.time() - started),
                detail="degraded" if response.partial else None,
            ))
        return response

    async def _submit_query(self, request: Request) -> Response:
        if self._pending >= self.max_pending:
            self.metrics.record_shed()
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    stage="admit", outcome="failure", failure=SHED,
                    request_id=request.trace_id, op=request.op,
                    delta=request.delta,
                    extra={"queue_depth": self._pending},
                ))
            return _error(
                request.op, OVERLOADED,
                f"queue full ({self.max_pending} pending)",
                failure_class=SHED,
            )
        self._pending += 1
        self.metrics.observe_queue_depth(self._pending)
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                stage="admit", request_id=request.trace_id, op=request.op,
                delta=request.delta,
                extra={"queue_depth": self._pending},
            ))
        try:
            return await self._batcher.submit(request)
        finally:
            self._pending -= 1
            self.metrics.observe_queue_depth(self._pending)

    # -- batch execution ----------------------------------------------

    async def _execute_batch(
        self, requests: List[Request]
    ) -> List[Response]:
        """Coalesce, scatter each distinct key, fan back out.

        Distinct keys run concurrently — each is one coordinator
        scatter–gather whose per-shard spans carry the *executing*
        request's trace id; coalesced riders get a zero-cost
        ``compute`` event so their lifecycle stays complete.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        tracer = self.tracer
        batch_size = len(requests)
        executors: Dict[Any, Request] = {}
        answered: List[Optional[Response]] = [None] * len(requests)
        for position, request in enumerate(requests):
            if tracer.enabled:
                waited = (
                    None if request.admitted_at is None
                    else 1000.0 * (now - request.admitted_at)
                )
                tracer.emit(TraceEvent(
                    stage="batch", request_id=request.trace_id,
                    op=request.op, delta=request.delta,
                    batch_size=batch_size, duration_ms=waited,
                ))
            if request.deadline is not None and now > request.deadline:
                answered[position] = _error(
                    request.op, DEADLINE_EXCEEDED,
                    "deadline expired before execution",
                    failure_class=TAXONOMY_DEADLINE,
                )
                if tracer.enabled:
                    tracer.emit(TraceEvent(
                        stage="compute", outcome="failure",
                        failure=TAXONOMY_DEADLINE,
                        request_id=request.trace_id, op=request.op,
                        delta=request.delta,
                        snapshot_version=self.coordinator.version,
                    ))
                continue
            executors.setdefault(request.key(), request)

        cache: Dict[Any, Response] = {}

        async def run_one(key: Any, request: Request) -> None:
            cache[key] = await self._answer(request)

        await asyncio.gather(*(
            run_one(key, request) for key, request in executors.items()
        ))
        for position, request in enumerate(requests):
            if answered[position] is not None:
                continue
            response = cache[request.key()]
            executing = executors.get(request.key()) is request
            if tracer.enabled and not executing:
                tracer.emit(TraceEvent(
                    stage="compute",
                    outcome="ok" if response.ok else "failure",
                    failure=response.failure_class,
                    request_id=request.trace_id, op=request.op,
                    delta=request.delta,
                    snapshot_version=self.coordinator.version,
                    duration_ms=0.0, detail="coalesced",
                ))
            answered[position] = response
        self.metrics.record_batch(len(requests))
        return [response for response in answered if response is not None]

    async def _answer(self, request: Request) -> Response:
        coordinator = self.coordinator
        try:
            if request.op == "skyline":
                assert request.delta is not None
                ids, failed = await coordinator.skyline(
                    request.delta, request_id=request.trace_id
                )
                return Response(
                    op=request.op, ok=True, result=ids,
                    snapshot_version=coordinator.version,
                    partial=_partial_marker(failed),
                )
            if request.op == "membership":
                assert request.point_id is not None
                assert request.delta is not None
                if not coordinator.knows(request.point_id):
                    return _error(
                        request.op, NOT_FOUND,
                        f"unknown point id {request.point_id}",
                        failure_class=TAXONOMY_BAD_REQUEST,
                    )
                member, failed = await coordinator.membership(
                    request.point_id, request.delta,
                    request_id=request.trace_id,
                )
                return Response(
                    op=request.op, ok=True, result=member,
                    snapshot_version=coordinator.version,
                    partial=_partial_marker(failed),
                )
            if request.op == "topk_dynamic":
                assert request.q is not None
                ids, failed = await coordinator.topk_dynamic(
                    request.q, k=request.k, delta=request.delta,
                    request_id=request.trace_id,
                )
                return Response(
                    op=request.op, ok=True, result=ids,
                    snapshot_version=coordinator.version,
                    partial=_partial_marker(failed),
                )
            return _error(
                request.op, BAD_REQUEST,
                f"op {request.op!r} is not a batched query",
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        except NoLiveShardsError as error:
            return _error(
                request.op, INTERNAL, str(error),
                failure_class=WORKER_DEATH,
            )
        except KeyError as error:
            return _error(
                request.op, BAD_REQUEST, str(error),
                failure_class=TAXONOMY_BAD_REQUEST,
            )
        except ValueError as error:
            return _error(
                request.op, BAD_REQUEST, str(error),
                failure_class=TAXONOMY_BAD_REQUEST,
            )
