"""Sharded scatter–gather serving tier.

The multi-process counterpart of :mod:`repro.serve`: a
:class:`~repro.shard.plan.ShardPlan` partitions the dataset
(pluggable :data:`~repro.shard.plan.PARTITIONERS` — random, grid,
angular, tree-leaf), a :class:`~repro.shard.coordinator.ShardCoordinator`
spawns one worker process per shard over zero-copy shared-memory
slices and merges per-shard answers via the local-skyline union
property (bit-identical to the single-process engine), and a
:class:`~repro.shard.service.ShardService` fronts it with the same
admission/batching/tracing lifecycle — so the TCP server, client and
CLI run unchanged over ``python -m repro serve data.npy --shards N``.
"""

from repro.shard.coordinator import (
    NoLiveShardsError,
    ShardCoordinator,
    ShardDeadError,
)
from repro.shard.plan import PARTITIONER_NAMES, PARTITIONERS, ShardPlan
from repro.shard.service import ShardService
from repro.shard.worker import WorkerSpec, shard_worker_main

__all__ = [
    "PARTITIONERS",
    "PARTITIONER_NAMES",
    "ShardPlan",
    "ShardCoordinator",
    "ShardDeadError",
    "NoLiveShardsError",
    "ShardService",
    "WorkerSpec",
    "shard_worker_main",
]
