"""Shard plans: which shard owns which points, in which physical order.

A :class:`ShardPlan` is the static layout of the sharded serving tier:
a partitioner assigns every dataset row to one of ``shards`` shards,
and the plan derives the *physical* order that makes every shard a
contiguous slice of one reordered matrix.  The coordinator places that
reordered matrix in a single :class:`~repro.engine.parallel.SharedDataset`
segment, so each worker's slice is a true zero-copy view.

The correctness contract every partitioner enjoys for free is the
**local-skyline union property**: if ``q`` dominates ``p`` then some
local-skyline point of *q's own shard* dominates ``p`` (any finite set
is dominated by one of its skyline points, and dominance is
transitive), so every global skyline point is a local skyline point of
its shard and the global skyline is recovered by one refine sweep over
the union of local skylines.  Partitioners therefore only trade off
*performance*: balance (equal work per shard) against locality (small
local skylines, small merge candidate sets) — the axis the
partitioning-strategy papers in PAPERS.md study:

``random``
    Seeded balanced round-robin over a random permutation.  Perfectly
    balanced, no locality: every shard sees the whole distribution, so
    local skylines are near-copies of the global one.
``grid``
    Median splits on the first ``ceil(log2(shards))`` dimensions form
    2^m cells, assigned round-robin (``cell % shards``).  Cells give
    locality; the round-robin spreads hot cells.  Can be unbalanced on
    skewed data — empty shards are legal and handled.
``angular``
    Equal-count bins of the first hyperspherical angle after shifting
    to the positive orthant (angle-based space partitioning).  Each
    shard gets a "pie slice" that crosses the skyline band, so local
    skylines stay proportionally small on anticorrelated data.
``tree-leaf``
    Contiguous equal-count chunks of the static tree's leaf (path-major)
    order, reusing the batch :class:`~repro.partitioning.static_tree.
    LeafLabels` machinery — octant locality without building any new
    index.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.kernels import fast_skyline
from repro.partitioning.static_tree import LeafLabels

__all__ = ["PARTITIONERS", "PARTITIONER_NAMES", "ShardPlan"]

#: ``(data, shards, seed) -> (n,) int64 shard assignment``.
Partitioner = Callable[[np.ndarray, int, int], np.ndarray]


def _chunked(order: np.ndarray, shards: int) -> np.ndarray:
    """Equal-count contiguous chunks of ``order`` → shard per row."""
    n = len(order)
    assignment = np.empty(n, dtype=np.int64)
    positions = np.arange(n, dtype=np.int64)
    assignment[order] = positions * shards // n
    return assignment


def _random(data: np.ndarray, shards: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return _chunked(rng.permutation(len(data)).astype(np.int64), shards)


def _grid(data: np.ndarray, shards: int, seed: int) -> np.ndarray:
    n, d = data.shape
    if shards == 1:
        return np.zeros(n, dtype=np.int64)
    m = min(d, max(1, math.ceil(math.log2(shards))))
    cells = np.zeros(n, dtype=np.int64)
    for j in range(m):
        column = data[:, j]
        cells |= (column > np.median(column)).astype(np.int64) << j
    return cells % shards


def _angular(data: np.ndarray, shards: int, seed: int) -> np.ndarray:
    shifted = data - data.min(axis=0)
    if data.shape[1] == 1:
        key = shifted[:, 0]
    else:
        norm = np.linalg.norm(shifted, axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            key = np.where(norm > 0, shifted[:, 0] / norm, 0.0)
    return _chunked(np.argsort(key, kind="stable").astype(np.int64), shards)


def _tree_leaf(data: np.ndarray, shards: int, seed: int) -> np.ndarray:
    return _chunked(
        np.asarray(LeafLabels.build(data).order, dtype=np.int64), shards
    )


PARTITIONERS: Dict[str, Partitioner] = {
    "random": _random,
    "grid": _grid,
    "angular": _angular,
    "tree-leaf": _tree_leaf,
}

#: Stable name tuple for CLI choices and profile validation.
PARTITIONER_NAMES: Tuple[str, ...] = tuple(sorted(PARTITIONERS))


class ShardPlan:
    """One immutable point→shard layout plus the contiguous reorder.

    ``assignment[row]`` is the owning shard of input row ``row``;
    ``order`` lists input rows grouped by shard (a stable sort, so
    within a shard the original row order is preserved), and
    ``bounds(s)`` is the half-open slice of ``order`` — equivalently of
    the reordered matrix — that shard ``s`` owns.
    """

    __slots__ = ("shards", "partitioner", "seed", "assignment", "order",
                 "_starts", "_stops", "n", "d")

    def __init__(
        self,
        assignment: np.ndarray,
        shards: int,
        partitioner: str,
        d: int,
        seed: int = 0,
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 1 or len(assignment) == 0:
            raise ValueError(
                f"assignment must be a non-empty vector, "
                f"got shape {assignment.shape}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if assignment.min() < 0 or assignment.max() >= shards:
            raise ValueError(
                f"assignment names shards outside 0..{shards - 1}"
            )
        self.shards = int(shards)
        self.partitioner = partitioner
        self.seed = int(seed)
        self.n = len(assignment)
        self.d = int(d)
        assignment.setflags(write=False)
        self.assignment = assignment
        order = np.argsort(assignment, kind="stable").astype(np.int64)
        order.setflags(write=False)
        self.order = order
        counts = np.bincount(assignment, minlength=shards)
        stops = np.cumsum(counts)
        self._starts = np.concatenate(([0], stops[:-1])).astype(np.int64)
        self._stops = stops.astype(np.int64)

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        shards: int,
        partitioner: str = "grid",
        seed: int = 0,
    ) -> "ShardPlan":
        """Partition ``data`` into ``shards`` shards."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty 2-D dataset, got shape {data.shape}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > len(data):
            raise ValueError(
                f"cannot split {len(data)} points into {shards} shards"
            )
        try:
            partition = PARTITIONERS[partitioner]
        except KeyError:
            raise ValueError(
                f"unknown partitioner {partitioner!r}; choose from "
                f"{', '.join(PARTITIONER_NAMES)}"
            ) from None
        assignment = partition(data, shards, seed)
        return cls(assignment, shards, partitioner, data.shape[1], seed=seed)

    # -- layout queries ------------------------------------------------

    def bounds(self, shard: int) -> Tuple[int, int]:
        """Half-open ``[start, stop)`` slice of the reordered matrix."""
        self._check_shard(shard)
        return int(self._starts[shard]), int(self._stops[shard])

    def ids_of(self, shard: int) -> np.ndarray:
        """Global (input-order) row ids owned by ``shard``."""
        start, stop = self.bounds(shard)
        return self.order[start:stop]

    @property
    def sizes(self) -> List[int]:
        return [int(s) for s in (self._stops - self._starts)]

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise IndexError(f"shard {shard} outside 0..{self.shards - 1}")

    # -- oracle helpers (tests, docs) ----------------------------------

    def local_skyline(
        self, data: np.ndarray, shard: int, delta: Optional[int] = None
    ) -> np.ndarray:
        """Global ids of shard-local ``S_δ`` — the merge candidates.

        Pure reference path over the *original* (unreordered) matrix;
        the live workers compute the same thing from their zero-copy
        slices.  Empty shards contribute no candidates.
        """
        ids = self.ids_of(shard)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64)
        local = fast_skyline(np.ascontiguousarray(data[ids]), delta)
        return np.asarray(ids[local], dtype=np.int64)

    def describe(self) -> Dict[str, Any]:
        """Startup-banner / ping payload: layout at a glance."""
        return {
            "shards": self.shards,
            "partitioner": self.partitioner,
            "n": self.n,
            "d": self.d,
            "sizes": self.sizes,
        }
